"""Capability-constrained restriction and mechanical port derivation.

:func:`restrict_region` is the one place a model's
:class:`~repro.models.features.ModelCapabilities` constrains a region
directive: clauses the target model cannot express are dropped, each
drop recorded as a human-readable note (the translator surfaces these
as gateable warnings).  Restriction never touches *semantic* content —
data-motion clauses and the offload construct pass through, so semantic
legality stays with the target compiler's own pipeline passes.

:func:`derive_port` derives the native OpenMP-target port of a
benchmark from its OpenMPC port: both consume the same OpenMP input
program, so the port *is* the OpenMPC annotations normalized into the
directive IR and re-lowered under the OpenMP-target capability set.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.directives.ir import (RegionDirective, lower_options,
                                 normalize_port)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.models.base import PortSpec
    from repro.models.features import ModelCapabilities

#: the model whose ports are derived rather than hand-written
OMP_TARGET = "OpenMP-Target"

#: the annotations the derivation starts from (same OpenMP input source)
_SOURCE_MODEL = "OpenMPC"


def restrict_region(directive: RegionDirective,
                    caps: "ModelCapabilities",
                    ) -> tuple[RegionDirective, tuple[str, ...]]:
    """Drop the clauses ``caps`` cannot express; note every drop."""
    notes: list[str] = []
    par = directive.parallelism
    if par.vector_length is not None and not caps.explicit_thread_batching:
        notes.append(
            f"{directive.region}: dropped vector_length({par.vector_length})"
            f" — {caps.name} has no thread-batching directive")
        par = replace(par, vector_length=None)
    tr = directive.transforms
    if (tr.interchange or tr.collapse) and not caps.explicit_loop_transforms:
        dropped = [label for label, flag
                   in (("interchange", tr.interchange),
                       ("collapse", tr.collapse)) if flag]
        notes.append(
            f"{directive.region}: dropped {'/'.join(dropped)} request — "
            f"{caps.name} has no loop-transformation directives")
        tr = replace(tr, interchange=False, collapse=False)
    tun = directive.tuning
    if (tun.placements or tun.tiling) and not caps.explicit_special_memories:
        notes.append(
            f"{directive.region}: dropped explicit memory "
            f"placements/tilings — {caps.name} cannot address special "
            "memories explicitly")
        tun = replace(tun, placements=(), tiling=())
    return (replace(directive, parallelism=par, transforms=tr, tuning=tun),
            tuple(notes))


def derive_port(bench, model: str, variant: str = "best") -> "PortSpec":
    """Derive a port via the directive IR when no hand-written one exists.

    Currently derives OpenMP-target ports from the OpenMPC annotations;
    any other model raises the same ``KeyError`` the benchmark's own
    ``port`` method raises for unknown models.
    """
    from repro.models import resolve_model

    try:
        canonical = resolve_model(model)
    except KeyError:
        canonical = ""
    if canonical != OMP_TARGET:
        raise KeyError(f"no {bench.name} port for model {model!r}")
    source_variants = bench.variants(_SOURCE_MODEL)
    source_variant = variant if variant in source_variants else "best"
    return omp_target_port(bench.port(_SOURCE_MODEL, source_variant))


def omp_target_port(base: "PortSpec") -> "PortSpec":
    """Re-express an OpenMPC port as an OpenMP 4.5+ target port."""
    from repro.models.base import PortSpec
    from repro.models.features import CAPABILITIES

    caps = CAPABILITIES[OMP_TARGET]
    bundle = normalize_port(base)
    region_options = {}
    notes: list[str] = []
    for name, directive in bundle.regions:
        restricted, dropped = restrict_region(directive, caps)
        region_options[name] = lower_options(restricted)
        notes.extend(dropped)
    return PortSpec(
        model=OMP_TARGET, program=base.program,
        # each OpenMP parallel-for line becomes one target-teams line;
        # every explicit data scope costs one `target data map(...)` line
        directive_lines=base.directive_lines + len(base.data_regions),
        restructured_lines=base.restructured_lines,
        data_regions=tuple(base.data_regions),
        region_options=region_options,
        notes=("derived from the OpenMPC annotations via the directive "
               "IR",) + tuple(notes))

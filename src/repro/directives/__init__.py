"""The model-neutral directive IR.

Every directive model in the paper spells the same three ideas
differently: *parallelism levels* (OpenACC ``gang``/``worker``/``vector``
versus OpenMP ``teams``/``parallel``/``simd``), *data motion*
(``copyin``/``copyout``/``create`` versus ``map(to/from/alloc)`` versus
HMPP ``advancedload``/``delegatedstore``), and *reductions*.  This
package provides the normalized representation those spellings lower
to:

* :class:`~repro.directives.ir.RegionDirective` — one region's
  annotations (offload construct, parallelism, transform requests, and
  tuning knobs), round-trippable to
  :class:`~repro.models.base.RegionOptions` without loss;
* :class:`~repro.directives.ir.DataDirective` — one data-scope
  annotation, round-trippable to
  :class:`~repro.models.base.DataRegionSpec`;
* :class:`~repro.directives.ir.DirectiveBundle` — a whole port's
  directives, produced by :func:`~repro.directives.ir.normalize_port`.

The shared :class:`~repro.pipeline.passes.Intake` pass lowers every
compiler's per-region options *through* this IR, so all seven pipelines
consume one normalized form; :mod:`repro.translate` rewrites bundles
between models; and :func:`~repro.directives.derive.derive_port`
mechanically derives the OpenMP-target ports from the OpenMPC
annotations.
"""

from repro.directives.ir import (DataDirective, DirectiveBundle,
                                 ParallelismDirective, RegionDirective,
                                 TransformDirective, TuningDirective,
                                 dialect_of, lower_data, lower_options,
                                 normalize_data, normalize_options,
                                 normalize_port, spell_levels, spell_motion)
from repro.directives.derive import derive_port

__all__ = [
    "ParallelismDirective", "TransformDirective", "TuningDirective",
    "RegionDirective", "DataDirective", "DirectiveBundle",
    "normalize_options", "lower_options", "normalize_data", "lower_data",
    "normalize_port", "dialect_of", "spell_motion", "spell_levels",
    "derive_port",
]

"""Normalized directive dataclasses and the round-trip converters.

Design constraints:

* **Lossless round trip.**  ``lower_options(normalize_options(o)) == o``
  for every :class:`~repro.models.base.RegionOptions` a port can carry —
  including invalid values (an unknown compute construct must survive
  normalization so the target compiler's own legality pass rejects it
  with its own wording).  The shared intake pass relies on this: routing
  all seven pipelines through the IR must be a behavioural no-op.
* **Neutral vocabulary.**  The IR names concepts, not spellings:
  ``per-nest``/``fused`` instead of ``kernels``/``parallel`` or
  ``target teams distribute``; ``to_device``/``to_host``/``device_only``
  instead of ``copyin``/``map(to:)``/``advancedload``.  The per-dialect
  spelling tables at the bottom translate back for diagnostics, notes,
  and the docs' translation matrix.
* **No heavyweight imports at module scope.**  ``repro.models.base``
  imports the pass library which imports this module, so the converters
  import ``RegionOptions``/``DataRegionSpec`` lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.models.base import DataRegionSpec, PortSpec, RegionOptions


# ---------------------------------------------------------------------------
# The IR dataclasses
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ParallelismDirective:
    """Normalized parallelism levels for one offloaded region.

    ``levels`` uses the neutral (OpenACC-derived) names; the OpenMP
    spelling maps gang→teams, worker→parallel, vector→simd (see
    :data:`LEVEL_SPELLINGS`).  ``vector_length`` is the innermost-level
    width: OpenACC ``vector_length()``, OpenMP ``thread_limit``, HMPP
    ``blocksize`` — our :class:`~repro.models.base.RegionOptions`
    ``block_threads``.
    """

    levels: tuple[str, ...] = ("gang", "vector")
    vector_length: Optional[int] = None


@dataclass(frozen=True)
class TransformDirective:
    """Directive-requested loop transformations (HMPP ``permute`` /
    ``gridify``; only models whose capability set says
    ``explicit_loop_transforms`` may honor them)."""

    interchange: bool = False
    collapse: bool = False
    #: ablation hook: suppress the compiler's automatic transforms
    suppress_automatic: bool = False


@dataclass(frozen=True)
class TuningDirective:
    """Model-specific tuning facts a port may attach to a region.

    Mappings are stored as key-sorted tuples so directives hash and
    compare structurally; :func:`lower_options` rebuilds the dicts.
    """

    placements: tuple[tuple[str, object], ...] = ()
    tiling: tuple[object, ...] = ()
    indirect_carriers: tuple[str, ...] = ()
    regs_per_thread: int = 24
    pattern_overrides: tuple[tuple[str, object], ...] = ()
    private_orientations: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class RegionDirective:
    """One region's normalized annotations."""

    region: str
    #: offload construct: ``per-nest`` (one kernel per loop nest — the
    #: acc ``kernels`` / PGI compute-region behaviour) or ``fused`` (the
    #: whole region is a single kernel — acc ``parallel``, OpenMP
    #: ``target teams``).  Unknown source constructs pass through
    #: verbatim so the target compiler's legality check still sees them.
    offload: str = "per-nest"
    parallelism: ParallelismDirective = field(
        default_factory=ParallelismDirective)
    transforms: TransformDirective = field(default_factory=TransformDirective)
    tuning: TuningDirective = field(default_factory=TuningDirective)


@dataclass(frozen=True)
class DataDirective:
    """One data-scope annotation in neutral vocabulary.

    ``to_device`` arrays move host→device at scope entry (copyin /
    ``map(to:)`` / ``advancedload``), ``to_host`` device→host at exit
    (copyout / ``map(from:)`` / ``delegatedstore``), ``device_only``
    live on the device (create / ``map(alloc:)`` / resident).
    """

    scope: str
    regions: tuple[str, ...]
    to_device: tuple[str, ...] = ()
    to_host: tuple[str, ...] = ()
    device_only: tuple[str, ...] = ()


@dataclass(frozen=True)
class DirectiveBundle:
    """A whole port's directives, detached from any model spelling."""

    model: str
    regions: tuple[tuple[str, RegionDirective], ...] = ()
    data: tuple[DataDirective, ...] = ()

    def region(self, name: str) -> Optional[RegionDirective]:
        for rname, directive in self.regions:
            if rname == name:
                return directive
        return None


# ---------------------------------------------------------------------------
# Round-trip converters
# ---------------------------------------------------------------------------

#: model construct spelling ↔ neutral offload name (unknowns pass through)
_CONSTRUCT_TO_NEUTRAL = {"kernels": "per-nest", "parallel": "fused"}
_NEUTRAL_TO_CONSTRUCT = {v: k for k, v in _CONSTRUCT_TO_NEUTRAL.items()}


def _sorted_items(mapping: Mapping) -> tuple:
    return tuple(sorted(mapping.items(), key=lambda kv: kv[0]))


def normalize_options(region: str, opts: "RegionOptions") -> RegionDirective:
    """Normalize one region's options into the directive IR."""
    return RegionDirective(
        region=region,
        offload=_CONSTRUCT_TO_NEUTRAL.get(opts.construct, opts.construct),
        parallelism=ParallelismDirective(
            vector_length=opts.block_threads),
        transforms=TransformDirective(
            interchange=opts.request_loop_swap,
            collapse=opts.request_collapse,
            suppress_automatic=opts.disable_auto_transforms),
        tuning=TuningDirective(
            placements=_sorted_items(opts.placements),
            tiling=tuple(opts.tiling),
            indirect_carriers=tuple(opts.indirect_carriers),
            regs_per_thread=opts.regs_per_thread,
            pattern_overrides=_sorted_items(opts.pattern_overrides),
            private_orientations=_sorted_items(opts.private_orientations)))


def lower_options(directive: RegionDirective) -> "RegionOptions":
    """Lower a region directive back to per-model options — the exact
    inverse of :func:`normalize_options`."""
    from repro.models.base import RegionOptions

    tuning = directive.tuning
    return RegionOptions(
        block_threads=directive.parallelism.vector_length,
        placements=dict(tuning.placements),
        tiling=tuple(tuning.tiling),
        indirect_carriers=tuple(tuning.indirect_carriers),
        request_loop_swap=directive.transforms.interchange,
        request_collapse=directive.transforms.collapse,
        disable_auto_transforms=directive.transforms.suppress_automatic,
        regs_per_thread=tuning.regs_per_thread,
        pattern_overrides=dict(tuning.pattern_overrides),
        private_orientations=dict(tuning.private_orientations),
        construct=_NEUTRAL_TO_CONSTRUCT.get(directive.offload,
                                            directive.offload))


def normalize_data(spec: "DataRegionSpec") -> DataDirective:
    """Normalize one data-scope annotation."""
    return DataDirective(scope=spec.name, regions=tuple(spec.regions),
                         to_device=tuple(spec.copyin),
                         to_host=tuple(spec.copyout),
                         device_only=tuple(spec.create))


def lower_data(directive: DataDirective) -> "DataRegionSpec":
    """Lower a data directive back to a model data region."""
    from repro.models.base import DataRegionSpec

    return DataRegionSpec(name=directive.scope,
                          regions=tuple(directive.regions),
                          copyin=tuple(directive.to_device),
                          copyout=tuple(directive.to_host),
                          create=tuple(directive.device_only))


def normalize_port(port: "PortSpec") -> DirectiveBundle:
    """Normalize every directive a port carries.

    Regions without explicit options are omitted — their directive is
    the default :class:`RegionDirective`, exactly as
    :meth:`PortSpec.options_for` defaults to ``RegionOptions()``.
    """
    return DirectiveBundle(
        model=port.model,
        regions=tuple((name, normalize_options(name, opts))
                      for name, opts in port.region_options.items()),
        data=tuple(normalize_data(dr) for dr in port.data_regions))


# ---------------------------------------------------------------------------
# Per-dialect spelling (diagnostics, notes, docs)
# ---------------------------------------------------------------------------

#: data-motion clause spellings per dialect, in (to_device, to_host,
#: device_only) order
MOTION_SPELLINGS: Mapping[str, tuple[str, str, str]] = {
    "acc": ("copyin({})", "copyout({})", "create({})"),
    "omp": ("map(to: {})", "map(from: {})", "map(alloc: {})"),
    "hmpp": ("advancedload({})", "delegatedstore({})", "resident({})"),
}

#: parallelism-level spellings per dialect
LEVEL_SPELLINGS: Mapping[str, Mapping[str, str]] = {
    "acc": {"gang": "gang", "worker": "worker", "vector": "vector"},
    "omp": {"gang": "teams", "worker": "parallel", "vector": "simd"},
    "hmpp": {"gang": "grid", "worker": "block", "vector": "thread"},
}

#: which dialect each model spells its directives in
MODEL_DIALECTS: Mapping[str, str] = {
    "PGI Accelerator": "acc",
    "OpenACC": "acc",
    "HMPP": "hmpp",
    "OpenMPC": "omp",
    "OpenMP-Target": "omp",
    "R-Stream": "acc",
}


def dialect_of(model: str) -> str:
    """The directive dialect a model spells its annotations in."""
    return MODEL_DIALECTS.get(model, "acc")


def spell_motion(directive: DataDirective, dialect: str) -> tuple[str, ...]:
    """Render a data directive's clauses in one dialect's spelling."""
    to_dev, to_host, dev_only = MOTION_SPELLINGS[dialect]
    clauses = []
    if directive.to_device:
        clauses.append(to_dev.format(", ".join(directive.to_device)))
    if directive.to_host:
        clauses.append(to_host.format(", ".join(directive.to_host)))
    if directive.device_only:
        clauses.append(dev_only.format(", ".join(directive.device_only)))
    return tuple(clauses)


def spell_levels(directive: ParallelismDirective,
                 dialect: str) -> tuple[str, ...]:
    """Render parallelism levels in one dialect's spelling."""
    table = LEVEL_SPELLINGS[dialect]
    return tuple(table.get(level, level) for level in directive.levels)

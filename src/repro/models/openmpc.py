"""The OpenMPC compiler (Section III-D).

OpenMPC consumes the OpenMP annotations directly, which is why its ports
carry almost no restructuring (Table II: +5.2%).  Implemented behaviour:

* **Region splitting** at every barrier; a split that leaves private
  scalars upward-exposed is rejected with a diagnostic (the paper: the
  compiler flags these for manual restructuring).
* **Critical sections** are accepted iff they encode (scalar or array)
  reduction patterns, which become two-level GPU reductions.
* **Array reduction clauses** are accepted (OpenMPC extension).
* **Function calls** in offloaded regions are supported through
  interprocedural analysis + selective procedure cloning — no inlining
  requirement.
* **Automatic optimizations** (each can be disabled for the ablations):

  - *parallel loop-swap* on perfect 2-deep nests when the access analysis
    shows the swap converts strided traffic to coalesced (JACOBI, SRAD);
  - *loop collapsing* of irregular (CSR-style) inner loops — modeled as
    a pattern override making directly-indexed arrays coalesced (SPMUL,
    CG);
  - *matrix-transpose* (column-wise) private-array expansion (EP);
  - OpenMP-3.0 ``collapse`` clauses are honored structurally (HOTSPOT).

* **Interprocedural data-flow transfer optimization**: the compiler
  synthesizes a whole-program data scope (copy each array in before its
  first GPU use, out after its last) with no user data clauses — the
  :class:`~repro.pipeline.passes.AutoDataPlan` transfer pass.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransformError
from repro.ir.analysis.access import AccessPattern, summarize_accesses
from repro.ir.analysis.affine import is_affine_in
from repro.ir.analysis.liveness import analyze_split
from repro.ir.expr import ArrayRef
from repro.ir.program import ParallelRegion, Program
from repro.ir.stmt import Barrier, For, LocalDecl, Stmt
from repro.ir.transforms.collapse import promote_inner_parallel
from repro.ir.transforms.interchange import parallel_loop_swap
from repro.models.base import DirectiveCompiler
from repro.models.features import CAPABILITIES
from repro.pipeline.core import PassContext, RegionPass
from repro.pipeline.passes import (AutoDataPlan, BuildKernels, Check,
                                   DefaultPrivateOrientation, FeatureScan,
                                   Intake, LoopTransform, Note,
                                   OrientationNote, check_contiguity,
                                   check_no_pointer_arith,
                                   check_worksharing)


def _split_at_barriers(region: ParallelRegion) -> list[list[Stmt]]:
    """Split the region's top-level statement list at barriers."""
    pieces: list[list[Stmt]] = [[]]
    for stmt in region.body.stmts:
        if isinstance(stmt, Barrier):
            pieces.append([])
        else:
            pieces[-1].append(stmt)
    return [p for p in pieces if p]


def _non_reduction_critical(ctx: PassContext) -> Optional[str]:
    if ctx.feats.has_critical and not ctx.feats.criticals_are_reductions:
        return ("critical sections are accepted only when they match a "
                "reduction pattern")
    return None


class BarrierSplitLegality(RegionPass):
    """Validate every barrier split: a cut that leaves private scalars
    upward-exposed is flagged for manual restructuring (III-D2)."""

    name = "check-barrier-split"
    stage = "legality"

    def run(self, ctx: PassContext) -> None:
        if not ctx.feats.has_barrier:
            return
        region = ctx.region
        pieces = _split_at_barriers(region)
        for cut in range(1, len(pieces)):
            prefix = [s for piece in pieces[:cut] for s in piece]
            suffix = [s for piece in pieces[cut:] for s in piece]
            report = analyze_split(prefix, suffix, region.private)
            if not report.safe:
                ctx.reject(
                    "upward-exposed-private",
                    f"splitting region {region.name!r} at a barrier "
                    f"exposes private variables "
                    f"{sorted(report.upward_exposed)}; restructure "
                    "the code manually")


class CollapseClause(LoopTransform):
    """Honor OpenMP-3.0 ``collapse`` clauses (and directive requests)
    structurally — a 2-D grid instead of the outer loop alone."""

    name = "collapse-clause"

    def rewrite(self, ctx: PassContext, loop: For) -> For:
        if not (loop.collapse > 1 or ctx.opts.request_collapse):
            return loop
        try:
            promoted = promote_inner_parallel(loop)
        except TransformError:
            return loop
        ctx.note("collapse clause honored (2-D grid)")
        return promoted


class AutoLoopSwap(LoopTransform):
    """Swap a perfect (parallel, sequential) 2-deep nest when the access
    analysis says the swap converts strided to coalesced."""

    name = "auto-loop-swap"

    def rewrite(self, ctx: PassContext, loop: For) -> For:
        if ctx.opts.disable_auto_transforms:
            return loop
        swapped = self._try_loop_swap(loop, ctx.program)
        if swapped is None:
            return loop
        ctx.note("automatic parallel loop-swap")
        return swapped

    @staticmethod
    def _try_loop_swap(loop: For, program: Program) -> Optional[For]:
        inner = [s for s in loop.body.stmts if isinstance(s, For)]
        others = [s for s in loop.body.stmts
                  if not isinstance(s, (For, LocalDecl))]
        if len(inner) != 1 or others or inner[0].parallel:
            return None
        extents = {name: [None] * decl.ndim
                   for name, decl in program.arrays.items()}
        before = summarize_accesses(loop, [loop.var], extents)
        try:
            # OpenMPC's aggressive optimizations "rely on array-name-only
            # analyses" and do not guarantee correctness (III-D2): the
            # swap is forced past the conservative dependence test, and
            # the user is expected to verify the output (our test-suite
            # does, against the NumPy references).
            swapped = parallel_loop_swap(loop, force=True)
        except TransformError:
            return None
        after = summarize_accesses(swapped, [swapped.var], extents)

        def badness(summary) -> float:
            score = 0.0
            for ref, count in summary.refs:
                if ref.pattern is AccessPattern.STRIDED:
                    score += count * min(ref.stride, 32)
                elif ref.pattern is AccessPattern.INDIRECT:
                    score += count * 24
            return score

        if badness(after) < badness(before):
            return swapped
        return None


class IrregularLoopCollapse(RegionPass):
    """CSR-style loop collapsing, modeled as an access-pattern decision:
    arrays subscripted affinely by the collapsed inner index become
    coalesced (SPMUL, CG).  Scans the *original* work-sharing loops —
    the analysis predates the structural transforms."""

    name = "irregular-loop-collapse"
    stage = "placement"

    def run(self, ctx: PassContext) -> None:
        if ctx.opts.disable_auto_transforms:
            return
        for loop in ctx.region.worksharing_loops():
            collapsed = self._collapsible_irregular_arrays(loop)
            if collapsed:
                for name in collapsed:
                    ctx.pattern_overrides[name] = AccessPattern.COALESCED
                ctx.note(
                    "loop collapsing of irregular inner loop "
                    f"(coalesced: {', '.join(sorted(collapsed))})")

    @staticmethod
    def _collapsible_irregular_arrays(loop: For) -> set[str]:
        """Arrays the CSR-style loop collapsing would make coalesced.

        Looks for a sequential inner loop whose bounds depend on the
        parallel index (directly or via an index array) and returns the
        arrays subscripted *affinely by the inner index* — after
        collapsing, the inner index becomes the thread index and those
        accesses are contiguous.
        """
        result: set[str] = set()

        def scan(stmt: Stmt, tvars: set[str]) -> None:
            if isinstance(stmt, For):
                bound_vars = (stmt.lower.free_vars()
                              | stmt.upper.free_vars())
                if not stmt.parallel and (bound_vars & tvars):
                    for expr_stmt in stmt.body.walk():
                        for expr in expr_stmt.exprs():
                            for node in expr.walk():
                                if isinstance(node, ArrayRef):
                                    if all(is_affine_in(ix, [stmt.var])
                                           and (stmt.var in ix.free_vars())
                                           for ix in node.indices):
                                        result.add(node.name)
                else:
                    scan(stmt.body, tvars | {stmt.var} if stmt.parallel
                         else tvars)
                return
            for child in stmt.child_stmts():
                scan(child, tvars)

        scan(loop.body, {loop.var})
        return result


class TransposedOrientation(DefaultPrivateOrientation):
    """Matrix-transpose (column-wise) private-array expansion when the
    automatic optimizations are on; plain row-wise otherwise (EP)."""

    name = "private-orientation"

    def __init__(self) -> None:
        super().__init__("column")

    def pick(self, ctx: PassContext) -> str:
        return "row" if ctx.opts.disable_auto_transforms else "column"


class OpenMPCCompiler(DirectiveCompiler):
    """OpenMPC 0.31."""

    name = "OpenMPC"

    def build_pipeline(self) -> list:
        caps = CAPABILITIES[self.name]
        passes: list = [
            Intake(),
            FeatureScan(),
            check_worksharing(
                template="region {name!r} has no work-sharing construct; "
                         "sub-regions without one execute on the host"),
            Check("check-critical-reduction", "non-reduction-critical",
                  _non_reduction_critical),
            check_no_pointer_arith(
                feature="pointer-type",
                template="pointer-type variables must be converted to "
                         "arrays (outline the parallel region)"),
        ]
        if caps.contiguous_data_required:
            passes.append(check_contiguity(
                "non-contiguous-data",
                "multi-dimensional array {array!r} must be allocated "
                "as one continuous layout"))
        passes += [
            BarrierSplitLegality(),
            CollapseClause(),
            AutoLoopSwap(),
            IrregularLoopCollapse(),
            TransposedOrientation(),
            BuildKernels(),
            OrientationNote(
                "column",
                "matrix-transpose (column-wise) private-array expansion",
                when=lambda ctx: not ctx.opts.disable_auto_transforms),
            Note("critical-reduction-note", "codegen",
                 "critical-section reduction converted to two-level "
                 "tree reduction",
                 when=lambda ctx: ctx.feats.has_critical),
            Note("interprocedural-note", "codegen",
                 "interprocedural translation with selective procedure "
                 "cloning",
                 when=lambda ctx: ctx.feats.has_call),
        ]
        if caps.automatic_data_plan:
            # interprocedural transfer optimization: one program-wide
            # scope (explicit port data clauses win)
            passes.append(AutoDataPlan("__openmpc_interprocedural__"))
        return passes

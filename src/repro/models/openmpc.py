"""The OpenMPC compiler (Section III-D).

OpenMPC consumes the OpenMP annotations directly, which is why its ports
carry almost no restructuring (Table II: +5.2%).  Implemented behaviour:

* **Region splitting** at every barrier; a split that leaves private
  scalars upward-exposed is rejected with a diagnostic (the paper: the
  compiler flags these for manual restructuring).
* **Critical sections** are accepted iff they encode (scalar or array)
  reduction patterns, which become two-level GPU reductions.
* **Array reduction clauses** are accepted (OpenMPC extension).
* **Function calls** in offloaded regions are supported through
  interprocedural analysis + selective procedure cloning — no inlining
  requirement.
* **Automatic optimizations** (each can be disabled for the ablations):

  - *parallel loop-swap* on perfect 2-deep nests when the access analysis
    shows the swap converts strided traffic to coalesced (JACOBI, SRAD);
  - *loop collapsing* of irregular (CSR-style) inner loops — modeled as
    a pattern override making directly-indexed arrays coalesced (SPMUL,
    CG);
  - *matrix-transpose* (column-wise) private-array expansion (EP);
  - OpenMP-3.0 ``collapse`` clauses are honored structurally (HOTSPOT).

* **Interprocedural data-flow transfer optimization**: the compiler
  synthesizes a whole-program data scope (copy each array in before its
  first GPU use, out after its last) with no user data clauses.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransformError
from repro.gpusim.kernel import Kernel
from repro.ir.analysis.access import AccessPattern, summarize_accesses
from repro.ir.analysis.affine import is_affine_in
from repro.ir.analysis.features import RegionFeatures
from repro.ir.analysis.liveness import analyze_split
from repro.ir.expr import ArrayRef
from repro.ir.program import ParallelRegion, Program
from repro.ir.stmt import Barrier, Block, For, LocalDecl, Stmt
from repro.ir.transforms.collapse import promote_inner_parallel
from repro.ir.transforms.interchange import parallel_loop_swap
from repro.models.base import (CompiledProgram, DataRegionSpec,
                               DirectiveCompiler, PortSpec, grid_nest)


def _split_at_barriers(region: ParallelRegion) -> list[list[Stmt]]:
    """Split the region's top-level statement list at barriers."""
    pieces: list[list[Stmt]] = [[]]
    for stmt in region.body.stmts:
        if isinstance(stmt, Barrier):
            pieces.append([])
        else:
            pieces[-1].append(stmt)
    return [p for p in pieces if p]


class OpenMPCCompiler(DirectiveCompiler):
    """OpenMPC 0.31."""

    name = "OpenMPC"

    # -- acceptance -------------------------------------------------------
    def check_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec) -> None:
        if feats.worksharing_loops == 0:
            self.reject(
                region,
                "no-worksharing-loop",
                f"region {region.name!r} has no work-sharing construct; "
                "sub-regions without one execute on the host")
        if feats.has_critical and not feats.criticals_are_reductions:
            self.reject(
                region,
                "non-reduction-critical",
                "critical sections are accepted only when they match a "
                "reduction pattern")
        if feats.has_pointer_arith:
            self.reject(
                region,
                "pointer-type",
                "pointer-type variables must be converted to arrays "
                "(outline the parallel region)")
        for name in sorted(feats.arrays_referenced):
            if name in program.arrays and not program.arrays[name].contiguous:
                self.reject(
                region,
                    "non-contiguous-data",
                    f"multi-dimensional array {name!r} must be allocated "
                    "as one continuous layout")
        if feats.has_barrier:
            pieces = _split_at_barriers(region)
            for cut in range(1, len(pieces)):
                prefix = [s for piece in pieces[:cut] for s in piece]
                suffix = [s for piece in pieces[cut:] for s in piece]
                report = analyze_split(prefix, suffix, region.private)
                if not report.safe:
                    self.reject(
                region,
                        "upward-exposed-private",
                        f"splitting region {region.name!r} at a barrier "
                        f"exposes private variables "
                        f"{sorted(report.upward_exposed)}; restructure "
                        "the code manually")

    # -- lowering -----------------------------------------------------------
    def lower_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec,
                     ) -> tuple[list[Kernel], list[str]]:
        opts = port.options_for(region.name)
        auto = not opts.disable_auto_transforms
        applied: list[str] = []

        def transform(loop: For) -> tuple[For, list[str]]:
            notes: list[str] = []
            body: For = loop
            if (loop.collapse > 1 or opts.request_collapse):
                try:
                    body = promote_inner_parallel(body)
                    notes.append("collapse clause honored (2-D grid)")
                except TransformError:
                    pass
            if auto:
                swapped = self._try_loop_swap(body, program)
                if swapped is not None:
                    body = swapped
                    notes.append("automatic parallel loop-swap")
            return body, notes

        overrides: dict[str, AccessPattern] = {}
        if auto:
            for loop in region.worksharing_loops():
                collapsed = self._collapsible_irregular_arrays(loop)
                if collapsed:
                    for name in collapsed:
                        overrides[name] = AccessPattern.COALESCED
                    applied.append(
                        "loop collapsing of irregular inner loop "
                        f"(coalesced: {', '.join(sorted(collapsed))})")

        kernels, notes = self.kernels_from_worksharing(
            region, program, port, transform=transform,
            default_private_orientation="column" if auto else "row",
            extra_pattern_overrides=overrides)
        applied.extend(notes)
        if auto and any(k.private_orientations.get(n) == "column"
                        for k in kernels for n in k.private_orientations):
            applied.append("matrix-transpose (column-wise) private-array "
                           "expansion")
        if feats.has_critical:
            applied.append("critical-section reduction converted to "
                           "two-level tree reduction")
        if feats.has_call:
            applied.append("interprocedural translation with selective "
                           "procedure cloning")
        return kernels, applied

    # -- automatic transforms ---------------------------------------------
    def _try_loop_swap(self, loop: For, program: Program) -> Optional[For]:
        """Swap a perfect (parallel, sequential) 2-deep nest when the
        access analysis says the swap converts strided to coalesced."""
        inner = [s for s in loop.body.stmts if isinstance(s, For)]
        others = [s for s in loop.body.stmts
                  if not isinstance(s, (For, LocalDecl))]
        if len(inner) != 1 or others or inner[0].parallel:
            return None
        extents = {name: [None] * decl.ndim
                   for name, decl in program.arrays.items()}
        before = summarize_accesses(loop, [loop.var], extents)
        try:
            # OpenMPC's aggressive optimizations "rely on array-name-only
            # analyses" and do not guarantee correctness (III-D2): the
            # swap is forced past the conservative dependence test, and
            # the user is expected to verify the output (our test-suite
            # does, against the NumPy references).
            swapped = parallel_loop_swap(loop, force=True)
        except TransformError:
            return None
        after = summarize_accesses(swapped, [swapped.var], extents)

        def badness(summary) -> float:
            score = 0.0
            for ref, count in summary.refs:
                if ref.pattern is AccessPattern.STRIDED:
                    score += count * min(ref.stride, 32)
                elif ref.pattern is AccessPattern.INDIRECT:
                    score += count * 24
            return score

        if badness(after) < badness(before):
            return swapped
        return None

    def _collapsible_irregular_arrays(self, loop: For) -> set[str]:
        """Arrays the CSR-style loop collapsing would make coalesced.

        Looks for a sequential inner loop whose bounds depend on the
        parallel index (directly or via an index array) and returns the
        arrays subscripted *affinely by the inner index* — after
        collapsing, the inner index becomes the thread index and those
        accesses are contiguous.
        """
        result: set[str] = set()

        def scan(stmt: Stmt, tvars: set[str]) -> None:
            if isinstance(stmt, For):
                bound_vars = (stmt.lower.free_vars()
                              | stmt.upper.free_vars())
                if not stmt.parallel and (bound_vars & tvars):
                    for expr_stmt in stmt.body.walk():
                        for expr in expr_stmt.exprs():
                            for node in expr.walk():
                                if isinstance(node, ArrayRef):
                                    if all(is_affine_in(ix, [stmt.var])
                                           and (stmt.var in ix.free_vars())
                                           for ix in node.indices):
                                        result.add(node.name)
                else:
                    scan(stmt.body, tvars | {stmt.var} if stmt.parallel
                         else tvars)
                return
            for child in stmt.child_stmts():
                scan(child, tvars)

        scan(loop.body, {loop.var})
        return result

    # -- data planning ---------------------------------------------------
    def plan_data(self, compiled: CompiledProgram) -> None:
        """Interprocedural transfer optimization: one program-wide scope."""
        from repro.models.base import auto_data_region

        if compiled.port.data_regions:
            return  # the port's explicit clauses win
        auto = auto_data_region(compiled, "__openmpc_interprocedural__")
        if auto is not None:
            compiled.data_regions = (auto,)

"""The OpenMP target-offload compiler (the paper's Section VI outlook).

Section VI anticipates that the directive models evaluated in 2012
would converge into a standard accelerator directive set; OpenMP 4.0/4.5
``target`` offload is that convergence.  This module models an OpenMP
4.5+ compiler lowering ``target teams distribute parallel for`` the way
the six period compilers lower their own annotations — as a declarative
pass list over the shared library in :mod:`repro.pipeline.passes`,
constrained by the ``OpenMP-Target`` row of
:data:`~repro.models.features.CAPABILITIES`.

Semantics, relative to the period models:

* **regions are structured blocks** (like OpenMPC): statements outside
  the work-sharing loops run redundantly by the teams, so only regions
  with at least one work-sharing construct are accepted, and barrier
  splits obey the same upward-exposure legality as OpenMPC;
* **reductions** have first-class clauses, scalar and array (OpenMP 4.5
  array sections), and reduction-encoding critical sections lower to
  reduction clauses;
* **calls** are supported through ``declare target`` — no inlining
  requirement;
* **data motion** is explicit ``map(to:/from:/alloc:)`` plus the
  implicit per-invocation ``tofrom`` default.  Port data regions map
  onto ``target data`` scopes: ``copyin``/``copyout``/``create`` are the
  directive IR's neutral names for ``map(to:)``/``map(from:)``/
  ``map(alloc:)`` (see :mod:`repro.directives`).  There is **no**
  automatic whole-program transfer planning — the port's clauses are
  the plan;
* **loop transformations**: the standard (pre-5.1) has no permute
  directive, so loop-swap requests are rejected; ``collapse`` is a
  first-class clause and is honored structurally;
* **map clauses name whole arrays**, so mapped arrays must be
  contiguous, and pointer-type variables must be converted to arrays
  first — the same porting chores OpenMPC documents.

The pipeline deliberately shares its legality spine with OpenMPC
(``intake … check-worksharing … check-barrier-split, collapse-clause``,
in order): the OpenMP-target model is the standardized subset of what
OpenMPC prototyped, minus the aggressive automatic optimizations
(no auto loop-swap, no irregular-loop collapsing, no transposed
private expansion, no interprocedural transfer planning).  The
test-suite pins that subsequence relationship.
"""

from __future__ import annotations

from typing import Optional

from repro.models.base import DirectiveCompiler
from repro.models.features import CAPABILITIES
from repro.models.openmpc import (BarrierSplitLegality, CollapseClause,
                                  _non_reduction_critical)
from repro.pipeline.core import PassContext
from repro.pipeline.passes import (BuildKernels, Check,
                                   DefaultPrivateOrientation, FeatureScan,
                                   Intake, Note, check_construct,
                                   check_contiguity, check_no_pointer_arith,
                                   check_worksharing)


def _no_permute_directive(ctx: PassContext) -> Optional[str]:
    if ctx.opts.request_loop_swap:
        return ("OpenMP has no loop-permutation directive; "
                "restructure the input code instead")
    return None


class OmpTargetCompiler(DirectiveCompiler):
    """OpenMP 4.5+ ``target`` offload."""

    name = "OpenMP-Target"

    def build_pipeline(self) -> list:
        caps = CAPABILITIES[self.name]
        passes: list = [
            Intake(),
            FeatureScan(),
            check_construct(caps),
            Check("check-transform-directives",
                  "no-loop-transformation-directives",
                  _no_permute_directive),
            check_worksharing(
                template="region {name!r} has no work-sharing construct; "
                         "a bare target teams region executes redundantly "
                         "on every team"),
            Check("check-critical-reduction", "non-reduction-critical",
                  _non_reduction_critical),
            check_no_pointer_arith(
                feature="pointer-type",
                template="pointer-type variables must be converted to "
                         "arrays before mapping (map clauses name whole "
                         "arrays)"),
        ]
        if caps.contiguous_data_required:
            passes.append(check_contiguity(
                "non-contiguous-data",
                "multi-dimensional array {array!r} must be contiguous "
                "to be named in a single map clause"))
        passes += [
            BarrierSplitLegality(),
            CollapseClause(),
            DefaultPrivateOrientation("row"),
            BuildKernels(),
            Note("target-teams-note", "codegen",
                 "lowered as target teams distribute parallel for"),
            Note("critical-reduction-note", "codegen",
                 "critical-section reduction lowered as an OpenMP "
                 "reduction clause",
                 when=lambda ctx: ctx.feats.has_critical),
            Note("declare-target-note", "codegen",
                 "called functions compiled for the device via "
                 "declare target",
                 when=lambda ctx: ctx.feats.has_call),
        ]
        return passes

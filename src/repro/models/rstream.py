"""The R-Stream polyhedral compiler (Section III-E).

R-Stream is fully automatic but only over *extended static control*
programs: affine loop bounds, affine subscripts, static control flow.
Our front end runs the real affine analysis
(:func:`repro.ir.analysis.affine.region_is_affine`) to decide
mappability, which is where Table II's 22/58 coverage comes from — the
blackboxing escape hatch is "not yet fully supported for porting to
GPUs" (III-E2) and therefore, faithfully, not implemented.

For mappable regions everything is automatic: dependence-checked
parallelization (the input's OpenMP annotations are ignored — R-Stream
re-derives parallelism), multi-dimensional grid mapping, hierarchical
tiling into shared memory, and per-region transfer management.  Cross-
region transfer optimization is *not* performed (the regions would have
to be merged into one mappable function, III-E2), so R-Stream programs
pay per-invocation transfers like untuned PGI ports.
"""

from __future__ import annotations

from typing import Optional

from repro.gpusim.kernel import Kernel
from repro.ir.analysis.deps import parallelization_safe
from repro.ir.analysis.features import RegionFeatures
from repro.ir.program import ParallelRegion, Program
from repro.ir.stmt import For
from repro.ir.transforms.tiling import TilingDecision
from repro.models.base import (CompiledProgram, DataRegionSpec,
                               DirectiveCompiler, PortSpec, grid_nest)

#: tile edge chosen by the hierarchical mapper for stencil nests
AUTO_TILE = 32


class RStreamCompiler(DirectiveCompiler):
    """R-Stream 3.2RC1."""

    name = "R-Stream"

    def check_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec) -> None:
        for name in sorted(feats.arrays_referenced):
            decl = program.arrays.get(name)
            if decl is not None and not decl.contiguous:
                self.reject(
                region,
                    "pointer-based-allocation",
                    f"array {name!r} is allocated as pointer-to-pointer "
                    "rows; the polyhedral mapper needs one dense linear "
                    "layout")
        if not feats.is_affine:
            self.reject(
                region,
                "non-affine",
                f"region {region.name!r} is not an extended static "
                f"control program: {'; '.join(feats.affine_violations[:3])}"
                " (blackboxing not yet supported for GPU targets)")
        if feats.worksharing_loops == 0:
            self.reject(
                region,
                "no-loop",
                f"region {region.name!r} has no mappable loop")
        # The polyhedral mapper must *prove* parallelism; annotation is
        # not trusted.  Loops it cannot prove parallel run sequentially,
        # and a region with no provably parallel loop is not mapped.
        # coupled=False: R-Stream tests subscript dimensions in
        # isolation, so NW's coupled anti-diagonals stay unproven
        # (Table II reports the wavefront regions unmapped).
        if not any(parallelization_safe(loop, coupled=False)
                   or loop.reductions  # reductions are handled specially
                   for loop in region.worksharing_loops()):
            self.reject(
                region,
                "no-provable-parallelism",
                f"dependence analysis finds no parallel loop in "
                f"{region.name!r}")
        # practical limit on mapping complexity (III-E2)
        if feats.max_nest_depth > 5:
            self.reject(
                region,
                "mapping-complexity",
                f"nest depth {feats.max_nest_depth} exceeds the practical "
                "mapping limit")

    def lower_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec,
                     ) -> tuple[list[Kernel], list[str]]:
        applied = ["polyhedral dependence analysis and automatic mapping"]
        extra_tiling: list[TilingDecision] = []
        loops = region.worksharing_loops()
        if len(loops) == 1 and len(grid_nest(loops[0])) >= 2:
            read_only = tuple(sorted(feats.arrays_referenced
                                     - feats.arrays_written))
            if read_only:
                halo = AUTO_TILE + 2
                extra_tiling.append(TilingDecision(
                    tile_dims=(AUTO_TILE, AUTO_TILE),
                    reuse_factor=4.0,
                    smem_bytes_per_block=min(halo * halo * 8, 34 * 34 * 8),
                    arrays=read_only))
                applied.append("hierarchical tiling into shared memory")
        kernels, notes = self.kernels_from_worksharing(
            region, program, port,
            default_private_orientation="column",  # the mapper interleaves
            extra_tiling=extra_tiling)
        applied.extend(notes)
        return kernels, applied

    def plan_data(self, compiled: CompiledProgram) -> None:
        """Automatic whole-program transfer management — but only when
        *every* region is mappable.

        Cross-region transfer optimization requires merging the mappable
        regions into one function (III-E2); unmappable code between them
        blocks the merge (blackboxing unsupported), leaving the naive
        per-invocation transfer pattern.
        """
        from repro.models.base import auto_data_region

        if compiled.port.data_regions:
            return
        if not all(res.translated for res in compiled.results.values()):
            return
        auto = auto_data_region(compiled, "__rstream_merged__")
        if auto is not None:
            compiled.data_regions = (auto,)

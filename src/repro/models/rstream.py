"""The R-Stream polyhedral compiler (Section III-E).

R-Stream is fully automatic but only over *extended static control*
programs: affine loop bounds, affine subscripts, static control flow.
Our front end runs the real affine analysis
(:func:`repro.ir.analysis.affine.region_is_affine`) to decide
mappability, which is where Table II's 22/58 coverage comes from — the
blackboxing escape hatch is "not yet fully supported for porting to
GPUs" (III-E2) and therefore, faithfully, not implemented.

For mappable regions everything is automatic: dependence-checked
parallelization (the input's OpenMP annotations are ignored — R-Stream
re-derives parallelism), multi-dimensional grid mapping, hierarchical
tiling into shared memory, and per-region transfer management.  Cross-
region transfer optimization is *not* performed (the regions would have
to be merged into one mappable function, III-E2), so R-Stream programs
pay per-invocation transfers like untuned PGI ports — in the pipeline:
:class:`~repro.pipeline.passes.AutoDataPlan` with
``require_full_coverage`` set.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.analysis.deps import parallelization_safe
from repro.ir.transforms.tiling import TilingDecision
from repro.models.base import DirectiveCompiler
from repro.models.features import CAPABILITIES
from repro.pipeline.core import PassContext, RegionPass
from repro.pipeline.passes import (AutoDataPlan, BuildKernels, Check,
                                   DefaultPrivateOrientation, FeatureScan,
                                   Intake, Note, check_contiguity,
                                   check_nest_depth, check_worksharing,
                                   grid_nest)

#: tile edge chosen by the hierarchical mapper for stencil nests
AUTO_TILE = 32

#: practical limit on mapping complexity (III-E2)
MAX_MAPPING_DEPTH = 5


def _non_affine(ctx: PassContext) -> Optional[str]:
    feats = ctx.feats
    if not feats.is_affine:
        return (f"region {ctx.region.name!r} is not an extended static "
                f"control program: {'; '.join(feats.affine_violations[:3])}"
                " (blackboxing not yet supported for GPU targets)")
    return None


def _no_provable_parallelism(ctx: PassContext) -> Optional[str]:
    # The polyhedral mapper must *prove* parallelism; annotation is
    # not trusted.  Loops it cannot prove parallel run sequentially,
    # and a region with no provably parallel loop is not mapped.
    # coupled=False: R-Stream tests subscript dimensions in
    # isolation, so NW's coupled anti-diagonals stay unproven
    # (Table II reports the wavefront regions unmapped).
    if not any(parallelization_safe(loop, coupled=False)
               or loop.reductions  # reductions are handled specially
               for loop in ctx.region.worksharing_loops()):
        return (f"dependence analysis finds no parallel loop in "
                f"{ctx.region.name!r}")
    return None


class HierarchicalTiling(RegionPass):
    """The mapper's hierarchical tiling of stencil nests into shared
    memory (III-E1)."""

    name = "hierarchical-tiling"
    stage = "tiling"

    def run(self, ctx: PassContext) -> None:
        loops = ctx.region.worksharing_loops()
        if not (len(loops) == 1 and len(grid_nest(loops[0])) >= 2):
            return
        read_only = tuple(sorted(ctx.feats.arrays_referenced
                                 - ctx.feats.arrays_written))
        if not read_only:
            return
        halo = AUTO_TILE + 2
        ctx.tiling.append(TilingDecision(
            tile_dims=(AUTO_TILE, AUTO_TILE),
            reuse_factor=4.0,
            smem_bytes_per_block=min(halo * halo * 8, 34 * 34 * 8),
            arrays=read_only))
        ctx.note("hierarchical tiling into shared memory")


class RStreamCompiler(DirectiveCompiler):
    """R-Stream 3.2RC1."""

    name = "R-Stream"

    def build_pipeline(self) -> list:
        caps = CAPABILITIES[self.name]
        passes: list = [
            Intake(),
            FeatureScan(),
            check_contiguity(
                "pointer-based-allocation",
                "array {array!r} is allocated as pointer-to-pointer "
                "rows; the polyhedral mapper needs one dense linear "
                "layout",
                name="check-dense-layout"),
        ]
        if caps.affine_only:
            passes.append(Check("check-static-control", "non-affine",
                                _non_affine))
        passes += [
            check_worksharing(
                feature="no-loop",
                template="region {name!r} has no mappable loop"),
            Check("check-provable-parallelism", "no-provable-parallelism",
                  _no_provable_parallelism),
            check_nest_depth(
                MAX_MAPPING_DEPTH,
                "nest depth {depth} exceeds the practical mapping limit",
                feature="mapping-complexity"),
            Note("polyhedral-mapping", "transform",
                 "polyhedral dependence analysis and automatic mapping"),
            DefaultPrivateOrientation("column"),  # the mapper interleaves
            HierarchicalTiling(),
            BuildKernels(),
        ]
        if caps.automatic_data_plan:
            # automatic whole-program transfer management — but only
            # when *every* region is mappable: cross-region transfer
            # optimization requires merging the mappable regions into
            # one function (III-E2); unmappable code between them
            # blocks the merge, leaving the naive per-invocation
            # transfer pattern
            passes.append(AutoDataPlan("__rstream_merged__",
                                       require_full_coverage=True))
        return passes

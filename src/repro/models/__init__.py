"""Directive-model compilers and the manual-CUDA baseline."""

from repro.models.base import (CompiledProgram, DataRegionSpec, Diagnostic,
                               DirectiveCompiler, ExecutableProgram,
                               PortSpec, RegionOptions, RegionResult,
                               ScheduleStep, grid_nest, region_arrays)
from repro.models.cuda_manual import ManualCudaCompiler
from repro.models.features import (CAPABILITIES, FEATURE_ROWS, FEATURE_TABLE,
                                   MODEL_COLUMNS, ModelCapabilities,
                                   render_table1)
from repro.models.hicuda import HiCudaCompiler
from repro.models.hmpp import HMPPCompiler
from repro.models.omp_target import OmpTargetCompiler
from repro.models.openacc import OpenACCCompiler
from repro.models.openmpc import OpenMPCCompiler
from repro.models.pgi import PGICompiler
from repro.models.rstream import RStreamCompiler

#: the evaluated directive models, in the paper's column order
DIRECTIVE_MODELS: tuple[str, ...] = (
    "PGI Accelerator", "OpenACC", "HMPP", "OpenMPC", "R-Stream",
)

#: all compilers by name (including the baseline and hiCUDA, which —
#: as in the paper — appears in Table I but not in the evaluation, and
#: the OpenMP-target model the paper's Section VI looks ahead to, which
#: likewise stays out of the Figure-1/Table-II evaluation)
COMPILERS = {
    cls.name: cls for cls in (
        PGICompiler, OpenACCCompiler, HMPPCompiler, OpenMPCCompiler,
        RStreamCompiler, ManualCudaCompiler, HiCudaCompiler,
        OmpTargetCompiler)
}


#: CLI-friendly aliases → paper names (case-insensitive lookup)
MODEL_ALIASES = {
    "pgi": "PGI Accelerator",
    "pgi-accelerator": "PGI Accelerator",
    "openacc": "OpenACC",
    "hmpp": "HMPP",
    "openmpc": "OpenMPC",
    "rstream": "R-Stream",
    "r-stream": "R-Stream",
    "cuda": "Hand-Written CUDA",
    "hicuda": "hiCUDA",
    "omp-target": "OpenMP-Target",
    "omp_target": "OpenMP-Target",
    "omptarget": "OpenMP-Target",
    "openmp-target": "OpenMP-Target",
}


def resolve_model(name: str) -> str:
    """Map a user-typed model name to its canonical paper name.

    Accepts the paper names themselves in any case plus the short
    aliases (``pgi``, ``openacc``, ``rstream``, ...).
    """
    folded = name.strip().lower()
    if folded in MODEL_ALIASES:
        return MODEL_ALIASES[folded]
    for canonical in COMPILERS:
        if canonical.lower() == folded:
            return canonical
    raise KeyError(
        f"unknown model {name!r}; known: "
        f"{sorted(COMPILERS)} or aliases {sorted(MODEL_ALIASES)}")


def get_compiler(name: str) -> DirectiveCompiler:
    """Instantiate a compiler by its paper name (or alias).

    Unknown names raise :func:`resolve_model`'s ``KeyError`` — the one
    place that error message (with the alias list) is composed.
    """
    return COMPILERS[resolve_model(name)]()


__all__ = [
    "DirectiveCompiler", "CompiledProgram", "RegionResult", "Diagnostic",
    "PortSpec", "RegionOptions", "DataRegionSpec", "ScheduleStep",
    "ExecutableProgram", "grid_nest", "region_arrays",
    "PGICompiler", "OpenACCCompiler", "HMPPCompiler", "OpenMPCCompiler",
    "RStreamCompiler", "ManualCudaCompiler", "HiCudaCompiler",
    "OmpTargetCompiler",
    "DIRECTIVE_MODELS", "COMPILERS", "MODEL_ALIASES", "get_compiler",
    "resolve_model",
    "FEATURE_TABLE", "FEATURE_ROWS", "MODEL_COLUMNS", "CAPABILITIES",
    "ModelCapabilities", "render_table1",
]

"""Directive-model compilers and the manual-CUDA baseline."""

from repro.models.base import (CompiledProgram, DataRegionSpec, Diagnostic,
                               DirectiveCompiler, ExecutableProgram,
                               PortSpec, RegionOptions, RegionResult,
                               ScheduleStep, grid_nest, region_arrays)
from repro.models.cuda_manual import ManualCudaCompiler
from repro.models.features import (CAPABILITIES, FEATURE_ROWS, FEATURE_TABLE,
                                   MODEL_COLUMNS, ModelCapabilities,
                                   render_table1)
from repro.models.hicuda import HiCudaCompiler
from repro.models.hmpp import HMPPCompiler
from repro.models.openacc import OpenACCCompiler
from repro.models.openmpc import OpenMPCCompiler
from repro.models.pgi import PGICompiler
from repro.models.rstream import RStreamCompiler

#: the evaluated directive models, in the paper's column order
DIRECTIVE_MODELS: tuple[str, ...] = (
    "PGI Accelerator", "OpenACC", "HMPP", "OpenMPC", "R-Stream",
)

#: all compilers by name (including the baseline and hiCUDA, which —
#: as in the paper — appears in Table I but not in the evaluation)
COMPILERS = {
    cls.name: cls for cls in (
        PGICompiler, OpenACCCompiler, HMPPCompiler, OpenMPCCompiler,
        RStreamCompiler, ManualCudaCompiler, HiCudaCompiler)
}


def get_compiler(name: str) -> DirectiveCompiler:
    """Instantiate a compiler by its paper name."""
    try:
        return COMPILERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known: {sorted(COMPILERS)}") from None


__all__ = [
    "DirectiveCompiler", "CompiledProgram", "RegionResult", "Diagnostic",
    "PortSpec", "RegionOptions", "DataRegionSpec", "ScheduleStep",
    "ExecutableProgram", "grid_nest", "region_arrays",
    "PGICompiler", "OpenACCCompiler", "HMPPCompiler", "OpenMPCCompiler",
    "RStreamCompiler", "ManualCudaCompiler", "HiCudaCompiler",
    "DIRECTIVE_MODELS", "COMPILERS", "get_compiler",
    "FEATURE_TABLE", "FEATURE_ROWS", "MODEL_COLUMNS", "CAPABILITIES",
    "ModelCapabilities", "render_table1",
]

"""Shared machinery for the directive-model compilers.

Each of the five evaluated models (plus the hand-written-CUDA baseline)
is a :class:`DirectiveCompiler` subclass.  Compilation consumes

* an input :class:`~repro.ir.program.Program` — possibly *restructured*
  by the port (the paper's "code structures of the input programs were
  also modified to meet the requirements and suggestions of each model"),
* a :class:`PortSpec` — the per-model annotations the programmer added:
  data regions, explicit clauses, loop-transformation directives, launch
  configuration hints, and the code-size accounting for Table II,

and produces a :class:`CompiledProgram`: per-region kernels (or an
:class:`UnsupportedFeature` diagnostic — the coverage misses of Table II),
plus a data-transfer plan.  :class:`ExecutableProgram` then drives a
:class:`~repro.gpusim.runtime.CudaRuntime` through the benchmark's
region schedule, executing translated regions on the simulated GPU and
failed regions on the host, accumulating the simulated wall time that
Figure 1's speedups are computed from.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.cpu.host import KEENELAND_HOST, HostSpec, price_region_serial
from repro.cpu.openmp import run_region_host
from repro.errors import CompileError, UnsupportedFeatureError
from repro.gpusim.device import TESLA_M2090, DeviceSpec
from repro.gpusim.kernel import DEFAULT_BLOCK, Kernel
from repro.gpusim.memory import MemorySpace
from repro.gpusim.runtime import CudaRuntime
from repro.ir.analysis.features import RegionFeatures, scan_region
from repro.ir.program import ParallelRegion, Program
from repro.ir.stmt import Block, For, LocalDecl, Stmt
from repro.ir.transforms.tiling import TilingDecision
from repro.obs import tracer as obs
from repro.pipeline.core import PassManager, PassRecord, ProgramPass, RegionPass
from repro.pipeline.passes import TransferElision, grid_nest, region_arrays

Value = Union[int, float]


# ---------------------------------------------------------------------------
# Port specifications (what the programmer wrote for each model)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DataRegionSpec:
    """A data-scope annotation enclosing several compute regions.

    In PGI Accelerator/OpenACC this is a ``data`` region; in HMPP, a
    codelet *group* with ``advancedload``/``delegatedstore``; in OpenMPC,
    the implicit whole-program/function boundary driven by environment
    variables.  Arrays in ``copyin`` move host→device once at entry,
    ``copyout`` device→host once at exit, ``create`` live device-only.
    """

    name: str
    regions: tuple[str, ...]
    copyin: tuple[str, ...] = ()
    copyout: tuple[str, ...] = ()
    create: tuple[str, ...] = ()


@dataclass(frozen=True)
class TransferElisionPlan:
    """Arrays the ``elide-transfers`` pass may keep off the PCIe bus.

    Produced by :func:`repro.dataflow.report.plan_elisions` from the
    whole-program coherence analysis; consumed by
    :class:`ExecutableProgram` as *dynamic guards*, so the plan is safe
    even where the static CFG mispredicts the concrete schedule:

    * ``skip_htod`` — a per-invocation host→device copy of these arrays
      is skipped whenever the device copy is already valid (tracked at
      runtime; a cold or invalidated copy still ships).
    * ``defer_dtoh`` — per-invocation device→host copies of these
      arrays are deferred; the pending copy flushes at data-scope exit
      and before any host-fallback touch.  Every deferred array must
      also be in ``skip_htod``, or a later copyin could re-ship the
      stale host copy over the only valid data.
    """

    skip_htod: tuple[str, ...] = ()
    defer_dtoh: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        missing = set(self.defer_dtoh) - set(self.skip_htod)
        if missing:
            raise CompileError(
                "defer_dtoh must be a subset of skip_htod (a deferred "
                "copyout with a live copyin would ship stale host data): "
                f"{sorted(missing)}")

    @property
    def empty(self) -> bool:
        return not self.skip_htod and not self.defer_dtoh


@dataclass(frozen=True)
class RegionOptions:
    """Per-region tuning/porting knobs a model port may carry."""

    block_threads: Optional[int] = None
    #: memory-space placements the port requests (HMPP/OpenMPC explicit;
    #: PGI/OpenACC can only get these from the compiler, see the models)
    placements: Mapping[str, MemorySpace] = field(default_factory=dict)
    #: shared-memory tilings (explicit in HMPP/OpenMPC/manual)
    tiling: tuple[TilingDecision, ...] = ()
    #: arrays whose contents are thread-dependent indices
    indirect_carriers: tuple[str, ...] = ()
    #: directive-requested loop transformations (only models whose Table I
    #: 'loop transformations' cell is *explicit* may honor these — HMPP
    #: and OpenMPC; requesting them of PGI/OpenACC is a port error)
    request_loop_swap: bool = False
    request_collapse: bool = False
    #: request automatic-transform suppression (ablation hook)
    disable_auto_transforms: bool = False
    #: registers per thread (manual CUDA versions tune this)
    regs_per_thread: int = 24
    #: access-pattern facts the port establishes by restructuring that the
    #: structural analysis cannot see (e.g. the CFD layout change making
    #: matrix accesses coalesced)
    pattern_overrides: Mapping[str, "AccessPattern"] = field(default_factory=dict)
    #: expansion orientation for private arrays ("row"/"column"/"register")
    private_orientations: Mapping[str, str] = field(default_factory=dict)
    #: OpenACC compute construct for this region: "kernels" (each loop
    #: nest becomes one kernel, the PGI compute-region behaviour) or
    #: "parallel" (the whole region is a single kernel, OpenMP-style —
    #: Section III-B).  Only OpenACC consults it.
    construct: str = "kernels"


@dataclass(frozen=True)
class PortSpec:
    """One benchmark's port to one model (Table II's raw material)."""

    model: str
    program: Program
    #: directive lines the programmer added
    directive_lines: int = 0
    #: input source lines restructured/added beyond directives
    restructured_lines: int = 0
    data_regions: tuple[DataRegionSpec, ...] = ()
    region_options: Mapping[str, RegionOptions] = field(default_factory=dict)
    notes: tuple[str, ...] = ()
    #: opt in to the certified transfer-elision pass: the pipeline's
    #: transfer stage plans skips/deferrals from the whole-program
    #: coherence analysis and the runtime honors them under dynamic
    #: validity guards.  Off by default — the shipped Figure-1 baseline
    #: must stay byte-identical.
    elide_transfers: bool = False

    def options_for(self, region: str) -> RegionOptions:
        return self.region_options.get(region, RegionOptions())

    def added_lines(self) -> int:
        return self.directive_lines + self.restructured_lines


# ---------------------------------------------------------------------------
# Compile results
# ---------------------------------------------------------------------------

@dataclass
class Diagnostic:
    """Why a region could not be translated.

    ``rule`` is the stable lint rule ID for this limitation — derived
    from the feature name (``"non-affine"`` → ``"COV-NON-AFFINE"``) so
    coverage accounting (Table II) and ``repro.lint`` consume one
    format.  ``pass_name`` attributes the rejection to the pipeline pass
    that raised it (empty for diagnostics minted outside a pipeline).
    """

    region: str
    feature: str
    message: str
    rule: str = ""
    pass_name: str = ""

    def __post_init__(self) -> None:
        if not self.rule:
            self.rule = "COV-" + self.feature.upper()

    @classmethod
    def from_unsupported(cls, region: str, exc: UnsupportedFeatureError,
                         pass_name: str = "") -> "Diagnostic":
        """The one constructor every compiler's rejection path uses."""
        return cls(getattr(exc, "region", "") or region,
                   exc.feature, str(exc), pass_name=pass_name)


@dataclass
class RegionResult:
    """Outcome of compiling one parallel region."""

    region: str
    translated: bool
    kernels: list[Kernel] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: human-readable record of transformations the compiler applied
    applied: list[str] = field(default_factory=list)
    #: arrays this region reads / writes (for the transfer planner)
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()
    #: per-pass provenance records from the pipeline (what ran, what
    #: changed, state snapshots) — consumed by lint, tv, and the
    #: ``repro-harness passes`` report
    passes: list[PassRecord] = field(default_factory=list)

    def record(self, pass_name: str) -> Optional[PassRecord]:
        """The record of the named pass, if it ran for this region."""
        for rec in self.passes:
            if rec.name == pass_name:
                return rec
        return None

    def snapshot_before(self, stage: str) -> Optional[Block]:
        """The region IR as it stood before the first pass of ``stage``
        — e.g. ``snapshot_before("transform")`` is the pre-transform IR
        lint rules may want to inspect.
        """
        from repro.pipeline.core import stage_index

        limit = stage_index(stage)
        best: Optional[Block] = None
        for rec in self.passes:
            if stage_index(rec.stage) >= limit:
                break
            if rec.ir is not None:
                best = rec.ir
        return best


@dataclass
class CompiledProgram:
    """A whole program, compiled by one model.

    ``data_regions`` is the *effective* transfer discipline: the port's
    explicit data regions, possibly augmented by the compiler (OpenMPC's
    interprocedural analysis and R-Stream's automatic management
    synthesize a whole-program data scope without user directives).
    """

    model: str
    program: Program
    port: PortSpec
    results: dict[str, RegionResult]
    data_regions: tuple[DataRegionSpec, ...] = ()
    #: the transfer-elision plan (set by the ``elide-transfers`` program
    #: pass when the port opts in via ``PortSpec.elide_transfers``)
    elisions: Optional[TransferElisionPlan] = None

    @property
    def regions_total(self) -> int:
        return len(self.results)

    @property
    def regions_translated(self) -> int:
        return sum(1 for r in self.results.values() if r.translated)

    @property
    def coverage(self) -> float:
        if not self.results:
            return 0.0
        return self.regions_translated / self.regions_total

    def result(self, region: str) -> RegionResult:
        return self.results[region]

    def diagnostics(self) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for r in self.results.values():
            out.extend(r.diagnostics)
        return out


# ---------------------------------------------------------------------------
# The compiler interface
# ---------------------------------------------------------------------------

class DirectiveCompiler(abc.ABC):
    """Base class of the model compilers.

    Each compiler is an ordered pass list: subclasses implement
    :meth:`build_pipeline`, assembling passes from
    :mod:`repro.pipeline.passes` (plus their own model-specific passes)
    into the canonical stage order.  The shared
    :class:`~repro.pipeline.core.PassManager` runs the list per region,
    recording per-pass provenance; a pass that rejects the region raises
    :class:`UnsupportedFeatureError` and becomes a pass-attributed
    :class:`Diagnostic` (the coverage misses of Table II).
    """

    #: model name as it appears in the paper's tables
    name: str = "abstract"

    @abc.abstractmethod
    def build_pipeline(self) -> Sequence[Union[RegionPass, ProgramPass]]:
        """Assemble this model's ordered pass list."""

    @property
    def pipeline(self) -> PassManager:
        """The model's pass manager (built once, then cached).

        Every model's pipeline ends with the opt-in
        :class:`~repro.pipeline.passes.TransferElision` program pass —
        appended here rather than in each :meth:`build_pipeline` so the
        certified-elision contract is uniform across models (the pass
        no-ops unless the port sets ``elide_transfers``).
        """
        mgr = self.__dict__.get("_pipeline")
        if mgr is None:
            mgr = PassManager(self.name, list(self.build_pipeline())
                              + [TransferElision()])
            self.__dict__["_pipeline"] = mgr
        return mgr

    def compile_program(self, port: PortSpec) -> CompiledProgram:
        """Compile every parallel region of the port's program."""
        if port.model != self.name:
            raise CompileError(
                f"port targets model {port.model!r}, compiler is {self.name!r}")
        program = port.program
        with obs.span("compile.program", category="compile",
                      model=self.name, program=program.name):
            results: dict[str, RegionResult] = {}
            for region in program.regions:
                results[region.name] = self.compile_region(region, program,
                                                           port)
            compiled = CompiledProgram(model=self.name, program=program,
                                       port=port, results=results,
                                       data_regions=tuple(port.data_regions))
            self.pipeline.run_program(compiled)
            obs.set_attr("regions_total", compiled.regions_total)
            obs.set_attr("regions_translated", compiled.regions_translated)
        return compiled

    def compile_region(self, region: ParallelRegion, program: Program,
                       port: PortSpec) -> RegionResult:
        """Run the region pipeline; never raises on model limits."""
        with obs.span("compile.region", category="compile",
                      model=self.name, region=region.name):
            comp = self.pipeline.run_region(region, program, port)
            if not comp.translated:
                diag = Diagnostic.from_unsupported(
                    region.name, comp.error, pass_name=comp.failed_pass)
                obs.set_attr("translated", False)
                obs.set_attr("feature", diag.feature)
                obs.set_attr("rule", diag.rule)
                obs.set_attr("message", diag.message)
                obs.set_attr("failed_pass", comp.failed_pass)
                return RegionResult(
                    region=region.name, translated=False,
                    diagnostics=[diag],
                    reads=comp.reads, writes=comp.writes,
                    passes=comp.records)
            obs.set_attr("translated", True)
            obs.set_attr("kernels", len(comp.kernels))
            if comp.applied:
                obs.set_attr("applied", list(comp.applied))
        return RegionResult(region=region.name, translated=True,
                            kernels=comp.kernels, applied=comp.applied,
                            reads=comp.reads, writes=comp.writes,
                            passes=comp.records)


def auto_data_region(compiled: CompiledProgram, name: str) -> Optional[DataRegionSpec]:
    """Synthesize a whole-program data scope from data-flow facts.

    Copy in each array read before its first write (in program region
    order — the driver's invocation order); copy out every written array
    whose declaration says its final value escapes (intent out/inout).
    Temp arrays live device-only.  Only translated regions participate.
    """
    translated = [r.name for r in compiled.program.regions
                  if compiled.results[r.name].translated]
    if not translated:
        return None
    written: set[str] = set()
    copyin: set[str] = set()
    touched: set[str] = set()
    for region in compiled.program.regions:
        res = compiled.results[region.name]
        if not res.translated:
            continue
        copyin |= (set(res.reads) - written)
        written |= set(res.writes)
        touched |= set(res.reads) | set(res.writes)
    copyout = {nm for nm in written
               if compiled.program.arrays[nm].intent in ("out", "inout")}
    create = touched - copyin - copyout
    return DataRegionSpec(name=name, regions=tuple(translated),
                          copyin=tuple(sorted(copyin)),
                          copyout=tuple(sorted(copyout)),
                          create=tuple(sorted(create)))


# ---------------------------------------------------------------------------
# Execution: driving the runtime through a region schedule
# ---------------------------------------------------------------------------

@dataclass
class ScheduleStep:
    """One host-driver step: invoke a region (``times`` may be > 1 for
    tight loops whose per-iteration host work is negligible).

    ``scalars`` override/extend the workload's scalar bindings for this
    step — iteration counters, per-pass constants.
    """

    region: str
    times: int = 1
    scalars: Mapping[str, Value] = field(default_factory=dict)


class ExecutableProgram:
    """Runs a compiled program on a simulated device.

    The transfer discipline comes from the port's data regions: arrays
    covered by a data region move only at its boundaries; everything else
    moves per region invocation (copy-in reads, copy-out writes) — the
    naive pattern the paper's untuned ports exhibit.
    """

    def __init__(self, compiled: CompiledProgram,
                 runtime: Optional[CudaRuntime] = None,
                 host: HostSpec = KEENELAND_HOST) -> None:
        self.compiled = compiled
        self.rt = runtime or CudaRuntime()
        self.host = host
        self.host_time_s = 0.0
        self._data_region_of: dict[str, DataRegionSpec] = {}
        for dr in compiled.data_regions:
            for rname in dr.regions:
                self._data_region_of[rname] = dr
        self._entered_dr: set[str] = set()
        self._resident: set[str] = set()
        self._dirty: set[str] = set()
        # -- transfer elision (opt-in; the default path must stay
        #    byte-identical to the shipped Figure-1 baseline) ------------
        plan = compiled.elisions if compiled.port.elide_transfers else None
        self._elide = plan is not None and not plan.empty
        self._skip_htod = frozenset(plan.skip_htod) if plan else frozenset()
        self._defer_dtoh = frozenset(plan.defer_dtoh) if plan else frozenset()
        #: arrays whose device buffer provably holds the latest values
        self._dev_valid: set[str] = set()
        #: arrays with a device→host copy pending (deferred)
        self._deferred: set[str] = set()
        self.elided_transfers = 0
        self.elided_bytes = 0

    # -- setup -------------------------------------------------------------
    def bind_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        for name, arr in arrays.items():
            self.rt.bind_host(name, arr)

    # -- data-region management --------------------------------------------
    def _enter_data_region(self, dr: DataRegionSpec,
                           scalars: Mapping[str, Value]) -> None:
        if dr.name in self._entered_dr:
            return
        self._entered_dr.add(dr.name)
        for name in dr.copyin:
            self._ensure_alloc(name)
            self.rt.htod(name)
            if self._elide:
                self._dev_valid.add(name)
            self._resident.add(name)
        for name in dr.create + dr.copyout:
            self._ensure_alloc(name)
            self._resident.add(name)

    def _ensure_alloc(self, name: str) -> None:
        if name not in self.rt.buffers:
            self.rt.malloc(name)

    # -- transfer elision --------------------------------------------------
    def _note_elided(self, name: str, direction: str) -> None:
        arr = self.rt.host_arrays.get(name)
        nbytes = int(arr.nbytes) if arr is not None else 0
        self.elided_transfers += 1
        self.elided_bytes += nbytes
        if obs.current_tracer() is not None:
            with obs.span(f"elide {direction} {name}", "gpu.elide",
                          array=name, direction=direction,
                          sim_start_s=self.rt.clock_s):
                obs.add_counters({"transfers_elided": 1.0,
                                  "pcie_bytes_saved": float(nbytes)})

    def _flush_deferred(self, names: Optional[set[str]] = None) -> None:
        """Perform pending deferred copyouts (all, or just ``names``)."""
        pending = self._deferred if names is None \
            else self._deferred & names
        for name in sorted(pending):
            self.rt.dtoh(name)
        self._deferred -= set(pending)

    def close_data_regions(self) -> None:
        """Exit all data regions: copy out their results."""
        if self._elide:
            self._flush_deferred()
        for dr in self.compiled.data_regions:
            if dr.name in self._entered_dr:
                for name in dr.copyout:
                    self.rt.dtoh(name)
                self._entered_dr.discard(dr.name)
        for name in list(self._resident):
            self._resident.discard(name)

    # -- region invocation ---------------------------------------------------
    def run_region(self, name: str, scalars: Mapping[str, Value],
                   times: int = 1) -> None:
        result = self.compiled.result(name)
        region = self.compiled.program.region(name)
        if not result.translated:
            self._run_on_host(region, scalars, times)
            return
        dr = self._data_region_of.get(name)
        if dr is not None:
            self._enter_data_region(dr, scalars)
        for _ in range(times):
            self._transfers_in(result, dr)
            for kernel in result.kernels:
                self.rt.launch(kernel, scalars,
                               functions=self.compiled.program.functions)
            self._transfers_out(result, dr)

    def _transfers_in(self, result: RegionResult,
                      dr: Optional[DataRegionSpec]) -> None:
        covered = set(dr.copyin) | set(dr.copyout) | set(dr.create) \
            if dr is not None else set()
        for name in sorted(result.reads | result.writes):
            self._ensure_alloc(name)
            if name in covered and name in self._resident:
                continue
            if name in result.reads:
                if (self._elide and name in self._skip_htod
                        and name in self._dev_valid):
                    # the device copy already holds the latest values;
                    # shipping the host copy would be a no-op (or, with
                    # a copyout deferred, an outright clobber)
                    self._note_elided(name, "htod")
                    continue
                self.rt.htod(name)
                if self._elide:
                    self._dev_valid.add(name)

    def _transfers_out(self, result: RegionResult,
                       dr: Optional[DataRegionSpec]) -> None:
        covered = set(dr.copyin) | set(dr.copyout) | set(dr.create) \
            if dr is not None else set()
        for name in sorted(result.writes):
            if self._elide:
                # the kernels just produced the latest values on device
                self._dev_valid.add(name)
            if name in covered:
                self._dirty.add(name)
                continue
            if self._elide and name in self._defer_dtoh:
                if name in self._deferred:
                    # a pending copy is superseded before ever flushing:
                    # that transfer is genuinely saved
                    self._note_elided(name, "dtoh")
                else:
                    self._deferred.add(name)
                continue
            self.rt.dtoh(name)

    def _run_on_host(self, region: ParallelRegion,
                     scalars: Mapping[str, Value], times: int) -> None:
        """A region the model failed to translate runs serially on host."""
        extents = {name: list(arr.shape)
                   for name, arr in self.rt.host_arrays.items()}
        bindings = {k: float(v) for k, v in scalars.items()}
        t = price_region_serial(region, extents, bindings, spec=self.host)
        # price_region_serial multiplies by region.invocations; here the
        # driver controls repetition explicitly.
        t = t / max(1, region.invocations) * times
        self.host_time_s += t
        reads: frozenset[str] = frozenset()
        writes: frozenset[str] = frozenset()
        if self.rt.execute or self._elide:
            reads, writes = region_arrays(region, self.compiled.program)
        if self.rt.execute:
            # host data must be current: flush any deferred copyouts the
            # region touches, copy back any resident arrays it touches,
            # then re-stage them
            if self._elide:
                self._flush_deferred(set(reads) | set(writes))
            for name in sorted((reads | writes)):
                if name in self.rt.buffers and name in self._resident:
                    self.rt.dtoh(name)
            for _ in range(times):
                run_region_host(region, self.rt.host_arrays, scalars,
                                self.compiled.program.functions)
            for name in sorted(reads | writes):
                if name in self.rt.buffers and name in self._resident:
                    self.rt.htod(name)
        if self._elide:
            # host writes invalidate device copies not staged back above
            staged = {name for name in writes
                      if self.rt.execute and name in self.rt.buffers
                      and name in self._resident}
            self._dev_valid |= staged
            self._dev_valid -= set(writes) - staged

    # -- results ---------------------------------------------------------
    @property
    def gpu_time_s(self) -> float:
        """Simulated end-to-end time: device timeline + host fallbacks."""
        return self.rt.clock_s + self.host_time_s

"""Shared machinery for the directive-model compilers.

Each of the five evaluated models (plus the hand-written-CUDA baseline)
is a :class:`DirectiveCompiler` subclass.  Compilation consumes

* an input :class:`~repro.ir.program.Program` — possibly *restructured*
  by the port (the paper's "code structures of the input programs were
  also modified to meet the requirements and suggestions of each model"),
* a :class:`PortSpec` — the per-model annotations the programmer added:
  data regions, explicit clauses, loop-transformation directives, launch
  configuration hints, and the code-size accounting for Table II,

and produces a :class:`CompiledProgram`: per-region kernels (or an
:class:`UnsupportedFeature` diagnostic — the coverage misses of Table II),
plus a data-transfer plan.  :class:`ExecutableProgram` then drives a
:class:`~repro.gpusim.runtime.CudaRuntime` through the benchmark's
region schedule, executing translated regions on the simulated GPU and
failed regions on the host, accumulating the simulated wall time that
Figure 1's speedups are computed from.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.cpu.host import KEENELAND_HOST, HostSpec, price_region_serial
from repro.cpu.openmp import run_region_host
from repro.errors import CompileError, UnsupportedFeatureError
from repro.gpusim.device import TESLA_M2090, DeviceSpec
from repro.gpusim.kernel import DEFAULT_BLOCK, Kernel
from repro.gpusim.memory import MemorySpace
from repro.gpusim.runtime import CudaRuntime
from repro.ir.analysis.features import RegionFeatures, scan_region
from repro.ir.program import ParallelRegion, Program
from repro.ir.stmt import Block, For, LocalDecl, Stmt
from repro.ir.transforms.tiling import TilingDecision
from repro.obs import tracer as obs

Value = Union[int, float]


# ---------------------------------------------------------------------------
# Port specifications (what the programmer wrote for each model)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DataRegionSpec:
    """A data-scope annotation enclosing several compute regions.

    In PGI Accelerator/OpenACC this is a ``data`` region; in HMPP, a
    codelet *group* with ``advancedload``/``delegatedstore``; in OpenMPC,
    the implicit whole-program/function boundary driven by environment
    variables.  Arrays in ``copyin`` move host→device once at entry,
    ``copyout`` device→host once at exit, ``create`` live device-only.
    """

    name: str
    regions: tuple[str, ...]
    copyin: tuple[str, ...] = ()
    copyout: tuple[str, ...] = ()
    create: tuple[str, ...] = ()


@dataclass(frozen=True)
class RegionOptions:
    """Per-region tuning/porting knobs a model port may carry."""

    block_threads: Optional[int] = None
    #: memory-space placements the port requests (HMPP/OpenMPC explicit;
    #: PGI/OpenACC can only get these from the compiler, see the models)
    placements: Mapping[str, MemorySpace] = field(default_factory=dict)
    #: shared-memory tilings (explicit in HMPP/OpenMPC/manual)
    tiling: tuple[TilingDecision, ...] = ()
    #: arrays whose contents are thread-dependent indices
    indirect_carriers: tuple[str, ...] = ()
    #: directive-requested loop transformations (only models whose Table I
    #: 'loop transformations' cell is *explicit* may honor these — HMPP
    #: and OpenMPC; requesting them of PGI/OpenACC is a port error)
    request_loop_swap: bool = False
    request_collapse: bool = False
    #: request automatic-transform suppression (ablation hook)
    disable_auto_transforms: bool = False
    #: registers per thread (manual CUDA versions tune this)
    regs_per_thread: int = 24
    #: access-pattern facts the port establishes by restructuring that the
    #: structural analysis cannot see (e.g. the CFD layout change making
    #: matrix accesses coalesced)
    pattern_overrides: Mapping[str, "AccessPattern"] = field(default_factory=dict)
    #: expansion orientation for private arrays ("row"/"column"/"register")
    private_orientations: Mapping[str, str] = field(default_factory=dict)
    #: OpenACC compute construct for this region: "kernels" (each loop
    #: nest becomes one kernel, the PGI compute-region behaviour) or
    #: "parallel" (the whole region is a single kernel, OpenMP-style —
    #: Section III-B).  Only OpenACC consults it.
    construct: str = "kernels"


@dataclass(frozen=True)
class PortSpec:
    """One benchmark's port to one model (Table II's raw material)."""

    model: str
    program: Program
    #: directive lines the programmer added
    directive_lines: int = 0
    #: input source lines restructured/added beyond directives
    restructured_lines: int = 0
    data_regions: tuple[DataRegionSpec, ...] = ()
    region_options: Mapping[str, RegionOptions] = field(default_factory=dict)
    notes: tuple[str, ...] = ()

    def options_for(self, region: str) -> RegionOptions:
        return self.region_options.get(region, RegionOptions())

    def added_lines(self) -> int:
        return self.directive_lines + self.restructured_lines


# ---------------------------------------------------------------------------
# Compile results
# ---------------------------------------------------------------------------

@dataclass
class Diagnostic:
    """Why a region could not be translated.

    ``rule`` is the stable lint rule ID for this limitation — derived
    from the feature name (``"non-affine"`` → ``"COV-NON-AFFINE"``) so
    coverage accounting (Table II) and ``repro.lint`` consume one
    format.
    """

    region: str
    feature: str
    message: str
    rule: str = ""

    def __post_init__(self) -> None:
        if not self.rule:
            self.rule = "COV-" + self.feature.upper()

    @classmethod
    def from_unsupported(cls, region: str,
                         exc: UnsupportedFeatureError) -> "Diagnostic":
        """The one constructor every compiler's rejection path uses."""
        return cls(getattr(exc, "region", "") or region,
                   exc.feature, str(exc))


@dataclass
class RegionResult:
    """Outcome of compiling one parallel region."""

    region: str
    translated: bool
    kernels: list[Kernel] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: human-readable record of transformations the compiler applied
    applied: list[str] = field(default_factory=list)
    #: arrays this region reads / writes (for the transfer planner)
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()


@dataclass
class CompiledProgram:
    """A whole program, compiled by one model.

    ``data_regions`` is the *effective* transfer discipline: the port's
    explicit data regions, possibly augmented by the compiler (OpenMPC's
    interprocedural analysis and R-Stream's automatic management
    synthesize a whole-program data scope without user directives).
    """

    model: str
    program: Program
    port: PortSpec
    results: dict[str, RegionResult]
    data_regions: tuple[DataRegionSpec, ...] = ()

    @property
    def regions_total(self) -> int:
        return len(self.results)

    @property
    def regions_translated(self) -> int:
        return sum(1 for r in self.results.values() if r.translated)

    @property
    def coverage(self) -> float:
        if not self.results:
            return 0.0
        return self.regions_translated / self.regions_total

    def result(self, region: str) -> RegionResult:
        return self.results[region]

    def diagnostics(self) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for r in self.results.values():
            out.extend(r.diagnostics)
        return out


# ---------------------------------------------------------------------------
# The compiler interface
# ---------------------------------------------------------------------------

class DirectiveCompiler(abc.ABC):
    """Base class of the model compilers.

    Subclasses implement :meth:`check_region` (the model's applicability
    limits — raising :class:`UnsupportedFeatureError`) and
    :meth:`lower_region` (building the kernels, applying the model's
    automatic and directive-driven transformations).
    """

    #: model name as it appears in the paper's tables
    name: str = "abstract"

    def compile_program(self, port: PortSpec) -> CompiledProgram:
        """Compile every parallel region of the port's program."""
        if port.model != self.name:
            raise CompileError(
                f"port targets model {port.model!r}, compiler is {self.name!r}")
        program = port.program
        with obs.span("compile.program", category="compile",
                      model=self.name, program=program.name):
            results: dict[str, RegionResult] = {}
            for region in program.regions:
                results[region.name] = self.compile_region(region, program,
                                                           port)
            compiled = CompiledProgram(model=self.name, program=program,
                                       port=port, results=results,
                                       data_regions=tuple(port.data_regions))
            self.plan_data(compiled)
            obs.set_attr("regions_total", compiled.regions_total)
            obs.set_attr("regions_translated", compiled.regions_translated)
        return compiled

    def plan_data(self, compiled: CompiledProgram) -> None:
        """Hook: augment the transfer plan (interprocedural compilers)."""

    def compile_region(self, region: ParallelRegion, program: Program,
                       port: PortSpec) -> RegionResult:
        """Check acceptance, then lower; never raises on model limits."""
        feats = scan_region(region, program)
        reads, writes = region_arrays(region, program)
        with obs.span("compile.region", category="compile",
                      model=self.name, region=region.name):
            try:
                self.check_region(region, feats, program, port)
                kernels, applied = self.lower_region(region, feats, program,
                                                     port)
            except UnsupportedFeatureError as exc:
                diag = Diagnostic.from_unsupported(region.name, exc)
                obs.set_attr("translated", False)
                obs.set_attr("feature", diag.feature)
                obs.set_attr("rule", diag.rule)
                obs.set_attr("message", diag.message)
                return RegionResult(
                    region=region.name, translated=False,
                    diagnostics=[diag],
                    reads=reads, writes=writes)
            obs.set_attr("translated", True)
            obs.set_attr("kernels", len(kernels))
            if applied:
                obs.set_attr("applied", list(applied))
        return RegionResult(region=region.name, translated=True,
                            kernels=kernels, applied=applied,
                            reads=reads, writes=writes)

    def reject(self, region: ParallelRegion, feature: str, detail: str,
               cause: Optional[BaseException] = None) -> None:
        """Reject ``region``: raise the model-limit error all five
        compilers funnel through, tagged with the region name so the
        resulting :class:`Diagnostic` (and its ``COV-*`` lint rule ID)
        is built in exactly one place."""
        exc = UnsupportedFeatureError(feature, detail, region=region.name)
        if cause is not None:
            raise exc from cause
        raise exc

    @abc.abstractmethod
    def check_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec) -> None:
        """Raise :class:`UnsupportedFeatureError` if the model rejects it."""

    @abc.abstractmethod
    def lower_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec,
                     ) -> tuple[list[Kernel], list[str]]:
        """Build kernels for an accepted region."""

    # -- shared lowering helpers -----------------------------------------
    def kernels_from_worksharing(self, region: ParallelRegion,
                                 program: Program, port: PortSpec,
                                 transform: Optional[Callable[[For], tuple[For, list[str]]]] = None,
                                 extra_pattern_overrides: Optional[Mapping[str, object]] = None,
                                 extra_private_orientations: Optional[Mapping[str, str]] = None,
                                 default_private_orientation: Optional[str] = None,
                                 extra_tiling: Sequence[TilingDecision] = (),
                                 ) -> tuple[list[Kernel], list[str]]:
        """One kernel per outermost work-sharing loop.

        ``transform`` optionally rewrites each loop (auto optimizations)
        and reports what it did.  The ``extra_*`` mappings are the
        compiler's own decisions, merged over the port's options.
        ``default_private_orientation`` applies to private arrays neither
        the port nor the compiler placed (PGI-style row expansion).
        """
        opts = port.options_for(region.name)
        kernels: list[Kernel] = []
        applied: list[str] = []
        loops = region.worksharing_loops()
        if not loops:
            self.reject(region, "no-worksharing-loop",
                        f"region {region.name!r} has no work-sharing loop")
        reads, writes = region_arrays(region, program)
        arrays = sorted(reads | writes)
        scalars = sorted(program.scalars)
        overrides = dict(opts.pattern_overrides)
        overrides.update(extra_pattern_overrides or {})
        monotone = tuple(sorted(
            name for name, decl in program.arrays.items()
            if decl.monotone_content))
        orientations = dict(opts.private_orientations)
        orientations.update(extra_private_orientations or {})
        tiling = tuple(opts.tiling) + tuple(extra_tiling)
        for n, loop in enumerate(loops):
            body: For = loop
            if transform is not None:
                body, notes = transform(loop)
                applied.extend(notes)
            if default_private_orientation is not None:
                for stmt in body.walk():
                    if isinstance(stmt, LocalDecl) and stmt.shape:
                        orientations.setdefault(stmt.name,
                                                default_private_orientation)
            nest = grid_nest(body)
            kernels.append(Kernel(
                name=f"{program.name}_{region.name}_k{n}",
                body=body, thread_vars=nest, arrays=arrays, scalars=scalars,
                block_threads=opts.block_threads or DEFAULT_BLOCK,
                placements=dict(opts.placements),
                tiling=tiling,
                regs_per_thread=opts.regs_per_thread,
                indirect_carriers=opts.indirect_carriers,
                monotone_carriers=monotone,
                pattern_overrides=overrides,
                private_orientations=orientations))
        return kernels, applied


def grid_nest(loop: For, max_dims: int = 3) -> list[str]:
    """The contiguous outermost parallel nest of ``loop`` (grid mapping)."""
    nest = [loop.var]
    node = loop
    while len(nest) < max_dims:
        inner = [s for s in node.body.stmts if isinstance(s, For) and s.parallel]
        others = [s for s in node.body.stmts
                  if not isinstance(s, (For, LocalDecl))]
        seq = [s for s in node.body.stmts
               if isinstance(s, For) and not s.parallel]
        if len(inner) == 1 and not others and not seq:
            nest.append(inner[0].var)
            node = inner[0]
        else:
            break
    return nest


def auto_data_region(compiled: CompiledProgram, name: str) -> Optional[DataRegionSpec]:
    """Synthesize a whole-program data scope from data-flow facts.

    Copy in each array read before its first write (in program region
    order — the driver's invocation order); copy out every written array
    whose declaration says its final value escapes (intent out/inout).
    Temp arrays live device-only.  Only translated regions participate.
    """
    translated = [r.name for r in compiled.program.regions
                  if compiled.results[r.name].translated]
    if not translated:
        return None
    written: set[str] = set()
    copyin: set[str] = set()
    touched: set[str] = set()
    for region in compiled.program.regions:
        res = compiled.results[region.name]
        if not res.translated:
            continue
        copyin |= (set(res.reads) - written)
        written |= set(res.writes)
        touched |= set(res.reads) | set(res.writes)
    copyout = {nm for nm in written
               if compiled.program.arrays[nm].intent in ("out", "inout")}
    create = touched - copyin - copyout
    return DataRegionSpec(name=name, regions=tuple(translated),
                          copyin=tuple(sorted(copyin)),
                          copyout=tuple(sorted(copyout)),
                          create=tuple(sorted(create)))


def region_arrays(region: ParallelRegion,
                  program: Program) -> tuple[frozenset[str], frozenset[str]]:
    """(reads, writes) of program-level arrays for one region.

    Uses the region's explicit summaries when present, otherwise derives
    them from the body (plus called functions' bodies).
    """
    from repro.ir.visitors import read_arrays, written_arrays

    if region._arrays_read is not None and region._arrays_written is not None:
        return frozenset(region._arrays_read), frozenset(region._arrays_written)
    reads = read_arrays(region.body)
    writes = written_arrays(region.body)
    for stmt in region.body.walk():
        from repro.ir.stmt import CallStmt
        if isinstance(stmt, CallStmt) and stmt.func in program.functions:
            func = program.functions[stmt.func]
            # map param names to argument arrays
            param_map = {}
            for param, arg in zip(func.params, stmt.args):
                from repro.ir.expr import Var
                if param.is_array and isinstance(arg, Var):
                    param_map[param.name] = arg.name
            for name in read_arrays(func.body):
                reads.add(param_map.get(name, name))
            for name in written_arrays(func.body):
                writes.add(param_map.get(name, name))
    declared = set(program.arrays)
    return frozenset(reads & declared), frozenset(writes & declared)


# ---------------------------------------------------------------------------
# Execution: driving the runtime through a region schedule
# ---------------------------------------------------------------------------

@dataclass
class ScheduleStep:
    """One host-driver step: invoke a region (``times`` may be > 1 for
    tight loops whose per-iteration host work is negligible).

    ``scalars`` override/extend the workload's scalar bindings for this
    step — iteration counters, per-pass constants.
    """

    region: str
    times: int = 1
    scalars: Mapping[str, Value] = field(default_factory=dict)


class ExecutableProgram:
    """Runs a compiled program on a simulated device.

    The transfer discipline comes from the port's data regions: arrays
    covered by a data region move only at its boundaries; everything else
    moves per region invocation (copy-in reads, copy-out writes) — the
    naive pattern the paper's untuned ports exhibit.
    """

    def __init__(self, compiled: CompiledProgram,
                 runtime: Optional[CudaRuntime] = None,
                 host: HostSpec = KEENELAND_HOST) -> None:
        self.compiled = compiled
        self.rt = runtime or CudaRuntime()
        self.host = host
        self.host_time_s = 0.0
        self._data_region_of: dict[str, DataRegionSpec] = {}
        for dr in compiled.data_regions:
            for rname in dr.regions:
                self._data_region_of[rname] = dr
        self._entered_dr: set[str] = set()
        self._resident: set[str] = set()
        self._dirty: set[str] = set()

    # -- setup -------------------------------------------------------------
    def bind_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        for name, arr in arrays.items():
            self.rt.bind_host(name, arr)

    # -- data-region management --------------------------------------------
    def _enter_data_region(self, dr: DataRegionSpec,
                           scalars: Mapping[str, Value]) -> None:
        if dr.name in self._entered_dr:
            return
        self._entered_dr.add(dr.name)
        for name in dr.copyin:
            self._ensure_alloc(name)
            self.rt.htod(name)
            self._resident.add(name)
        for name in dr.create + dr.copyout:
            self._ensure_alloc(name)
            self._resident.add(name)

    def _ensure_alloc(self, name: str) -> None:
        if name not in self.rt.buffers:
            self.rt.malloc(name)

    def close_data_regions(self) -> None:
        """Exit all data regions: copy out their results."""
        for dr in self.compiled.data_regions:
            if dr.name in self._entered_dr:
                for name in dr.copyout:
                    self.rt.dtoh(name)
                self._entered_dr.discard(dr.name)
        for name in list(self._resident):
            self._resident.discard(name)

    # -- region invocation ---------------------------------------------------
    def run_region(self, name: str, scalars: Mapping[str, Value],
                   times: int = 1) -> None:
        result = self.compiled.result(name)
        region = self.compiled.program.region(name)
        if not result.translated:
            self._run_on_host(region, scalars, times)
            return
        dr = self._data_region_of.get(name)
        if dr is not None:
            self._enter_data_region(dr, scalars)
        for _ in range(times):
            self._transfers_in(result, dr)
            for kernel in result.kernels:
                self.rt.launch(kernel, scalars,
                               functions=self.compiled.program.functions)
            self._transfers_out(result, dr)

    def _transfers_in(self, result: RegionResult,
                      dr: Optional[DataRegionSpec]) -> None:
        covered = set(dr.copyin) | set(dr.copyout) | set(dr.create) \
            if dr is not None else set()
        for name in sorted(result.reads | result.writes):
            self._ensure_alloc(name)
            if name in covered and name in self._resident:
                continue
            if name in result.reads:
                self.rt.htod(name)

    def _transfers_out(self, result: RegionResult,
                       dr: Optional[DataRegionSpec]) -> None:
        covered = set(dr.copyin) | set(dr.copyout) | set(dr.create) \
            if dr is not None else set()
        for name in sorted(result.writes):
            if name in covered:
                self._dirty.add(name)
                continue
            self.rt.dtoh(name)

    def _run_on_host(self, region: ParallelRegion,
                     scalars: Mapping[str, Value], times: int) -> None:
        """A region the model failed to translate runs serially on host."""
        extents = {name: list(arr.shape)
                   for name, arr in self.rt.host_arrays.items()}
        bindings = {k: float(v) for k, v in scalars.items()}
        t = price_region_serial(region, extents, bindings, spec=self.host)
        # price_region_serial multiplies by region.invocations; here the
        # driver controls repetition explicitly.
        t = t / max(1, region.invocations) * times
        self.host_time_s += t
        if self.rt.execute:
            # host data must be current: copy back any resident arrays the
            # region touches, then re-stage them
            reads, writes = region_arrays(region, self.compiled.program)
            for name in sorted((reads | writes)):
                if name in self.rt.buffers and name in self._resident:
                    self.rt.dtoh(name)
            for _ in range(times):
                run_region_host(region, self.rt.host_arrays, scalars,
                                self.compiled.program.functions)
            for name in sorted(reads | writes):
                if name in self.rt.buffers and name in self._resident:
                    self.rt.htod(name)

    # -- results ---------------------------------------------------------
    @property
    def gpu_time_s(self) -> float:
        """Simulated end-to-end time: device timeline + host fallbacks."""
        return self.rt.clock_s + self.host_time_s

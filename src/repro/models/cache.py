"""Memoized port compilation, shared by every sweep.

Introduced for the lint/tv suites (PR 2) and since promoted here: the
harness sweeps (``figure1``, ``table2``, ``profile --all``, the baseline
gate), the linter, and the translation validator all touch every
(benchmark, model) pair, and a port compiles identically every time, so
each pair is lowered once per process.  :func:`clear_compile_cache`
resets the table (tests that monkeypatch compilers need it).
"""

from __future__ import annotations

from typing import Optional

from repro.models import get_compiler, resolve_model

# NOTE: repro.benchmarks is imported inside the function below —
# benchmarks itself imports repro.models, so a module-level import
# would be circular.

#: (benchmark, model, variant) → (port, compiled)
_COMPILE_CACHE: dict = {}


def compile_port(benchmark: str, model: str, variant: Optional[str] = None):
    """Resolve, compile, and cache one port.

    Returns ``(port, compiled, chosen_variant)``.  Raises KeyError for
    unknown benchmarks, models, variants, or missing ports — the CLI
    maps these to exit code 2.
    """
    from repro.benchmarks import get_benchmark

    bench = get_benchmark(benchmark)
    model = resolve_model(model)
    chosen = variant or bench.variants(model)[0]
    if chosen not in bench.variants(model):
        raise KeyError(
            f"unknown variant {chosen!r} for {bench.name}/{model}; "
            f"known: {bench.variants(model)}")
    key = (bench.name, model, chosen)
    if key not in _COMPILE_CACHE:
        port = bench.port(model, chosen)
        compiled = get_compiler(model).compile_program(port)
        _COMPILE_CACHE[key] = (port, compiled)
    port, compiled = _COMPILE_CACHE[key]
    return port, compiled, chosen


def clear_compile_cache() -> None:
    """Drop every memoized compilation (for tests)."""
    _COMPILE_CACHE.clear()

"""The content-addressed compile-artifact store, shared by every sweep.

Introduced for the lint/tv suites (PR 2) as a plain memo table and since
grown into an artifact store: the harness sweeps (``figure1``,
``table2``, ``profile --all``, the baseline gate), the linter, the
translation validator, and the ``passes`` report all touch every
(benchmark, model) pair, and a port compiles identically every time, so
each pair is lowered once per process.  Each artifact carries the full
:class:`~repro.models.base.CompiledProgram` — including the per-pass
records and state snapshots the pipeline produced — keyed by

    ``(bench, model, variant, config_hash)``

where ``config_hash`` digests the serialized input program, the port's
annotations, and the compiler's pass list.  Registry benchmarks take a
fast-key path (name triple → key, no re-hashing per call); non-registry
instances (test subclasses, ablation clones) are content-addressed, so
two instances carrying identical programs and ports share one artifact
while a subclass that overrides the port hashes differently and gets
its own.  :func:`clear_compile_cache` resets the table (tests that
monkeypatch compilers need it).
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Optional

from repro.models import get_compiler, resolve_model

if TYPE_CHECKING:
    from repro.benchmarks.base import Benchmark
    from repro.models.base import CompiledProgram, PortSpec

# NOTE: repro.benchmarks is imported inside the functions below —
# benchmarks itself imports repro.models, so a module-level import
# would be circular.


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one compile artifact."""

    bench: str
    model: str
    variant: str
    config_hash: str


@dataclass
class Artifact:
    """One cached compilation: the port and its compiled program (whose
    region results carry the per-pass provenance records)."""

    key: ArtifactKey
    port: "PortSpec"
    compiled: "CompiledProgram"


def _config_hash(model: str, variant: str, port: "PortSpec",
                 compiler) -> str:
    """Digest everything that determines the compilation's output: the
    input program, the port's annotations, and the compiler's pass
    list (a monkeypatched or subclassed compiler hashes differently)."""
    h = hashlib.sha256()
    h.update(model.encode())
    h.update(variant.encode())
    try:
        from repro.ir.serialize import program_to_dict
        h.update(json.dumps(program_to_dict(port.program),
                            sort_keys=True).encode())
    except Exception:
        # unserializable test programs fall back to identity addressing:
        # no cross-instance sharing, but still cached per program object
        h.update(f"unserializable:{id(port.program)}".encode())
    h.update(repr((port.directive_lines, port.restructured_lines,
                   port.data_regions, sorted(port.region_options.items()),
                   port.notes, port.elide_transfers)).encode())
    h.update(type(compiler).__qualname__.encode())
    h.update(repr(compiler.pipeline.pass_names()).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class StoreView:
    """A picklable snapshot (or delta) of an :class:`ArtifactStore`.

    The parallel sweep engine ships these across process boundaries:
    each worker exports the keys it compiled — optionally with the
    artifacts themselves — and the parent absorbs them, so a port
    lowered in one worker is never lowered again anywhere else, and the
    merged hit/miss accounting still sums to the request count.
    """

    keys: tuple[ArtifactKey, ...] = ()
    #: registry fast-path mappings covered by ``keys``
    fast: tuple[tuple[tuple[str, str, str], ArtifactKey], ...] = ()
    hits: int = 0
    misses: int = 0
    #: present only when exported with ``include_artifacts=True``
    artifacts: tuple[Artifact, ...] = ()

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self.keys)}


def merge_view_stats(views: Iterable[StoreView]) -> dict:
    """Fold per-worker store views into one stats dict.

    ``duplicates`` lists any :class:`ArtifactKey` compiled by more than
    one worker — always empty when the work-unit graph partitions the
    port set correctly (the determinism tests assert exactly that).
    """
    hits = misses = 0
    seen: dict[ArtifactKey, int] = {}
    duplicates: list[ArtifactKey] = []
    for view in views:
        hits += view.hits
        misses += view.misses
        for key in view.keys:
            seen[key] = seen.get(key, 0) + 1
            if seen[key] == 2:
                duplicates.append(key)
    return {"hits": hits, "misses": misses, "entries": len(seen),
            "duplicates": duplicates}


class ArtifactStore:
    """In-process artifact store with hit/miss accounting.

    Thread-safe: a reentrant lock serializes lookup-or-compile, so
    concurrent :func:`compile_bench` calls can never lower the same key
    twice (the second caller blocks, then hits).
    """

    def __init__(self) -> None:
        self._artifacts: dict[ArtifactKey, Artifact] = {}
        #: registry fast path: (bench, model, variant) → ArtifactKey,
        #: valid because a registry benchmark's port is deterministic
        #: per (model, variant) within a process
        self._fast: dict[tuple[str, str, str], ArtifactKey] = {}
        #: JIT tier: kernel IR hash → compiled JitProgram (or a cached
        #: JitFallback decision), keyed by content so identical bodies
        #: from different ports share one compilation
        self._jit: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.jit_hits = 0
        self.jit_misses = 0
        self._lock = threading.RLock()

    # -- core ------------------------------------------------------------
    def _compile(self, key: ArtifactKey, port: "PortSpec",
                 compiler) -> Artifact:
        artifact = self._artifacts.get(key)
        if artifact is not None:
            self.hits += 1
            return artifact
        self.misses += 1
        artifact = Artifact(key=key, port=port,
                            compiled=compiler.compile_program(port))
        self._artifacts[key] = artifact
        return artifact

    def registry_artifact(self, bench: "Benchmark", model: str,
                          variant: str, elide: bool = False) -> Artifact:
        """The fast-key path: hash once, then hit by name triple.

        ``elide`` compiles the elide-transfers flavour of the port; it
        extends the fast key (and the config hash, via the port flag)
        so the two flavours never alias one artifact."""
        with self._lock:
            fast = (bench.name, model,
                    variant + "+elide" if elide else variant)
            key = self._fast.get(fast)
            if key is not None:
                self.hits += 1
                return self._artifacts[key]
            port = bench.port(model, variant)
            if elide:
                port = replace(port, elide_transfers=True)
            compiler = get_compiler(model)
            key = ArtifactKey(bench.name, model, variant,
                              _config_hash(model, variant, port, compiler))
            artifact = self._compile(key, port, compiler)
            self._fast[fast] = key
            return artifact

    def instance_artifact(self, bench: "Benchmark", model: str,
                          variant: str, elide: bool = False) -> Artifact:
        """The content-hash path for non-registry benchmark instances:
        identical content shares the registry's artifact; divergent
        content (an overridden port) gets its own entry."""
        with self._lock:
            port = bench.port(model, variant)
            if elide:
                port = replace(port, elide_transfers=True)
            compiler = get_compiler(model)
            key = ArtifactKey(bench.name, model, variant,
                              _config_hash(model, variant, port, compiler))
            return self._compile(key, port, compiler)

    # -- cross-process views ---------------------------------------------
    def view(self, include_artifacts: bool = False) -> StoreView:
        """Snapshot the whole store as a picklable :class:`StoreView`."""
        with self._lock:
            keys = tuple(self._artifacts)
            return StoreView(
                keys=keys,
                fast=tuple(self._fast.items()),
                hits=self.hits, misses=self.misses,
                artifacts=tuple(self._artifacts[k] for k in keys)
                if include_artifacts else ())

    def delta_view(self, since: StoreView,
                   include_artifacts: bool = False) -> StoreView:
        """What happened after ``since``: new keys (and optionally their
        artifacts) plus the hit/miss increments."""
        with self._lock:
            before = set(since.keys)
            before_fast = set(since.fast)
            keys = tuple(k for k in self._artifacts if k not in before)
            return StoreView(
                keys=keys,
                fast=tuple(item for item in self._fast.items()
                           if item not in before_fast),
                hits=self.hits - since.hits,
                misses=self.misses - since.misses,
                artifacts=tuple(self._artifacts[k] for k in keys)
                if include_artifacts else ())

    def absorb(self, view: StoreView) -> int:
        """Install a view's shipped artifacts (idempotent; returns the
        number actually added).  Absorption is free — it does not count
        as hits or misses — but every absorbed key serves later requests
        from memory, so a port lowered in a worker process is never
        lowered again in the parent."""
        added = 0
        with self._lock:
            for artifact in view.artifacts:
                if artifact.key not in self._artifacts:
                    self._artifacts[artifact.key] = artifact
                    added += 1
            for fast, key in view.fast:
                if key in self._artifacts:
                    self._fast.setdefault(fast, key)
        return added

    # -- JIT tier ----------------------------------------------------------
    def jit_get(self, ir_hash: str):
        """The cached compile-or-fallback decision for one kernel body
        (``None`` when this body has never been seen)."""
        with self._lock:
            entry = self._jit.get(ir_hash)
            if entry is None:
                self.jit_misses += 1
            else:
                self.jit_hits += 1
            return entry

    def jit_put(self, ir_hash: str, entry) -> None:
        """Install a compiled :class:`~repro.gpusim.jit.JitProgram` (or a
        negative :class:`~repro.gpusim.jit.JitFallback` decision)."""
        with self._lock:
            self._jit[ir_hash] = entry

    # -- bookkeeping -----------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._artifacts),
                    "jit_hits": self.jit_hits,
                    "jit_misses": self.jit_misses,
                    "jit_entries": len(self._jit)}

    def clear(self) -> None:
        with self._lock:
            self._artifacts.clear()
            self._fast.clear()
            self._jit.clear()
            self.hits = 0
            self.misses = 0
            self.jit_hits = 0
            self.jit_misses = 0


#: the process-wide store every consumer shares
STORE = ArtifactStore()


def compile_port(benchmark: str, model: str, variant: Optional[str] = None,
                 elide: bool = False):
    """Resolve, compile, and cache one registry port.

    Returns ``(port, compiled, chosen_variant)``.  Raises KeyError for
    unknown benchmarks, models, variants, or missing ports — the CLI
    maps these to exit code 2.  ``elide`` selects the elide-transfers
    flavour (the port recompiles with ``elide_transfers=True``, so the
    transfer pipeline's elision pass attaches its plan).
    """
    from repro.benchmarks import get_benchmark

    bench = get_benchmark(benchmark)
    model = resolve_model(model)
    chosen = variant or bench.variants(model)[0]
    if chosen not in bench.variants(model):
        raise KeyError(
            f"unknown variant {chosen!r} for {bench.name}/{model}; "
            f"known: {bench.variants(model)}")
    artifact = STORE.registry_artifact(bench, model, chosen, elide=elide)
    return artifact.port, artifact.compiled, chosen


def compile_bench(bench: "Benchmark", model: str, variant: str,
                  elide: bool = False):
    """``(port, compiled)`` for an in-hand benchmark *instance*.

    Registry instances route through the fast-key path; anything else
    (test subclasses, ablation clones) is content-addressed, so repeat
    compilations of an identical instance still hit the store.
    """
    from repro.benchmarks import get_benchmark

    model = resolve_model(model)
    try:
        registered = get_benchmark(bench.name)
    except KeyError:
        registered = None
    if registered is not None and type(registered) is type(bench):
        if variant not in bench.variants(model):
            raise KeyError(
                f"unknown variant {variant!r} for {bench.name}/{model}; "
                f"known: {bench.variants(model)}")
        artifact = STORE.registry_artifact(bench, model, variant,
                                           elide=elide)
    else:
        artifact = STORE.instance_artifact(bench, model, variant,
                                           elide=elide)
    return artifact.port, artifact.compiled


def cache_stats() -> dict[str, int]:
    """Hit/miss/entry counts for the shared store (harness rollup)."""
    return STORE.stats()


def clear_compile_cache() -> None:
    """Drop every memoized compilation (for tests)."""
    STORE.clear()

"""The HMPP Workbench compiler (Section III-C).

HMPP's codelet model:

* offloaded code must be a *pure function* (codelet): no critical
  sections, no calls to non-inlinable functions, no pointer arithmetic,
  no statements outside the loops — the port pays outlining/refactoring
  lines for this (Table II's coding-practice story);
* scalar reduction clauses exist (``reductions`` in the codelet
  generator directives); array reductions do not;
* a rich set of **codelet generator directives** gives explicit control
  over loop transformations (``permute``, ``tile``, ``blocksize``) and
  CUDA special memories — so HMPP ports express loop-swap and tiling as
  directives where PGI/OpenACC ports had to restructure the input;
* data-transfer optimization uses codelet *groups* with
  ``advancedload``/``delegatedstore`` — mapped to our
  :class:`~repro.models.base.DataRegionSpec`, at a higher directive-line
  cost per codelet than a PGI data region (III-C2).
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.gpusim.kernel import Kernel
from repro.ir.analysis.features import RegionFeatures
from repro.ir.program import ParallelRegion, Program
from repro.ir.stmt import Block, For
from repro.ir.transforms.collapse import promote_inner_parallel
from repro.ir.transforms.inline import inline_calls
from repro.ir.transforms.interchange import parallel_loop_swap
from repro.models.base import DirectiveCompiler, PortSpec
from repro.models.pgi import MAX_NEST_DEPTH


class HMPPCompiler(DirectiveCompiler):
    """HMPP Workbench 3.0.7."""

    name = "HMPP"

    # -- acceptance -----------------------------------------------------
    def check_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec) -> None:
        if feats.worksharing_loops == 0:
            self.reject(
                region,
                "no-worksharing-loop",
                f"region {region.name!r} contains no parallel loop")
        if feats.stmts_outside_worksharing:
            self.reject(
                region,
                "codelet-purity",
                f"region {region.name!r} has statements outside parallel "
                "loops; a codelet body must be the computation itself")
        if feats.has_critical:
            self.reject(
                region,
                "critical-section",
                "codelets cannot contain critical sections")
        if feats.has_pointer_arith:
            self.reject(
                region,
                "pointer-arithmetic",
                "codelets are pure functions; no pointer manipulation")
        if feats.has_call and not feats.calls_all_inlinable:
            self.reject(
                region,
                "function-call",
                "codelets may only call functions the generator can inline")
        if feats.max_nest_depth > MAX_NEST_DEPTH:
            self.reject(
                region,
                "nest-depth-limit",
                f"loop nest of depth {feats.max_nest_depth} exceeds the "
                "codelet generator's limit")
        if feats.explicit_array_reduction_clauses or feats.array_reductions:
            self.reject(
                region,
                "array-reduction",
                "only scalar reduction variables are supported")
        if feats.complex_reductions and not feats.explicit_reduction_clauses:
            self.reject(
                region,
                "complex-reduction",
                "complex reduction patterns need explicit reduction "
                "directives")

    # -- lowering ---------------------------------------------------------
    def lower_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec,
                     ) -> tuple[list[Kernel], list[str]]:
        opts = port.options_for(region.name)

        def transform(loop: For) -> tuple[For, list[str]]:
            notes: list[str] = []
            body: For = loop
            if feats.has_call:
                inlined_block, names = inline_calls(Block([body]), program)
                inner = [s for s in inlined_block.stmts if isinstance(s, For)]
                if len(inner) == 1:
                    body = inner[0]
                    notes.append(f"inlined: {', '.join(names)}")
            if opts.request_loop_swap:
                try:
                    body = parallel_loop_swap(body)
                    notes.append("directive-driven loop permutation "
                                 "(hmppcg permute)")
                except TransformError as exc:
                    self.reject(region, "loop-permute",
                                f"cannot permute: {exc}", cause=exc)
            if opts.request_collapse:
                try:
                    body = promote_inner_parallel(body)
                    notes.append("directive-driven loop gridification "
                                 "(hmppcg gridify)")
                except TransformError as exc:
                    self.reject(region, "loop-collapse",
                                f"cannot gridify: {exc}", cause=exc)
            return body, notes

        # HMPP honors explicit special-memory placements and tilings from
        # the port (Table I row 'utilization of special memories':
        # explicit); private arrays default to row-wise expansion like the
        # other non-OpenMPC models unless the port overrides.
        return self.kernels_from_worksharing(
            region, program, port, transform=transform,
            default_private_orientation="row")

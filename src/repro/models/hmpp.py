"""The HMPP Workbench compiler (Section III-C).

HMPP's codelet model:

* offloaded code must be a *pure function* (codelet): no critical
  sections, no calls to non-inlinable functions, no pointer arithmetic,
  no statements outside the loops — the port pays outlining/refactoring
  lines for this (Table II's coding-practice story);
* scalar reduction clauses exist (``reductions`` in the codelet
  generator directives); array reductions do not;
* a rich set of **codelet generator directives** gives explicit control
  over loop transformations (``permute``, ``tile``, ``blocksize``) and
  CUDA special memories — so HMPP ports express loop-swap and tiling as
  directives where PGI/OpenACC ports had to restructure the input; in
  the pipeline these are the :class:`DirectiveLoopSwap` /
  :class:`DirectiveCollapse` transform passes, present because the
  model's capabilities say ``explicit_loop_transforms``;
* data-transfer optimization uses codelet *groups* with
  ``advancedload``/``delegatedstore`` — mapped to our
  :class:`~repro.models.base.DataRegionSpec`, at a higher directive-line
  cost per codelet than a PGI data region (III-C2).
"""

from __future__ import annotations

from typing import Optional

from repro.models.base import DirectiveCompiler
from repro.models.features import CAPABILITIES
from repro.pipeline.core import PassContext
from repro.pipeline.passes import (BuildKernels, Check,
                                   DefaultPrivateOrientation,
                                   DirectiveCollapse, DirectiveLoopSwap,
                                   FeatureScan, InlineCalls, Intake,
                                   check_calls_inlinable, check_loops_only,
                                   check_nest_depth, check_no_critical,
                                   check_no_pointer_arith,
                                   check_worksharing)


def _array_reduction(ctx: PassContext) -> Optional[str]:
    if ctx.feats.explicit_array_reduction_clauses or \
            ctx.feats.array_reductions:
        return "only scalar reduction variables are supported"
    return None


def _complex_reduction(ctx: PassContext) -> Optional[str]:
    if ctx.feats.complex_reductions and \
            not ctx.feats.explicit_reduction_clauses:
        return ("complex reduction patterns need explicit reduction "
                "directives")
    return None


class HMPPCompiler(DirectiveCompiler):
    """HMPP Workbench 3.0.7."""

    name = "HMPP"

    def build_pipeline(self) -> list:
        caps = CAPABILITIES[self.name]
        passes: list = [
            Intake(),
            FeatureScan(),
            check_worksharing(),
            check_loops_only(
                "codelet-purity",
                "region {name!r} has statements outside parallel "
                "loops; a codelet body must be the computation itself"),
            check_no_critical(
                template="codelets cannot contain critical sections"),
            check_no_pointer_arith(
                template="codelets are pure functions; no pointer "
                         "manipulation"),
            check_calls_inlinable(
                "codelets may only call functions the generator can "
                "inline"),
            check_nest_depth(
                caps.max_nest_depth,
                "loop nest of depth {depth} exceeds the codelet "
                "generator's limit"),
            Check("check-array-reduction", "array-reduction",
                  _array_reduction),
            Check("check-complex-reduction", "complex-reduction",
                  _complex_reduction),
            InlineCalls(),
        ]
        if caps.explicit_loop_transforms:
            # hmppcg permute / gridify honor the port's requests
            passes += [DirectiveLoopSwap(), DirectiveCollapse()]
        passes += [
            # HMPP honors explicit special-memory placements and tilings
            # from the port (Table I 'utilization of special memories':
            # explicit); private arrays default to row-wise expansion
            # like the other non-OpenMPC models unless the port overrides
            DefaultPrivateOrientation("row"),
            BuildKernels(),
        ]
        return passes

"""The OpenACC compiler (Section III-B) — PGI's implementation.

OpenACC inherits the PGI Accelerator model (the tested implementation is
literally built on the PGI compiler), with the standard's extensions:

* two compute constructs: **kernels** (each loop nest in the region
  becomes one kernel — the PGI compute-region behaviour, our default)
  and **parallel** (the whole region compiles to a *single* kernel,
  OpenMP-style; a region with several work-sharing nests cannot use it);
* an **explicit reduction clause** for scalar loop reductions — complex
  scalar patterns that defeat PGI's implicit detector are fine here *if*
  the port annotated them;
* three levels of parallelism (gang/worker/vector) — our grid mapping
  covers gang×vector; the distinction is recorded, not priced;
* richer data clauses across procedure boundaries — ports may attach
  data regions without the PGI lexical-containment caveat;
* the OpenACC-specific **contiguity requirement**: arrays named in data
  clauses must be contiguous in memory, or the port must repack them.

Structurally the compiler *is* the PGI pipeline
(:func:`repro.models.pgi.pgi_family_passes` under OpenACC's capability
flags — which flip the scalar-reduction-clause and contiguity passes)
with two construct-validation passes spliced in at the head of the
legality stage and a provenance note after codegen.  No subclassing:
the delta is explicit in the pass list.
"""

from __future__ import annotations

from repro.models.base import DirectiveCompiler
from repro.models.features import CAPABILITIES
from repro.models.pgi import pgi_family_passes
from repro.pipeline.core import PassContext, RegionPass
from repro.pipeline.passes import check_construct


def _check_parallel_single_kernel(ctx: PassContext) -> None:
    if ctx.opts.construct == "parallel" and ctx.feats.worksharing_loops > 1:
        ctx.reject(
            "parallel-construct-single-kernel",
            f"region {ctx.region.name!r} has {ctx.feats.worksharing_loops} "
            "work-sharing nests; the parallel construct compiles the "
            "whole region into one kernel — use kernels, or split "
            "the region")


class _ConstructCheck(RegionPass):
    stage = "legality"

    def __init__(self, name: str, fn) -> None:
        self.name = name
        self._fn = fn

    def run(self, ctx: PassContext) -> None:
        self._fn(ctx)


class ConstructNote(RegionPass):
    """Record which OpenACC compute construct lowered the region."""

    name = "acc-construct-note"
    stage = "codegen"

    def run(self, ctx: PassContext) -> None:
        construct = ctx.opts.construct
        detail = ("one kernel per loop nest" if construct == "kernels"
                  else "single-kernel region")
        ctx.note(f"{construct} construct ({detail})")


class OpenACCCompiler(DirectiveCompiler):
    """OpenACC 1.0 via the PGI 12.6 implementation."""

    name = "OpenACC"

    def build_pipeline(self) -> list:
        caps = CAPABILITIES[self.name]
        base = pgi_family_passes(self.name, caps)
        delta = [
            check_construct(caps),
            _ConstructCheck("check-parallel-construct",
                            _check_parallel_single_kernel),
        ]
        # the construct checks run before the inherited legality list
        # (III-B validates the construct before anything else)
        head = next(i for i, p in enumerate(base) if p.stage == "legality")
        return base[:head] + delta + base[head:] + [ConstructNote()]

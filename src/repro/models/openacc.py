"""The OpenACC compiler (Section III-B) — PGI's implementation.

OpenACC inherits the PGI Accelerator model (the tested implementation is
literally built on the PGI compiler), with the standard's extensions:

* two compute constructs: **kernels** (each loop nest in the region
  becomes one kernel — the PGI compute-region behaviour, our default)
  and **parallel** (the whole region compiles to a *single* kernel,
  OpenMP-style; a region with several work-sharing nests cannot use it);
* an **explicit reduction clause** for scalar loop reductions — complex
  scalar patterns that defeat PGI's implicit detector are fine here *if*
  the port annotated them;
* three levels of parallelism (gang/worker/vector) — our grid mapping
  covers gang×vector; the distinction is recorded, not priced;
* richer data clauses across procedure boundaries — ports may attach
  data regions without the PGI lexical-containment caveat;
* the OpenACC-specific **contiguity requirement**: arrays named in data
  clauses must be contiguous in memory, or the port must repack them.

Everything else (no critical sections, inline-only calls, no
loop-transformation directives, row-wise private expansion, automatic
tiling) behaves as in :class:`repro.models.pgi.PGICompiler`.
"""

from __future__ import annotations

from repro.gpusim.kernel import Kernel
from repro.ir.analysis.features import RegionFeatures
from repro.ir.program import ParallelRegion, Program
from repro.models.base import PortSpec
from repro.models.pgi import PGICompiler


class OpenACCCompiler(PGICompiler):
    """OpenACC 1.0 via the PGI 12.6 implementation."""

    name = "OpenACC"

    accepts_scalar_reduction_clause = True
    accepts_array_reduction_clause = False
    requires_contiguous_arrays = True

    def check_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec) -> None:
        opts = port.options_for(region.name)
        if opts.construct not in ("kernels", "parallel"):
            self.reject(
                region,
                "unknown-construct",
                f"region {region.name!r}: construct must be 'kernels' or "
                f"'parallel', got {opts.construct!r}")
        if opts.construct == "parallel" and feats.worksharing_loops > 1:
            self.reject(
                region,
                "parallel-construct-single-kernel",
                f"region {region.name!r} has {feats.worksharing_loops} "
                "work-sharing nests; the parallel construct compiles the "
                "whole region into one kernel — use kernels, or split "
                "the region")
        super().check_region(region, feats, program, port)

    def lower_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec,
                     ) -> tuple[list[Kernel], list[str]]:
        kernels, applied = super().lower_region(region, feats, program,
                                                port)
        construct = port.options_for(region.name).construct
        applied.append(f"{construct} construct "
                       f"({'one kernel per loop nest' if construct == 'kernels' else 'single-kernel region'})")
        return kernels, applied

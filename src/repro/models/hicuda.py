"""The hiCUDA compiler (Han & Abdelrahman, TPDS'11).

hiCUDA appears in the paper's Table I as the *lowest-abstraction*
directive model — "programmers should control most of the features
explicitly" — but was not part of the quantitative evaluation (and is
likewise excluded from our Table II/Figure 1 sweeps).  It is provided
for completeness and for exploring the abstraction-spectrum question
Table I raises: everything the other models infer must be written down.

Explicit-everything semantics implemented:

* **thread batching is mandatory**: a region without an explicit
  ``block_threads`` in its options is a port error (hiCUDA's
  ``kernel ... tblock/thread`` clauses carry the geometry);
* **data movement is mandatory**: every array the region touches must be
  covered by a data region (``global alloc``/``copyout`` directives);
  there is no implicit transfer generation at all;
* special-memory placements and tilings are honored verbatim
  (``shared`` / ``constant`` directives);
* no reduction support of any kind — scalar or array reductions must
  already have been restructured away;
* the usual structural limits: loops only, no critical sections, no
  pointer arithmetic, inline-only calls.
"""

from __future__ import annotations

from typing import Optional

from repro.models.base import DirectiveCompiler
from repro.pipeline.core import PassContext
from repro.pipeline.passes import (BuildKernels, Check,
                                   DefaultPrivateOrientation, FeatureScan,
                                   InlineCalls, Intake, Note,
                                   check_calls_inlinable, check_loops_only,
                                   check_no_critical,
                                   check_no_pointer_arith,
                                   check_worksharing)


def _reductions(ctx: PassContext) -> Optional[str]:
    feats = ctx.feats
    if (feats.scalar_reductions or feats.array_reductions
            or feats.explicit_reduction_clauses):
        return ("hiCUDA has no reduction support; restructure the "
                "computation (two-level reduction by hand)")
    return None


def _thread_batching(ctx: PassContext) -> Optional[str]:
    if ctx.opts.block_threads is None:
        return (f"region {ctx.region.name!r}: hiCUDA requires an explicit "
                "tblock/thread geometry in the port")
    return None


def _data_movement(ctx: PassContext) -> Optional[str]:
    covered: set[str] = set()
    for dr in ctx.port.data_regions:
        if ctx.region.name in dr.regions:
            covered |= set(dr.copyin) | set(dr.copyout) | set(dr.create)
    missing = sorted((ctx.feats.arrays_referenced
                      | ctx.feats.arrays_written) - covered)
    if missing:
        return (f"region {ctx.region.name!r}: arrays {missing} lack "
                "explicit global alloc/copy directives")
    return None


class HiCudaCompiler(DirectiveCompiler):
    """hiCUDA: the explicit end of the abstraction spectrum."""

    name = "hiCUDA"

    def build_pipeline(self) -> list:
        return [
            Intake(),
            FeatureScan(),
            check_worksharing(),
            check_loops_only(
                "general-structured-block",
                "hiCUDA kernels are loop nests; hoist the serial code"),
            check_no_critical(template="no critical-section support"),
            check_no_pointer_arith(
                template="no pointer manipulation in kernels"),
            check_calls_inlinable("callees must be manually inlinable"),
            Check("check-reductions", "reduction", _reductions),
            Check("check-thread-batching", "thread-batching-unspecified",
                  _thread_batching),
            Check("check-data-movement", "data-movement-unspecified",
                  _data_movement),
            InlineCalls(note_prefix="manually inlined"),
            DefaultPrivateOrientation("register"),
            BuildKernels(),
            Note("hicuda-verbatim", "codegen",
                 "explicit geometry and data directives honored "
                 "verbatim"),
        ]

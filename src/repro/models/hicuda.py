"""The hiCUDA compiler (Han & Abdelrahman, TPDS'11).

hiCUDA appears in the paper's Table I as the *lowest-abstraction*
directive model — "programmers should control most of the features
explicitly" — but was not part of the quantitative evaluation (and is
likewise excluded from our Table II/Figure 1 sweeps).  It is provided
for completeness and for exploring the abstraction-spectrum question
Table I raises: everything the other models infer must be written down.

Explicit-everything semantics implemented:

* **thread batching is mandatory**: a region without an explicit
  ``block_threads`` in its options is a port error (hiCUDA's
  ``kernel ... tblock/thread`` clauses carry the geometry);
* **data movement is mandatory**: every array the region touches must be
  covered by a data region (``global alloc``/``copyout`` directives);
  there is no implicit transfer generation at all;
* special-memory placements and tilings are honored verbatim
  (``shared`` / ``constant`` directives);
* no reduction support of any kind — scalar or array reductions must
  already have been restructured away;
* the usual structural limits: loops only, no critical sections, no
  pointer arithmetic, inline-only calls.
"""

from __future__ import annotations

from repro.gpusim.kernel import Kernel
from repro.ir.analysis.features import RegionFeatures
from repro.ir.program import ParallelRegion, Program
from repro.ir.stmt import Block, For
from repro.ir.transforms.inline import inline_calls
from repro.models.base import DirectiveCompiler, PortSpec


class HiCudaCompiler(DirectiveCompiler):
    """hiCUDA: the explicit end of the abstraction spectrum."""

    name = "hiCUDA"

    def check_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec) -> None:
        opts = port.options_for(region.name)
        if feats.worksharing_loops == 0:
            self.reject(
                region,
                "no-worksharing-loop",
                f"region {region.name!r} contains no parallel loop")
        if feats.stmts_outside_worksharing:
            self.reject(
                region,
                "general-structured-block",
                "hiCUDA kernels are loop nests; hoist the serial code")
        if feats.has_critical:
            self.reject(
                region,
                "critical-section", "no critical-section support")
        if feats.has_pointer_arith:
            self.reject(
                region,
                "pointer-arithmetic", "no pointer manipulation in kernels")
        if feats.has_call and not feats.calls_all_inlinable:
            self.reject(
                region,
                "function-call", "callees must be manually inlinable")
        if (feats.scalar_reductions or feats.array_reductions
                or feats.explicit_reduction_clauses):
            self.reject(
                region,
                "reduction",
                "hiCUDA has no reduction support; restructure the "
                "computation (two-level reduction by hand)")
        if opts.block_threads is None:
            self.reject(
                region,
                "thread-batching-unspecified",
                f"region {region.name!r}: hiCUDA requires an explicit "
                "tblock/thread geometry in the port")
        covered = set()
        for dr in port.data_regions:
            if region.name in dr.regions:
                covered |= set(dr.copyin) | set(dr.copyout) | set(dr.create)
        missing = sorted((feats.arrays_referenced | feats.arrays_written)
                         - covered)
        if missing:
            self.reject(
                region,
                "data-movement-unspecified",
                f"region {region.name!r}: arrays {missing} lack explicit "
                "global alloc/copy directives")

    def lower_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec,
                     ) -> tuple[list[Kernel], list[str]]:
        def transform(loop: For) -> tuple[For, list[str]]:
            if not feats.has_call:
                return loop, []
            inlined, names = inline_calls(Block([loop]), program)
            inner = [s for s in inlined.stmts if isinstance(s, For)]
            if len(inner) == 1:
                return inner[0], [f"manually inlined: {', '.join(names)}"]
            return loop, []

        kernels, applied = self.kernels_from_worksharing(
            region, program, port, transform=transform,
            default_private_orientation="register")
        applied.append("explicit geometry and data directives honored "
                       "verbatim")
        return kernels, applied

"""Table I: the feature matrix of the directive models.

Each cell records *how* a model exposes a capability: ``explicit``
(directives exist to control it), ``implicit`` (the compiler handles it),
``indirect`` (the user can steer the compiler indirectly), ``imp-dep``
(implementation dependent), or combinations.  The data below transcribes
the paper's Table I; the test-suite cross-checks the cells against the
corresponding compiler behaviours (e.g. a model whose "data movement" is
implicit-only must synthesize its own transfer plan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

EXPLICIT = "explicit"
IMPLICIT = "implicit"
INDIRECT = "indirect"
IMP_DEP = "imp-dep"

#: Table I row labels, in paper order.
FEATURE_ROWS: tuple[str, ...] = (
    "Code regions to be offloaded",
    "Loop mapping",
    "GPU memory allocation and free",
    "Data movement between CPU and GPU",
    "Loop transformations",
    "Data management optimizations",
    "Thread batching",
    "Utilization of special memories",
)

#: Table I column labels (models), in paper order; the OpenMP 4.5+
#: target-offload column extends the paper's table (Section VI looks
#: ahead to exactly this convergence of the directive models).
MODEL_COLUMNS: tuple[str, ...] = (
    "PGI", "OpenACC", "HMPP", "OpenMPC", "hiCUDA", "R-Stream",
    "OMP-Target",
)

#: The matrix itself.  Cells are tuples of support levels (some cells in
#: the paper carry two entries, e.g. "explicit implicit").  The first two
#: rows are categorical rather than support levels.
FEATURE_TABLE: Mapping[str, Mapping[str, tuple[str, ...]]] = {
    "Code regions to be offloaded": {
        "PGI": ("loops",),
        "OpenACC": ("structured blocks",),
        "HMPP": ("loops",),
        "OpenMPC": ("structured blocks",),
        "hiCUDA": ("structured blocks",),
        "R-Stream": ("loops",),
        "OMP-Target": ("structured blocks",),
    },
    "Loop mapping": {
        "PGI": ("parallel", "vector"),
        "OpenACC": ("parallel", "vector"),
        "HMPP": ("parallel",),
        "OpenMPC": ("parallel",),
        "hiCUDA": ("parallel",),
        "R-Stream": ("parallel",),
        "OMP-Target": ("parallel", "vector"),
    },
    "GPU memory allocation and free": {
        "PGI": (EXPLICIT, IMPLICIT),
        "OpenACC": (EXPLICIT, IMPLICIT),
        "HMPP": (EXPLICIT, IMPLICIT),
        "OpenMPC": (EXPLICIT, IMPLICIT),
        "hiCUDA": (EXPLICIT,),
        "R-Stream": (IMPLICIT,),
        "OMP-Target": (EXPLICIT, IMPLICIT),
    },
    "Data movement between CPU and GPU": {
        "PGI": (EXPLICIT, IMPLICIT),
        "OpenACC": (EXPLICIT, IMPLICIT),
        "HMPP": (EXPLICIT, IMPLICIT),
        "OpenMPC": (EXPLICIT, IMPLICIT),
        "hiCUDA": (EXPLICIT,),
        "R-Stream": (IMPLICIT,),
        "OMP-Target": (EXPLICIT, IMPLICIT),
    },
    "Loop transformations": {
        "PGI": (IMPLICIT,),
        "OpenACC": (IMP_DEP,),
        "HMPP": (EXPLICIT,),
        "OpenMPC": (EXPLICIT,),
        "hiCUDA": (),
        "R-Stream": (IMPLICIT,),
        "OMP-Target": (),
    },
    "Data management optimizations": {
        "PGI": (EXPLICIT, IMPLICIT),
        "OpenACC": (IMP_DEP,),
        "HMPP": (EXPLICIT, IMPLICIT),
        "OpenMPC": (EXPLICIT, IMPLICIT),
        "hiCUDA": (IMPLICIT,),
        "R-Stream": (IMPLICIT,),
        "OMP-Target": (EXPLICIT,),
    },
    "Thread batching": {
        "PGI": (INDIRECT, IMPLICIT),
        "OpenACC": (INDIRECT, IMPLICIT),
        "HMPP": (EXPLICIT, IMPLICIT),
        "OpenMPC": (EXPLICIT, IMPLICIT),
        "hiCUDA": (EXPLICIT,),
        "R-Stream": (EXPLICIT, IMPLICIT),
        "OMP-Target": (EXPLICIT, IMPLICIT),
    },
    "Utilization of special memories": {
        "PGI": (INDIRECT, IMPLICIT),
        "OpenACC": (INDIRECT, IMP_DEP),
        "HMPP": (EXPLICIT,),
        "OpenMPC": (EXPLICIT, IMPLICIT),
        "hiCUDA": (EXPLICIT,),
        "R-Stream": (IMPLICIT,),
        "OMP-Target": (IMP_DEP,),
    },
}


@dataclass(frozen=True)
class ModelCapabilities:
    """The behavioural flags each compiler implementation asserts.

    Tests verify these against both Table I and the compilers' observable
    behaviour, tying the qualitative table to the executable system.
    """

    name: str
    #: user can place data in special memories via directives
    explicit_special_memories: bool
    #: user can request loop transformations via directives
    explicit_loop_transforms: bool
    #: compiler synthesizes the whole transfer plan with no data clauses
    automatic_data_plan: bool
    #: user can set thread-block size directly
    explicit_thread_batching: bool
    #: accepts scalar reduction clauses / array reduction clauses
    scalar_reduction_clause: bool
    array_reduction_clause: bool
    #: accepts critical sections that encode reductions
    critical_reductions: bool
    #: supports calls to non-inlinable functions in offloaded code
    interprocedural_calls: bool
    #: restricted to affine (extended static control) regions
    affine_only: bool
    #: arrays referenced by offloaded code must be contiguous (OpenACC
    #: data clauses, OpenMPC's single-layout rule, R-Stream's rejection
    #: of pointer-to-pointer rows)
    contiguous_data_required: bool = False
    #: compute constructs the model's regions may name (the OpenACC
    #: ``kernels``/``parallel`` pair; spelled ``target teams`` for the
    #: OpenMP target model).  Empty means the model ignores the construct
    #: field entirely (PGI's compute regions are always per-nest).
    constructs: tuple[str, ...] = ()
    #: implementation limit on offloaded loop-nest depth (None: no
    #: declared limit) — the one source the nest-depth legality checks
    #: and the translator read
    max_nest_depth: "int | None" = None


CAPABILITIES: Mapping[str, ModelCapabilities] = {
    "PGI Accelerator": ModelCapabilities(
        name="PGI Accelerator",
        explicit_special_memories=False, explicit_loop_transforms=False,
        automatic_data_plan=False, explicit_thread_batching=False,
        scalar_reduction_clause=False, array_reduction_clause=False,
        critical_reductions=False, interprocedural_calls=False,
        affine_only=False, max_nest_depth=4),
    "OpenACC": ModelCapabilities(
        name="OpenACC",
        explicit_special_memories=False, explicit_loop_transforms=False,
        automatic_data_plan=False, explicit_thread_batching=True,
        scalar_reduction_clause=True, array_reduction_clause=False,
        critical_reductions=False, interprocedural_calls=False,
        affine_only=False, contiguous_data_required=True,
        constructs=("kernels", "parallel"), max_nest_depth=4),
    "HMPP": ModelCapabilities(
        name="HMPP",
        explicit_special_memories=True, explicit_loop_transforms=True,
        automatic_data_plan=False, explicit_thread_batching=True,
        scalar_reduction_clause=True, array_reduction_clause=False,
        critical_reductions=False, interprocedural_calls=False,
        affine_only=False, max_nest_depth=4),
    "OpenMPC": ModelCapabilities(
        name="OpenMPC",
        explicit_special_memories=True, explicit_loop_transforms=True,
        automatic_data_plan=True, explicit_thread_batching=True,
        scalar_reduction_clause=True, array_reduction_clause=True,
        critical_reductions=True, interprocedural_calls=True,
        affine_only=False, contiguous_data_required=True),
    "R-Stream": ModelCapabilities(
        name="R-Stream",
        explicit_special_memories=False, explicit_loop_transforms=False,
        automatic_data_plan=True, explicit_thread_batching=True,
        scalar_reduction_clause=False, array_reduction_clause=False,
        critical_reductions=False, interprocedural_calls=False,
        affine_only=True, contiguous_data_required=True),
    "hiCUDA": ModelCapabilities(
        name="hiCUDA",
        explicit_special_memories=True, explicit_loop_transforms=False,
        automatic_data_plan=False, explicit_thread_batching=True,
        scalar_reduction_clause=False, array_reduction_clause=False,
        critical_reductions=False, interprocedural_calls=False,
        affine_only=False),
    "OpenMP-Target": ModelCapabilities(
        name="OpenMP-Target",
        explicit_special_memories=False, explicit_loop_transforms=False,
        automatic_data_plan=False, explicit_thread_batching=True,
        scalar_reduction_clause=True, array_reduction_clause=True,
        critical_reductions=True, interprocedural_calls=True,
        affine_only=False, contiguous_data_required=True,
        constructs=("kernels", "parallel")),
    "Hand-Written CUDA": ModelCapabilities(
        name="Hand-Written CUDA",
        explicit_special_memories=True, explicit_loop_transforms=True,
        automatic_data_plan=False, explicit_thread_batching=True,
        scalar_reduction_clause=True, array_reduction_clause=True,
        critical_reductions=True, interprocedural_calls=True,
        affine_only=False),
}


def render_table1() -> str:
    """Render Table I as aligned text (the harness's table1 command)."""
    col_width = max(len(m) for m in MODEL_COLUMNS) + 2
    row_label_width = max(len(r) for r in FEATURE_ROWS) + 2
    lines = []
    header = "Feature".ljust(row_label_width) + "".join(
        m.ljust(col_width + 8) for m in MODEL_COLUMNS)
    lines.append(header)
    lines.append("-" * len(header))
    for row in FEATURE_ROWS:
        cells = FEATURE_TABLE[row]
        line = row.ljust(row_label_width)
        for model in MODEL_COLUMNS:
            cell = "/".join(cells.get(model, ())) or "-"
            line += cell.ljust(col_width + 8)
        lines.append(line)
    return "\n".join(lines)

"""The PGI Accelerator compiler (Section III-A).

Acceptance limits implemented (III-A2):

* offloads *loops*, not general structured blocks — regions with code
  outside work-sharing loops are rejected (the EP restructuring story);
* no critical sections, no reduction clauses — only *simple* scalar
  reduction patterns are detected implicitly; complex patterns or array
  reductions fail;
* function calls only when the callee is automatically inlinable;
* no pointer arithmetic in offloaded loops;
* an implementation limit on nested-loop depth.

Automatic behaviour implemented (III-A1 and the Section V stories):

* nested parallel loops map to multi-dimensional thread blocks;
* affine 2-D stencil nests get automatic shared-memory tiling ("the PGI
  compiler automatically applies tiling transformation");
* private arrays are expanded **row-wise** — intra-thread locality, which
  is exactly what makes the PGI EP version uncoalesced;
* data regions (from the port's directives) define transfer scopes; the
  compiler has no interprocedural transfer planning of its own.

The compiler is the pass list built by :func:`pgi_family_passes`,
parameterized by the model's :class:`ModelCapabilities` — OpenACC reuses
the same list with its own capability flags plus delta passes.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.transforms.tiling import TilingDecision
from repro.models.base import DirectiveCompiler
from repro.models.features import CAPABILITIES, ModelCapabilities
from repro.pipeline.core import PassContext, RegionPass
from repro.pipeline.passes import (BuildKernels, DefaultPrivateOrientation,
                                   FeatureScan, InlineCalls, Intake,
                                   OrientationNote, ReductionLegality,
                                   check_calls_inlinable, check_contiguity,
                                   check_loops_only, check_nest_depth,
                                   check_no_critical,
                                   check_no_pointer_arith,
                                   check_no_transform_directives,
                                   check_worksharing, grid_nest)

#: implementation-specific limit on loop-nest depth (III-A2) — the
#: authoritative value lives on each model's :class:`ModelCapabilities`
#: (``max_nest_depth``); this constant is the PGI-family default.
MAX_NEST_DEPTH = 4

#: automatic tile edge for 2-D stencil tiling
AUTO_TILE = 16


class PgiAutoTiling(RegionPass):
    """Tile affine 2-D parallel stencil nests for shared memory —
    "the PGI compiler automatically applies tiling transformation"."""

    name = "pgi-auto-tiling"
    stage = "tiling"

    def run(self, ctx: PassContext) -> None:
        if ctx.opts.disable_auto_transforms or ctx.opts.tiling:
            return
        decision = self._auto_tiling(ctx)
        if decision is not None:
            ctx.tiling.append(decision)
            ctx.note(f"automatic {AUTO_TILE}x{AUTO_TILE} "
                     "shared-memory tiling")

    def _auto_tiling(self, ctx: PassContext) -> Optional[TilingDecision]:
        feats = ctx.feats
        if not feats.is_affine:
            return None
        loops = ctx.region.worksharing_loops()
        if len(loops) != 1:
            return None
        nest = grid_nest(loops[0])
        if len(nest) < 2:
            return None
        arrays = tuple(sorted(feats.arrays_referenced - feats.arrays_written))
        if not arrays:
            return None
        halo = AUTO_TILE + 2
        return TilingDecision(
            tile_dims=(AUTO_TILE, AUTO_TILE),
            reuse_factor=3.0,
            smem_bytes_per_block=halo * halo * 8,
            arrays=arrays)


def pgi_family_passes(model: str, caps: ModelCapabilities) -> list:
    """The PGI Accelerator pipeline, parameterized by capabilities.

    OpenACC builds on this list (Section III-B: the tested OpenACC
    implementation *is* the PGI compiler): its capability flags switch
    the reduction-clause acceptance and the contiguity requirement, and
    :mod:`repro.models.openacc` splices its construct checks in.
    """
    passes: list = [
        Intake(),
        FeatureScan(),
        # legality, in the documented III-A2 order: the first failing
        # check names the Table II diagnostic
        check_no_transform_directives(model),
        check_worksharing(),
        check_loops_only(
            "general-structured-block",
            "region {name!r} has statements outside parallel "
            "loops; the compute-region model offloads loops only"),
        check_no_critical(),
        check_no_pointer_arith(),
        check_calls_inlinable(
            "region {name!r} calls functions the compiler "
            "cannot inline automatically"),
        check_nest_depth(
            caps.max_nest_depth or MAX_NEST_DEPTH,
            "loop nest of depth {depth} exceeds the "
            "implementation limit of {limit}"),
        ReductionLegality(model, caps.scalar_reduction_clause),
    ]
    if caps.contiguous_data_required:
        passes.append(check_contiguity(
            "non-contiguous-data",
            "array {array!r} is not contiguous in memory; "
            "data clauses require contiguous data"))
    passes += [
        InlineCalls(),
        DefaultPrivateOrientation("row"),
        PgiAutoTiling(),
        BuildKernels(),
        OrientationNote("row", "row-wise private-array expansion"),
    ]
    return passes


class PGICompiler(DirectiveCompiler):
    """PGI Accelerator C, as evaluated with PGI 12.6."""

    name = "PGI Accelerator"

    def build_pipeline(self) -> list:
        return pgi_family_passes(self.name, CAPABILITIES[self.name])

"""The PGI Accelerator compiler (Section III-A).

Acceptance limits implemented (III-A2):

* offloads *loops*, not general structured blocks — regions with code
  outside work-sharing loops are rejected (the EP restructuring story);
* no critical sections, no reduction clauses — only *simple* scalar
  reduction patterns are detected implicitly; complex patterns or array
  reductions fail;
* function calls only when the callee is automatically inlinable;
* no pointer arithmetic in offloaded loops;
* an implementation limit on nested-loop depth.

Automatic behaviour implemented (III-A1 and the Section V stories):

* nested parallel loops map to multi-dimensional thread blocks;
* affine 2-D stencil nests get automatic shared-memory tiling ("the PGI
  compiler automatically applies tiling transformation");
* private arrays are expanded **row-wise** — intra-thread locality, which
  is exactly what makes the PGI EP version uncoalesced;
* data regions (from the port's directives) define transfer scopes; the
  compiler has no interprocedural transfer planning of its own.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransformError
from repro.gpusim.kernel import Kernel
from repro.ir.analysis.affine import region_is_affine
from repro.ir.analysis.features import RegionFeatures
from repro.ir.program import ParallelRegion, Program
from repro.ir.stmt import Block, For, LocalDecl
from repro.ir.transforms.inline import inline_calls
from repro.ir.transforms.tiling import TilingDecision
from repro.models.base import (DirectiveCompiler, PortSpec, RegionOptions,
                               grid_nest)

#: implementation-specific limit on loop-nest depth (III-A2)
MAX_NEST_DEPTH = 4

#: automatic tile edge for 2-D stencil tiling
AUTO_TILE = 16


class PGICompiler(DirectiveCompiler):
    """PGI Accelerator C, as evaluated with PGI 12.6."""

    name = "PGI Accelerator"

    #: subclass hooks (OpenACC overrides)
    accepts_scalar_reduction_clause = False
    accepts_array_reduction_clause = False
    requires_contiguous_arrays = False

    # -- acceptance -------------------------------------------------------
    def check_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec) -> None:
        opts = port.options_for(region.name)
        if opts.request_loop_swap or opts.request_collapse:
            self.reject(
                region,
                "no-loop-transformation-directives",
                f"{self.name} has no directives for loop transformations; "
                "restructure the input code instead")
        if feats.worksharing_loops == 0:
            self.reject(
                region,
                "no-worksharing-loop",
                f"region {region.name!r} contains no parallel loop")
        if feats.stmts_outside_worksharing:
            self.reject(
                region,
                "general-structured-block",
                f"region {region.name!r} has statements outside parallel "
                "loops; the compute-region model offloads loops only")
        if feats.has_critical:
            self.reject(
                region,
                "critical-section",
                f"region {region.name!r} contains an OpenMP critical "
                "section, which the model cannot express")
        if feats.has_pointer_arith:
            self.reject(
                region,
                "pointer-arithmetic",
                "pointer arithmetic is not allowed in offloaded loops")
        if feats.has_call and not feats.calls_all_inlinable:
            self.reject(
                region,
                "function-call",
                f"region {region.name!r} calls functions the compiler "
                "cannot inline automatically")
        if feats.max_nest_depth > MAX_NEST_DEPTH:
            self.reject(
                region,
                "nest-depth-limit",
                f"loop nest of depth {feats.max_nest_depth} exceeds the "
                f"implementation limit of {MAX_NEST_DEPTH}")
        self._check_reductions(region, feats)
        if self.requires_contiguous_arrays:
            for name in sorted(feats.arrays_referenced):
                if name in program.arrays and not program.arrays[name].contiguous:
                    self.reject(
                region,
                        "non-contiguous-data",
                        f"array {name!r} is not contiguous in memory; "
                        "data clauses require contiguous data")

    def _check_reductions(self, region: ParallelRegion,
                          feats: RegionFeatures) -> None:
        if feats.explicit_array_reduction_clauses:
            self.reject(
                region,
                "array-reduction-clause",
                "reduction clauses accept scalar variables only")
        if feats.explicit_reduction_clauses and \
                not self.accepts_scalar_reduction_clause:
            self.reject(
                region,
                "reduction-clause",
                f"{self.name} has no reduction clause; reductions must be "
                "implicitly detectable")
        if feats.array_reductions:
            self.reject(
                region,
                "array-reduction",
                "only scalar reductions can be handled; decompose the "
                "array reduction manually")
        clause_covered = feats.explicit_reduction_clauses > 0 and \
            self.accepts_scalar_reduction_clause
        if feats.complex_reductions and not clause_covered:
            self.reject(
                region,
                "complex-reduction",
                "the implicit reduction detector only recognizes simple "
                "scalar patterns")

    # -- lowering -----------------------------------------------------------
    def lower_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec,
                     ) -> tuple[list[Kernel], list[str]]:
        opts = port.options_for(region.name)
        applied: list[str] = []

        def transform(loop: For) -> tuple[For, list[str]]:
            notes: list[str] = []
            body: For = loop
            if feats.has_call:
                inlined_block, names = inline_calls(Block([body]), program)
                inner = [s for s in inlined_block.stmts if isinstance(s, For)]
                if len(inner) == 1:
                    body = inner[0]
                    notes.append(f"inlined: {', '.join(names)}")
            return body, notes

        extra_tiling: list[TilingDecision] = []
        if not opts.disable_auto_transforms and not opts.tiling:
            tiling = self._auto_tiling(region, feats)
            if tiling is not None:
                extra_tiling.append(tiling)
                applied.append(
                    f"automatic {AUTO_TILE}x{AUTO_TILE} shared-memory tiling")

        kernels, notes = self.kernels_from_worksharing(
            region, program, port, transform=transform,
            default_private_orientation="row",
            extra_tiling=extra_tiling)
        applied.extend(notes)
        if any(k.private_orientations.get(n) == "row"
               for k in kernels for n in k.private_orientations):
            applied.append("row-wise private-array expansion")
        return kernels, applied

    def _auto_tiling(self, region: ParallelRegion,
                     feats: RegionFeatures) -> Optional[TilingDecision]:
        """Tile affine 2-D parallel stencil nests for shared memory."""
        if not feats.is_affine:
            return None
        loops = region.worksharing_loops()
        if len(loops) != 1:
            return None
        nest = grid_nest(loops[0])
        if len(nest) < 2:
            return None
        arrays = tuple(sorted(feats.arrays_referenced - feats.arrays_written))
        if not arrays:
            return None
        halo = AUTO_TILE + 2
        return TilingDecision(
            tile_dims=(AUTO_TILE, AUTO_TILE),
            reuse_factor=3.0,
            smem_bytes_per_block=halo * halo * 8,
            arrays=arrays)

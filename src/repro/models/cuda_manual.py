"""The hand-written CUDA baseline.

The paper compares every directive model against hand-tuned CUDA versions
(Rodinia's own CUDA codes, the Hpcgpu FT, and hand conversions of
JACOBI/SPMUL/EP/CG).  Our equivalent: the benchmark's *manual port*
provides an already-restructured program (transposed layouts, two-level
reductions, linearized arrays) plus explicit launch configuration,
memory-space placement, tiling, and pattern facts — and this "compiler"
simply trusts all of it.  Nothing is rejected: a CUDA programmer can
always express the construct somehow (BFS's poor speedup is a property
of its port, not of translatability).
"""

from __future__ import annotations

from repro.gpusim.kernel import Kernel
from repro.ir.analysis.features import RegionFeatures
from repro.ir.program import ParallelRegion, Program
from repro.models.base import DirectiveCompiler, PortSpec


class ManualCudaCompiler(DirectiveCompiler):
    """Hand-written CUDA (performance upper bound)."""

    name = "Hand-Written CUDA"

    def check_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec) -> None:
        return  # everything is expressible by hand

    def lower_region(self, region: ParallelRegion, feats: RegionFeatures,
                     program: Program, port: PortSpec,
                     ) -> tuple[list[Kernel], list[str]]:
        kernels, applied = self.kernels_from_worksharing(
            region, program, port,
            default_private_orientation="register")
        applied.append("hand-tuned kernel configuration")
        return kernels, applied

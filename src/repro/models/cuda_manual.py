"""The hand-written CUDA baseline.

The paper compares every directive model against hand-tuned CUDA versions
(Rodinia's own CUDA codes, the Hpcgpu FT, and hand conversions of
JACOBI/SPMUL/EP/CG).  Our equivalent: the benchmark's *manual port*
provides an already-restructured program (transposed layouts, two-level
reductions, linearized arrays) plus explicit launch configuration,
memory-space placement, tiling, and pattern facts — and this "compiler"
simply trusts all of it.  Nothing is rejected: a CUDA programmer can
always express the construct somehow (BFS's poor speedup is a property
of its port, not of translatability).  The pipeline is accordingly the
minimal one — no legality stage at all.
"""

from __future__ import annotations

from repro.models.base import DirectiveCompiler
from repro.pipeline.passes import (BuildKernels,
                                   DefaultPrivateOrientation, FeatureScan,
                                   Intake, Note)


class ManualCudaCompiler(DirectiveCompiler):
    """Hand-written CUDA (performance upper bound)."""

    name = "Hand-Written CUDA"

    def build_pipeline(self) -> list:
        return [
            Intake(),
            FeatureScan(),
            DefaultPrivateOrientation("register"),
            BuildKernels(),
            Note("hand-tuned-note", "codegen",
                 "hand-tuned kernel configuration"),
        ]

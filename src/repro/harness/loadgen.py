"""Synthetic request-stream load generator for the harness.

ROADMAP item 1 plans a persistent compile/run service; its scaling
claims need a measured substrate, not assertions.  This module replays
a seeded synthetic request mix against the harness front door — the
same :func:`~repro.models.cache.compile_bench` + ``bench.run`` path a
service endpoint would call — and reports throughput, exact p50/p99
latency, and artifact-store hit rates for two phases:

* **cold** — the store is cleared first, so every compile request pays
  full pipeline cost;
* **warm** — the *same* stream replays against the store the cold
  phase populated, so repeat compilations hit.

The cold−warm gap is the measured value of the ArtifactStore, and the
warm-phase latency distribution is the baseline a service PR must meet.
The stream is a pure function of ``seed`` (one ``random.Random``, no
wall-clock input), so runs are comparable across commits.

Request kinds:

* ``compile`` — compile one (bench, model) port through the store;
* ``run`` — compile + analytically price a run (``execute=False``),
  the Figure 1 hot path;
* ``exec`` — compile + functionally execute on the interpreting
  executor at ``scale`` (the heavy tail of the distribution).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs import metrics
from repro.obs import tracer as obs
from repro.obs.metrics import Histogram

LOADGEN_SCHEMA = 1

DEFAULT_MIX = "compile=6,run=3,exec=1"

#: request kinds a mix spec may weight
KINDS = ("compile", "run", "exec")


class MixError(ValueError):
    """A malformed ``kind=weight`` mix specification."""


def parse_mix(spec: str) -> dict[str, int]:
    """``"compile=6,run=3,exec=1"`` → ``{"compile": 6, ...}``."""
    weights: dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise MixError(f"mix entry {part!r} is not kind=weight")
        kind, _, raw = part.partition("=")
        kind = kind.strip()
        if kind not in KINDS:
            raise MixError(f"unknown request kind {kind!r}; "
                           f"known: {', '.join(KINDS)}")
        try:
            weight = int(raw)
        except ValueError:
            raise MixError(f"weight {raw!r} for {kind!r} is not an integer")
        if weight < 0:
            raise MixError(f"weight for {kind!r} must be >= 0")
        weights[kind] = weight
    if not weights or not any(weights.values()):
        raise MixError(f"mix {spec!r} selects no requests")
    return weights


@dataclass(frozen=True)
class Request:
    """One synthetic request in the stream."""

    kind: str
    bench: str
    model: str


def build_stream(requests: int, seed: int, mix: str,
                 benchmarks: Optional[Sequence[str]] = None,
                 models: Optional[Sequence[str]] = None) -> list[Request]:
    """The seeded request stream — a pure function of its arguments."""
    from repro.benchmarks.registry import BENCHMARK_ORDER
    from repro.harness.runner import FIGURE1_MODELS

    weights = parse_mix(mix)
    benches = list(benchmarks) if benchmarks is not None \
        else list(BENCHMARK_ORDER)
    model_list = list(models) if models is not None \
        else list(FIGURE1_MODELS)
    rng = random.Random(seed)
    kinds = [k for k in KINDS if weights.get(k, 0) > 0]
    kind_weights = [weights[k] for k in kinds]
    return [Request(kind=rng.choices(kinds, weights=kind_weights)[0],
                    bench=rng.choice(benches), model=rng.choice(model_list))
            for _ in range(requests)]


def _serve(req: Request, scale: str) -> None:
    """Serve one request through the real harness entry points."""
    from repro.benchmarks.registry import get_benchmark
    from repro.models.cache import compile_bench

    bench = get_benchmark(req.bench)
    variant = bench.variants(req.model)[0]
    _, compiled = compile_bench(bench, req.model, variant)
    if req.kind == "compile":
        return
    bench.run(req.model, variant, scale=scale,
              execute=(req.kind == "exec"), validate=False,
              compiled=compiled)


@dataclass
class PhaseStats:
    """Latency/throughput/store accounting for one replay phase."""

    phase: str
    n: int = 0
    elapsed_s: float = 0.0
    overall: Histogram = field(default_factory=Histogram)
    per_kind: dict[str, Histogram] = field(default_factory=dict)
    store_hits: int = 0
    store_misses: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.n / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        total = self.store_hits + self.store_misses
        return self.store_hits / total if total else 0.0

    def record(self, kind: str, latency_s: float) -> None:
        self.n += 1
        self.overall.observe(latency_s)
        self.per_kind.setdefault(kind, Histogram()).observe(latency_s)

    def cold_warm_speedup(self, cold: "PhaseStats") -> Optional[float]:
        """cold p50 / this phase's p50 (``None`` if either is empty)."""
        mine = self.overall.quantiles()
        theirs = cold.overall.quantiles()
        if not mine or not theirs or mine.get("p50", 0.0) <= 0.0:
            return None
        return theirs["p50"] / mine["p50"]

    def to_dict(self) -> dict:
        def q(h: Histogram) -> dict:
            out = {"count": h.count, "sum_s": round(h.sum, 6)}
            out.update({k: round(v, 6) for k, v in h.quantiles().items()})
            return out

        return {"phase": self.phase, "requests": self.n,
                "elapsed_s": round(self.elapsed_s, 6),
                "throughput_rps": round(self.throughput_rps, 3),
                "latency_s": q(self.overall),
                "per_kind": {k: q(h)
                             for k, h in sorted(self.per_kind.items())},
                "store": {"hits": self.store_hits,
                          "misses": self.store_misses,
                          "hit_rate": round(self.hit_rate, 4)}}


@dataclass
class LoadgenReport:
    """Cold + warm phase results for one seeded stream."""

    requests: int
    seed: int
    mix: str
    scale: str
    cold: PhaseStats
    warm: PhaseStats

    def to_dict(self) -> dict:
        return {"schema": LOADGEN_SCHEMA, "requests": self.requests,
                "seed": self.seed, "mix": self.mix, "scale": self.scale,
                "phases": [self.cold.to_dict(), self.warm.to_dict()]}

    def smoke_failures(self) -> list[str]:
        """What the ``--smoke`` CI gate checks, as human-readable rows."""
        problems = []
        if self.warm.store_hits <= 0:
            problems.append(
                "warm phase recorded no artifact-store hits — the store "
                "is not being reused across identical requests")
        if self.cold.n != self.requests or self.warm.n != self.requests:
            problems.append("a phase dropped requests")
        if self.cold.n and not self.cold.overall.values:
            problems.append("cold phase recorded no latencies")
        return problems

    def render(self) -> str:
        lines = [f"loadgen: {self.requests} requests, seed {self.seed}, "
                 f"mix {self.mix}, scale {self.scale}",
                 "=" * 64,
                 f"{'phase':<7}{'reqs':>6}{'rps':>9}{'p50 ms':>10}"
                 f"{'p90 ms':>10}{'p99 ms':>10}{'max ms':>10}"
                 f"{'hit rate':>10}"]
        for ph in (self.cold, self.warm):
            q = ph.overall.quantiles()
            lines.append(
                f"{ph.phase:<7}{ph.n:>6}{ph.throughput_rps:>9.1f}"
                f"{q.get('p50', 0) * 1e3:>10.2f}"
                f"{q.get('p90', 0) * 1e3:>10.2f}"
                f"{q.get('p99', 0) * 1e3:>10.2f}"
                f"{q.get('max', 0) * 1e3:>10.2f}"
                f"{ph.hit_rate:>9.1%}")
        for ph in (self.cold, self.warm):
            lines.append("")
            lines.append(f"{ph.phase} per-kind p50/p99 (ms):")
            for kind, hist in sorted(ph.per_kind.items()):
                q = hist.quantiles()
                lines.append(f"  {kind:<9}{hist.count:>5} reqs"
                             f"{q.get('p50', 0) * 1e3:>10.2f}"
                             f"{q.get('p99', 0) * 1e3:>10.2f}")
        if self.warm.cold_warm_speedup(self.cold) is not None:
            lines.append("")
            lines.append(f"warm p50 speedup over cold: "
                         f"{self.warm.cold_warm_speedup(self.cold):.1f}x")
        return "\n".join(lines)


def _replay(phase: str, stream: Sequence[Request], scale: str) -> PhaseStats:
    from repro.models.cache import cache_stats

    stats = PhaseStats(phase=phase)
    before = cache_stats()
    t_phase = time.perf_counter()
    for req in stream:
        with obs.span(f"request.{req.kind}", "loadgen", kind=req.kind,
                      bench=req.bench, model=req.model, phase=phase):
            t0 = time.perf_counter()
            _serve(req, scale)
            latency = time.perf_counter() - t0
        stats.record(req.kind, latency)
        metrics.inc("loadgen_requests",
                    labels={"phase": phase, "kind": req.kind},
                    help="synthetic requests served", deterministic=True)
        metrics.observe("loadgen_request_seconds", latency,
                        labels={"phase": phase, "kind": req.kind},
                        help="request latency by phase and kind")
    stats.elapsed_s = time.perf_counter() - t_phase
    after = cache_stats()
    stats.store_hits = after.get("hits", 0) - before.get("hits", 0)
    stats.store_misses = after.get("misses", 0) - before.get("misses", 0)
    return stats


def run_loadgen(requests: int = 40, seed: int = 0,
                mix: str = DEFAULT_MIX, scale: str = "test",
                benchmarks: Optional[Sequence[str]] = None,
                models: Optional[Sequence[str]] = None) -> LoadgenReport:
    """Replay one seeded stream cold then warm; return both phases."""
    from repro.models.cache import clear_compile_cache

    stream = build_stream(requests, seed, mix, benchmarks=benchmarks,
                          models=models)
    clear_compile_cache()
    cold = _replay("cold", stream, scale)
    warm = _replay("warm", stream, scale)
    return LoadgenReport(requests=requests, seed=seed, mix=mix, scale=scale,
                         cold=cold, warm=warm)

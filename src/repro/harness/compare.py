"""Model-vs-model comparison explainer.

Figure 1 says *that* OpenMPC beats PGI on CG; this tool says *why*:
for one benchmark and two models it diffs region coverage, the
transformations each compiler applied, every kernel's access-pattern
mix and priced time components, and the transfer plans.  This is the
kind of insight loop the paper's tunability/debuggability discussion
(Sections VI-C/VI-D) asks the models themselves to support.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.benchmarks.base import Benchmark
from repro.gpusim.device import TESLA_M2090, DeviceSpec
from repro.gpusim.timing import price_kernel
from repro.models.base import CompiledProgram


@dataclass
class KernelExplanation:
    """One kernel's priced behaviour."""

    name: str
    time_s: float
    bound: str
    occupancy: float
    dram_mb: float
    patterns: Mapping[str, float]  # pattern -> weighted access share


@dataclass
class ModelExplanation:
    """One model's compilation of one benchmark."""

    model: str
    translated: list[str] = field(default_factory=list)
    rejected: dict[str, str] = field(default_factory=dict)
    applied: dict[str, list[str]] = field(default_factory=dict)
    kernels: list[KernelExplanation] = field(default_factory=list)
    transfer_plan: str = ""

    @property
    def kernel_time_s(self) -> float:
        return sum(k.time_s for k in self.kernels)


def explain_model(bench: Benchmark, model: str, variant: str = "best",
                  scale: str = "paper",
                  device: DeviceSpec = TESLA_M2090) -> ModelExplanation:
    """Compile one port and price every kernel once."""
    compiled: CompiledProgram = bench.compile(model, variant)
    wl = bench.workload(scale)
    arrays = bench.arrays_for(model, variant, wl)
    extents = {name: list(a.shape) for name, a in arrays.items()}
    bindings = {k: float(x) for k, x in wl.scalars.items()}

    out = ModelExplanation(model=model)
    for name, result in compiled.results.items():
        if not result.translated:
            feature = (result.diagnostics[0].feature
                       if result.diagnostics else "?")
            out.rejected[name] = feature
            continue
        out.translated.append(name)
        if result.applied:
            out.applied[name] = list(result.applied)
        for kernel in result.kernels:
            desc = kernel.describe(bindings, extents)
            timing = price_kernel(desc, device)
            weights: Counter = Counter()
            for ref, count in desc.access.refs:
                weights[ref.pattern.value] += count
            total = sum(weights.values()) or 1.0
            out.kernels.append(KernelExplanation(
                name=kernel.name, time_s=timing.time_s,
                bound=timing.bound, occupancy=timing.occupancy,
                dram_mb=timing.dram_bytes / 1e6,
                patterns={p: w / total for p, w in weights.items()}))
    if compiled.data_regions:
        dr = compiled.data_regions[0]
        out.transfer_plan = (f"data region '{dr.name}': "
                             f"copyin={list(dr.copyin)} "
                             f"copyout={list(dr.copyout)}")
    else:
        out.transfer_plan = "per-invocation transfers (no data region)"
    return out


def render_comparison(bench_name: str, a: ModelExplanation,
                      b: ModelExplanation) -> str:
    """Side-by-side textual report."""
    lines = [f"=== {bench_name}: {a.model} vs {b.model} ===", ""]

    lines.append("coverage:")
    for m in (a, b):
        rej = ", ".join(f"{r} ({f})" for r, f in m.rejected.items()) \
            or "none"
        lines.append(f"  {m.model:<20} translated "
                     f"{len(m.translated)} region(s); rejected: {rej}")
    lines.append("")

    lines.append("transformations applied:")
    regions = sorted(set(a.applied) | set(b.applied))
    if not regions:
        lines.append("  (none reported)")
    for region in regions:
        lines.append(f"  region {region}:")
        for m in (a, b):
            items = m.applied.get(region, ["-"])
            lines.append(f"    {m.model:<20} {'; '.join(items)}")
    lines.append("")

    lines.append("kernels (priced once per launch):")
    header = (f"  {'kernel':<28}{'model':<20}{'time ms':>10}"
              f"{'bound':>9}{'occ':>6}  access mix")
    lines.append(header)
    for m in (a, b):
        for k in m.kernels:
            mix = " ".join(f"{p}:{share * 100:.0f}%"
                           for p, share in sorted(k.patterns.items()))
            lines.append(f"  {k.name:<28}{m.model:<20}"
                         f"{k.time_s * 1e3:>10.3f}{k.bound:>9}"
                         f"{k.occupancy:>6.2f}  {mix}")
    lines.append("")

    lines.append("transfer plans:")
    for m in (a, b):
        lines.append(f"  {m.model:<20} {m.transfer_plan}")
    lines.append("")

    ratio = (a.kernel_time_s / b.kernel_time_s
             if b.kernel_time_s else float("inf"))
    lines.append(f"total kernel time: {a.model} "
                 f"{a.kernel_time_s * 1e3:.2f} ms vs {b.model} "
                 f"{b.kernel_time_s * 1e3:.2f} ms "
                 f"({ratio:.2f}x)")
    return "\n".join(lines)


def compare_models(bench: Benchmark, model_a: str, model_b: str,
                   variant: str = "best", scale: str = "paper") -> str:
    """One-call comparison report for two models on one benchmark."""
    a = explain_model(bench, model_a, variant, scale)
    b = explain_model(bench, model_b, variant, scale)
    return render_comparison(bench.name, a, b)

"""Parallel sharded sweep engine with a deterministic merge.

The full evaluation — Table II coverage/code-size, Figure 1 speedups,
and the profile/baseline sweeps — is a graph of independent **work
units**, one per (benchmark, model) pair (a unit owns every variant of
its pair, so the unit set partitions the port set).  This module shards
that graph across ``N`` worker processes and merges the results into
exactly what the serial sweep produces:

* **self-scheduling shards** — workers steal unit indices from one
  shared task queue, so a slow unit (CFD at paper scale) never idles
  the rest of the pool behind a static partition;
* **compile once, anywhere** — each worker compiles through its own
  process-local :data:`~repro.models.cache.STORE` and ships the delta
  back as a picklable :class:`~repro.models.cache.StoreView` (artifacts
  included), which the parent absorbs; because units partition the port
  set, no port is lowered twice anywhere, and
  :func:`~repro.models.cache.merge_view_stats` proves it (the
  ``duplicates`` list stays empty);
* **deterministic merge** — results are folded in registry order
  (benchmark × model build order), *never* completion order, so any
  ``jobs`` value yields structurally identical results and
  byte-identical JSON rollups;
* **obs merge** — every unit runs under its own tracer; span payloads
  are merged in unit order (:mod:`repro.obs.merge`), keeping counter
  totals independent of the worker count;
* **checkpoint/resume** — each completed unit is journaled (JSONL, one
  pickled envelope per line); re-running an interrupted sweep with the
  same journal executes only the missing shards.

``jobs=1`` callers never reach this module — the CLI and
:func:`repro.harness.runner.run_full_evaluation` keep today's serial
path byte-for-byte.
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import os
import pickle
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.gpusim.device import TESLA_M2090, DeviceSpec
from repro.gpusim.timing import TimingConfig
from repro.models.cache import STORE, StoreView, merge_view_stats
from repro.obs import tracer as obs
from repro.obs.metrics import (MetricsRegistry, MetricsSnapshot, collecting,
                               current_registry)
from repro.obs.tracer import Tracer, tracing

JOURNAL_SCHEMA = 1


class SweepError(RuntimeError):
    """A worker failed (the offending unit and traceback are attached)."""


# ---------------------------------------------------------------------------
# Work units
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkUnit:
    """One shard of a sweep: everything owed for a (bench, model) pair.

    ``flags`` select what an ``eval`` unit computes ("coverage",
    "speedups", "profile"); ``seq`` is the unit's position in the
    registry-order build sequence and is the merge sort key.
    """

    kind: str
    bench: str
    model: str
    variant: str = ""
    flags: tuple[str, ...] = ()
    seq: int = 0

    def key(self) -> tuple:
        """Journal identity — stable across runs, excludes ``seq``."""
        return (self.kind, self.bench, self.model, self.variant,
                tuple(self.flags))

    def label(self) -> str:
        return f"{self.kind}:{self.bench}/{self.model}" + (
            f"[{self.variant}]" if self.variant else "")


def unit_sort_key(unit: WorkUnit) -> tuple:
    """Registry build order — the only order results are merged in."""
    return (unit.seq, unit.kind, unit.bench, unit.model, unit.variant)


@dataclass(frozen=True)
class SweepContext:
    """Per-sweep knobs shipped to every worker (must stay picklable)."""

    scale: str = "paper"
    device: DeviceSpec = TESLA_M2090
    timing: Optional[TimingConfig] = None
    #: ship compiled artifacts back so the parent store is warm
    ship_artifacts: bool = True
    #: run each unit under its own tracer and ship the spans back
    trace: bool = True
    #: JIT mode override for kernel execution (``None`` = leave the
    #: worker's ambient :func:`repro.gpusim.jit.current_mode` alone);
    #: carried explicitly so journal replays and spawn-started workers
    #: see the same engine the parent selected
    jit: Optional[str] = None


@dataclass
class UnitEnvelope:
    """What one executed unit ships back to the parent."""

    unit: WorkUnit
    result: Any
    spans: list[dict] = field(default_factory=list)
    store: StoreView = field(default_factory=StoreView)
    #: metrics recorded while the unit ran (absorbed in unit order);
    #: ``None`` for untraced units and pre-metrics journal entries
    metrics: Optional[MetricsSnapshot] = None


@dataclass
class UnitOutcome:
    """An envelope plus where it came from."""

    unit: WorkUnit
    result: Any
    spans: list[dict]
    store: StoreView
    worker: int = 0
    from_journal: bool = False


# ---------------------------------------------------------------------------
# Unit runners (one per kind; all lazily import their layer)
# ---------------------------------------------------------------------------

UNIT_RUNNERS: dict[str, Callable[[WorkUnit, SweepContext], Any]] = {}


def _unit_runner(kind: str):
    def register(fn):
        UNIT_RUNNERS[kind] = fn
        return fn
    return register


@dataclass
class EvalUnitResult:
    """One (bench, model) pair's contribution to the full evaluation."""

    bench: str
    model: str
    coverage: Any = None       # single-bench CoverageReport
    codesize: Any = None       # single-bench CodeSizeReport
    speedups: Any = None       # BenchmarkSpeedups (all variants)
    profile: Any = None        # RunProfile


@_unit_runner("eval")
def _run_eval_unit(unit: WorkUnit, ctx: SweepContext) -> EvalUnitResult:
    from repro.benchmarks.registry import get_benchmark
    from repro.metrics.codesize import CodeSizeReport
    from repro.metrics.coverage import CoverageReport
    from repro.metrics.speedup import BenchmarkSpeedups
    from repro.models.cache import compile_bench
    from repro.obs.profile import profile_run

    bench = get_benchmark(unit.bench)
    flags = set(unit.flags)
    out = EvalUnitResult(bench=bench.name, model=unit.model)
    if "coverage" in flags:
        port, compiled = compile_bench(bench, unit.model, "best")
        cov = CoverageReport(model=unit.model)
        cov.add(compiled)
        size = CodeSizeReport(model=unit.model)
        size.add_port(bench.program, port)
        out.coverage, out.codesize = cov, size
    if "speedups" in flags:
        record = BenchmarkSpeedups(benchmark=bench.name, model=unit.model)
        for variant in bench.variants(unit.model):
            _, compiled = compile_bench(bench, unit.model, variant)
            outcome = bench.run(unit.model, variant, scale=ctx.scale,
                                execute=False, validate=False,
                                device=ctx.device, timing=ctx.timing,
                                compiled=compiled)
            record.variants.append(outcome.speedup)
        out.speedups = record
    if "profile" in flags:
        out.profile = profile_run(unit.bench, unit.model, scale=ctx.scale,
                                  device=ctx.device, timing=ctx.timing)
    return out


@_unit_runner("lint")
def _run_lint_unit(unit: WorkUnit, ctx: SweepContext):
    from repro.lint.engine import run_lint
    from repro.lint.suite import SuiteRecord
    from repro.models.cache import compile_port

    port, compiled, chosen = compile_port(unit.bench, unit.model,
                                          unit.variant or None)
    report = run_lint(port.program, compiled, device=ctx.device)
    return SuiteRecord(benchmark=unit.bench, model=unit.model,
                       variant=chosen, regions=compiled.regions_total,
                       report=report)


@_unit_runner("xfer")
def _run_xfer_unit(unit: WorkUnit, ctx: SweepContext):
    from repro.dataflow.suite import xfer_port

    return xfer_port(unit.bench, unit.model, unit.variant or None,
                     scale=ctx.scale)


@_unit_runner("locality")
def _run_locality_unit(unit: WorkUnit, ctx: SweepContext):
    from repro.gpusim.locality import locality_port

    return locality_port(unit.bench, unit.model, unit.variant or None,
                         scale=ctx.scale)


@_unit_runner("tv")
def _run_tv_unit(unit: WorkUnit, ctx: SweepContext):
    from repro.tv import validate_port

    return validate_port(unit.bench, unit.model, unit.variant or None)


@_unit_runner("translate")
def _run_translate_unit(unit: WorkUnit, ctx: SweepContext):
    # translate units encode the (source, target) pair as (model,
    # variant) — a unit owns one benchmark × one translation direction
    from repro.translate import translate_pair

    return translate_pair(unit.bench, unit.model, unit.variant)


@_unit_runner("baseline")
def _run_baseline_unit(unit: WorkUnit, ctx: SweepContext):
    from repro.obs.baseline import _entry_from_profile
    from repro.obs.profile import profile_run

    return _entry_from_profile(profile_run(
        unit.bench, unit.model, scale=ctx.scale, device=ctx.device,
        timing=ctx.timing))


@_unit_runner("exec")
def _run_exec_unit(unit: WorkUnit, ctx: SweepContext) -> dict:
    """Functional execution: drives the interpreting executor end to end.

    The selfprof workload includes these so executor interpretation time
    is *measured*, not inferred — eval units run ``execute=False``
    (analytical pricing only) and never touch the interpreter.
    """
    from repro.benchmarks.registry import get_benchmark

    bench = get_benchmark(unit.bench)
    outcome = bench.run(unit.model, unit.variant or "best", scale=ctx.scale,
                        execute=True, validate=False, device=ctx.device,
                        timing=ctx.timing)
    # RunOutcome holds live arrays/programs; ship only a picklable digest
    return {"bench": unit.bench, "model": unit.model,
            "variant": outcome.variant,
            "kernels": outcome.compiled.regions_translated,
            "speedup": round(outcome.speedup.speedup, 4)}


def execute_unit(unit: WorkUnit, ctx: SweepContext) -> UnitEnvelope:
    """Run one unit with store accounting and (optional) span capture."""
    from contextlib import nullcontext

    from repro.gpusim.jit import jit_mode

    runner = UNIT_RUNNERS.get(unit.kind)
    if runner is None:
        raise SweepError(f"unknown work-unit kind {unit.kind!r}; "
                         f"known: {sorted(UNIT_RUNNERS)}")
    engine = jit_mode(ctx.jit) if ctx.jit is not None else nullcontext()
    with engine:
        return _execute_unit_inner(unit, runner, ctx)


def _execute_unit_inner(unit: WorkUnit, runner, ctx: SweepContext,
                        ) -> UnitEnvelope:
    before = STORE.view()
    spans: list[dict] = []
    metrics: Optional[MetricsSnapshot] = None
    if ctx.trace:
        tracer = Tracer()
        registry = MetricsRegistry()
        with tracing(tracer), collecting(registry):
            with tracer.span(unit.label(), "harness.unit",
                             bench=unit.bench, model=unit.model,
                             kind=unit.kind):
                t_unit = time.perf_counter()
                result = runner(unit, ctx)
                registry.inc("sweep_units", labels={"kind": unit.kind},
                             help="work units executed by the sweep engine",
                             deterministic=True)
                registry.observe("sweep_unit_seconds",
                                 time.perf_counter() - t_unit,
                                 labels={"kind": unit.kind},
                                 help="wall-clock per work unit")
        spans = [sp.to_dict() for sp in tracer.spans]
        metrics = registry.snapshot()
    else:
        result = runner(unit, ctx)
    delta = STORE.delta_view(before, include_artifacts=ctx.ship_artifacts)
    return UnitEnvelope(unit=unit, result=result, spans=spans, store=delta,
                        metrics=metrics)


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------

def _journal_key(unit: WorkUnit) -> list:
    kind, bench, model, variant, flags = unit.key()
    return [kind, bench, model, variant, list(flags)]


def load_journal(path: Optional[str],
                 units: Sequence[WorkUnit]) -> dict[tuple, UnitEnvelope]:
    """Completed envelopes from a previous (interrupted) sweep.

    Unknown or corrupt lines (e.g. a write cut off mid-crash) are
    skipped — resume is best-effort, re-executing is always safe.
    """
    if not path or not os.path.exists(path):
        return {}
    wanted = {unit.key() for unit in units}
    done: dict[tuple, UnitEnvelope] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                if rec.get("schema") != JOURNAL_SCHEMA:
                    continue
                kind, bench, model, variant, flags = rec["key"]
                key = (kind, bench, model, variant, tuple(flags))
                if key not in wanted:
                    continue
                env = pickle.loads(base64.b64decode(rec["blob"]))
            except Exception:
                continue
            done[key] = env
    return done


def append_journal(path: Optional[str], envelope: UnitEnvelope) -> None:
    if not path:
        return
    blob = base64.b64encode(pickle.dumps(envelope)).decode("ascii")
    with open(path, "a") as handle:
        handle.write(json.dumps({"schema": JOURNAL_SCHEMA,
                                 "key": _journal_key(envelope.unit),
                                 "blob": blob}) + "\n")
        handle.flush()


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

@dataclass
class SweepStats:
    """Shard-balance and artifact-store accounting for one sweep."""

    jobs: int
    units_total: int
    units_executed: int = 0
    units_from_journal: int = 0
    #: worker id → units completed (the shard balance)
    per_worker: dict[int, int] = field(default_factory=dict)
    #: worker id → seconds spent executing units / waiting on the queue
    per_worker_busy: dict[int, float] = field(default_factory=dict)
    per_worker_wait: dict[int, float] = field(default_factory=dict)
    store: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def busy_s(self) -> float:
        return sum(self.per_worker_busy.values())

    @property
    def wait_s(self) -> float:
        return sum(self.per_worker_wait.values())

    def utilization(self) -> float:
        """Busy fraction of the pool's total wall-clock capacity."""
        capacity = self.jobs * self.elapsed_s
        return min(1.0, self.busy_s / capacity) if capacity > 0 else 0.0

    def shard_summary(self) -> str:
        loads = "/".join(str(self.per_worker[w])
                         for w in sorted(self.per_worker)) or "0"
        line = (f"shards: {self.jobs} worker(s) — {loads} units"
                f" ({self.units_executed} executed")
        if self.units_from_journal:
            line += f", {self.units_from_journal} resumed from journal"
        return line + ")"

    def store_summary(self) -> str:
        s = self.store
        dup = len(s.get("duplicates", ()))
        return (f"artifact store: {s.get('entries', 0)} compilations for "
                f"{s.get('hits', 0) + s.get('misses', 0)} requests "
                f"({s.get('hits', 0)} hits, {s.get('misses', 0)} misses, "
                f"{dup} duplicate lowerings)")

    def to_dict(self) -> dict:
        return {"jobs": self.jobs, "units_total": self.units_total,
                "units_executed": self.units_executed,
                "units_from_journal": self.units_from_journal,
                "per_worker": {str(k): v
                               for k, v in sorted(self.per_worker.items())},
                "per_worker_busy_s": {
                    str(k): round(v, 6)
                    for k, v in sorted(self.per_worker_busy.items())},
                "per_worker_wait_s": {
                    str(k): round(v, 6)
                    for k, v in sorted(self.per_worker_wait.items())},
                "utilization": round(self.utilization(), 4),
                "store": {**{k: v for k, v in self.store.items()
                             if k != "duplicates"},
                          "duplicates": len(self.store.get("duplicates",
                                                           ()))},
                "elapsed_s": self.elapsed_s}


@dataclass
class SweepResult:
    """Everything a sweep produced, already in registry order."""

    outcomes: list[UnitOutcome]
    stats: SweepStats

    def results(self) -> list[Any]:
        return [o.result for o in self.outcomes]

    def span_payloads(self) -> list[list[dict]]:
        return [o.spans for o in self.outcomes]


def _worker_main(worker_id: int, units: Sequence[WorkUnit],
                 ctx: SweepContext, task_q, result_q) -> None:
    """Worker loop: steal unit indices until the sentinel arrives.

    Every result carries the worker's queue-wait and busy time for that
    unit, so the parent can report pool utilization (``selfprof``)
    without clock-synchronizing across processes.
    """
    while True:
        t_wait = time.perf_counter()
        idx = task_q.get()
        wait_s = time.perf_counter() - t_wait
        if idx is None:
            break
        try:
            t_busy = time.perf_counter()
            envelope = execute_unit(units[idx], ctx)
            busy_s = time.perf_counter() - t_busy
            result_q.put((worker_id, idx, "ok", envelope, busy_s, wait_s))
        except BaseException:
            result_q.put((worker_id, idx, "error", traceback.format_exc(),
                          0.0, wait_s))
            break


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_sweep(units: Sequence[WorkUnit], jobs: int = 1,
              context: Optional[SweepContext] = None,
              journal: Optional[str] = None,
              timeout_s: float = 3600.0) -> SweepResult:
    """Execute every unit and merge outcomes in registry order.

    ``jobs <= 1`` (or a single pending unit) runs in-process through the
    exact same unit runners; ``jobs > 1`` shards across a process pool.
    With ``journal``, completed units from a previous run are reused and
    fresh completions are appended as they arrive.
    """
    t0 = time.perf_counter()
    ctx = context or SweepContext()
    ordered = sorted(units, key=unit_sort_key)
    journaled = load_journal(journal, ordered)
    pending = [i for i, u in enumerate(ordered)
               if u.key() not in journaled]
    stats = SweepStats(jobs=max(1, jobs), units_total=len(ordered),
                       units_from_journal=len(ordered) - len(pending))
    envelopes: dict[int, UnitEnvelope] = {}
    workers_of: dict[int, int] = {}

    if jobs <= 1 or len(pending) <= 1:
        stats.jobs = 1
        for idx in pending:
            t_busy = time.perf_counter()
            envelope = execute_unit(ordered[idx], ctx)
            stats.per_worker_busy[0] = stats.per_worker_busy.get(0, 0.0) \
                + (time.perf_counter() - t_busy)
            append_journal(journal, envelope)
            envelopes[idx] = envelope
            workers_of[idx] = 0
    else:
        n = min(jobs, len(pending))
        stats.jobs = n
        mp = _pool_context()
        task_q = mp.Queue()
        result_q = mp.Queue()
        for idx in pending:
            task_q.put(idx)
        for _ in range(n):
            task_q.put(None)
        procs = [mp.Process(target=_worker_main,
                            args=(wid, ordered, ctx, task_q, result_q),
                            daemon=True)
                 for wid in range(n)]
        for p in procs:
            p.start()
        failure: Optional[tuple[WorkUnit, str]] = None
        deadline = time.monotonic() + timeout_s
        try:
            remaining = len(pending)
            while remaining and failure is None:
                try:
                    wid, idx, status, payload, busy_s, wait_s = \
                        result_q.get(timeout=5.0)
                except queue_mod.Empty:
                    if time.monotonic() > deadline:
                        failure = (ordered[pending[0]],
                                   f"sweep timed out after {timeout_s}s")
                        break
                    if not any(p.is_alive() for p in procs):
                        failure = (ordered[pending[0]],
                                   "all workers exited before finishing "
                                   "the sweep")
                        break
                    continue
                remaining -= 1
                stats.per_worker_busy[wid] = \
                    stats.per_worker_busy.get(wid, 0.0) + busy_s
                stats.per_worker_wait[wid] = \
                    stats.per_worker_wait.get(wid, 0.0) + wait_s
                if status == "ok":
                    append_journal(journal, payload)
                    envelopes[idx] = payload
                    workers_of[idx] = wid
                else:
                    failure = (ordered[idx], payload)
        finally:
            for p in procs:
                if failure is not None and p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=30.0)
        if failure is not None:
            unit, detail = failure
            raise SweepError(
                f"work unit {unit.label()} failed in a worker:\n{detail}")

    # fold journal entries back in (worker id -1 marks "not run now");
    # metrics snapshots absorb into the ambient registry in unit order,
    # the same deterministic fold the store and spans get
    registry = current_registry()
    with obs.span("sweep.merge", "harness.merge", units=len(ordered)):
        outcomes: list[UnitOutcome] = []
        views: list[StoreView] = []
        for idx, unit in enumerate(ordered):
            if idx in envelopes:
                env = envelopes[idx]
                outcome = UnitOutcome(unit=unit, result=env.result,
                                      spans=env.spans, store=env.store,
                                      worker=workers_of.get(idx, 0))
            else:
                env = journaled[unit.key()]
                outcome = UnitOutcome(unit=unit, result=env.result,
                                      spans=env.spans, store=env.store,
                                      worker=-1, from_journal=True)
            outcomes.append(outcome)
            views.append(env.store)
            if ctx.ship_artifacts:
                STORE.absorb(env.store)
            snap = getattr(env, "metrics", None)  # pre-metrics journals
            if registry is not None and snap is not None:
                registry.absorb(snap)

        stats.units_executed = len(envelopes)
        for idx, wid in workers_of.items():
            stats.per_worker[wid] = stats.per_worker.get(wid, 0) + 1
        stats.store = merge_view_stats(views)
    stats.elapsed_s = time.perf_counter() - t0
    if registry is not None:
        store = stats.store
        registry.set_gauge("sweep_workers", stats.jobs,
                           help="worker processes in the last sweep")
        registry.inc("store_hits", store.get("hits", 0),
                     help="artifact-store cache hits", deterministic=True)
        registry.inc("store_misses", store.get("misses", 0),
                     help="artifact-store cache misses", deterministic=True)
    return SweepResult(outcomes=outcomes, stats=stats)


# ---------------------------------------------------------------------------
# Unit builders + mergers for the evaluation sweeps
# ---------------------------------------------------------------------------

def pair_units(kind: str,
               pairs: Iterable[tuple[str, str]],
               variant: str = "") -> list[WorkUnit]:
    """Units for an already-ordered (bench, model) pair list."""
    return [WorkUnit(kind=kind, bench=bench, model=model, variant=variant,
                     seq=seq)
            for seq, (bench, model) in enumerate(pairs)]


def evaluation_units(benchmarks: Optional[Sequence[str]] = None,
                     table2_models: Optional[Sequence[str]] = None,
                     figure1_models: Optional[Sequence[str]] = None,
                     *, coverage: bool = True, speedups: bool = True,
                     profiles: bool = False) -> list[WorkUnit]:
    """The (bench, model) work-unit graph of the full evaluation.

    Unit order is the registry order the serial sweeps iterate in:
    benchmarks in Figure 1 x-axis order, models in Table II column
    order with the hand-written baseline appended.
    """
    from repro.benchmarks.registry import BENCHMARK_ORDER
    from repro.harness.runner import FIGURE1_MODELS, TABLE2_MODELS

    benches = list(benchmarks) if benchmarks is not None \
        else list(BENCHMARK_ORDER)
    t2 = list(table2_models if table2_models is not None
              else TABLE2_MODELS) if coverage else []
    f1 = list(figure1_models if figure1_models is not None
              else FIGURE1_MODELS) if (speedups or profiles) else []
    model_order = t2 + [m for m in f1 if m not in t2]
    units: list[WorkUnit] = []
    for bench in benches:
        for model in model_order:
            flags: list[str] = []
            if coverage and model in t2:
                flags.append("coverage")
            if speedups and model in f1:
                flags.append("speedups")
            if profiles and model in f1:
                flags.append("profile")
            if flags:
                units.append(WorkUnit(kind="eval", bench=bench, model=model,
                                      flags=tuple(flags), seq=len(units)))
    return units


def selfprof_units(benchmarks: Optional[Sequence[str]] = None,
                   ) -> list[WorkUnit]:
    """A stratified workload for harness self-profiling.

    Every (bench, model) pair appears in exactly **one** unit — the
    partition invariant the deterministic metrics export rests on (a
    pair compiled by two units would hit the artifact cache under
    ``--jobs 1`` but recompile on a cold worker store under
    ``--jobs 4``, making pass-run counts scheduling-dependent).  Unit
    kinds are round-robined across pairs so every harness phase shows
    up in the trace: compile (all kinds), analyze (lint/tv/xfer/
    locality), execute (exec units drive the interpreting executor),
    simulate (eval profiles), merge and harness (the engine itself).
    """
    from repro.benchmarks.registry import BENCHMARK_ORDER
    from repro.harness.runner import FIGURE1_MODELS, TABLE2_MODELS

    benches = list(benchmarks) if benchmarks is not None \
        else list(BENCHMARK_ORDER)
    model_order = list(TABLE2_MODELS) + [m for m in FIGURE1_MODELS
                                         if m not in TABLE2_MODELS]
    kinds = ("eval", "lint", "tv", "xfer", "locality", "exec")
    units: list[WorkUnit] = []
    rr = 0
    for bench in benches:
        for model in model_order:
            directive = model in TABLE2_MODELS
            fig1 = model in FIGURE1_MODELS
            kind = "eval"
            for probe in range(len(kinds)):
                kind = kinds[(rr + probe) % len(kinds)]
                if kind in ("lint", "xfer") and not directive:
                    continue          # those suites only cover directives
                if kind == "exec" and not fig1:
                    continue          # exec needs a runnable Figure 1 port
                break
            rr += 1
            if kind == "eval":
                flags: list[str] = []
                if directive:
                    flags.append("coverage")
                if fig1:
                    flags.extend(["speedups", "profile"])
                units.append(WorkUnit(kind="eval", bench=bench, model=model,
                                      flags=tuple(flags), seq=len(units)))
            else:
                units.append(WorkUnit(kind=kind, bench=bench, model=model,
                                      seq=len(units)))
    return units


def merge_evaluation(outcomes: Sequence[UnitOutcome]):
    """Fold eval-unit outcomes into ``(EvaluationResults, profiles)``.

    Outcomes must already be in registry order (``run_sweep`` guarantees
    it); the fold then reproduces the serial sweep's aggregation order
    exactly — model-major for Table II, benchmark-major for Figure 1.
    """
    from repro.harness.runner import EvaluationResults
    from repro.metrics.codesize import CodeSizeReport
    from repro.metrics.coverage import CoverageReport

    results = EvaluationResults()
    model_order: list[str] = []
    for o in outcomes:
        if o.result.coverage is not None and o.unit.model not in model_order:
            model_order.append(o.unit.model)
    for model in model_order:
        cov = CoverageReport(model=model)
        size = CodeSizeReport(model=model)
        for o in outcomes:
            if o.unit.model != model or o.result.coverage is None:
                continue
            piece = o.result.coverage
            cov.translated += piece.translated
            cov.total += piece.total
            cov.per_program.update(piece.per_program)
            cov.failures.extend(piece.failures)
            size.entries.extend(o.result.codesize.entries)
        results.coverage[model] = cov
        results.codesize[model] = size
    profiles = []
    for o in outcomes:
        if o.result.speedups is not None:
            results.speedups.setdefault(o.unit.bench, {})[o.unit.model] = \
                o.result.speedups
        if o.result.profile is not None:
            profiles.append(o.result.profile)
    return results, profiles


def run_parallel_evaluation(scale: str = "paper", jobs: int = 2,
                            *, profiles: bool = False,
                            journal: Optional[str] = None,
                            device: DeviceSpec = TESLA_M2090,
                            timing: Optional[TimingConfig] = None):
    """The parallel twin of :func:`~repro.harness.runner.run_full_evaluation`.

    Returns ``(EvaluationResults, run_profiles, SweepResult)``.  If an
    ambient tracer is installed, the merged per-unit spans are replayed
    into it in unit order, so counter totals match a traced serial run.
    """
    from repro.obs.tracer import current_tracer

    units = evaluation_units(coverage=True, speedups=True,
                             profiles=profiles)
    sweep = run_sweep(units, jobs=jobs, journal=journal,
                      context=SweepContext(scale=scale, device=device,
                                           timing=timing))
    results, run_profiles = merge_evaluation(sweep.outcomes)
    tracer = current_tracer()
    if tracer is not None:
        for payload in sweep.span_payloads():
            tracer.absorb_spans(payload)
    return results, run_profiles, sweep

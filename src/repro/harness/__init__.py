"""Evaluation harness: sweeps, table/figure rendering, CLI."""

from repro.harness.compare import (ModelExplanation, compare_models,
                                   explain_model)
from repro.harness.sensitivity import (SensitivityReport,
                                       scaled_device, sensitivity_sweep)
from repro.harness.report import (render_figure1, render_figure1_csv,
                                  render_table2)
from repro.harness.runner import (FIGURE1_MODELS, TABLE2_MODELS,
                                  EvaluationResults,
                                  run_coverage_and_codesize,
                                  run_full_evaluation, run_speedups)
from repro.harness.validate import (ValidationMatrix,
                                    validate_suite)
from repro.harness.tuner import (DEFAULT_BLOCK_SIZES, TunePoint,
                                 TuneResult, tune_benchmark, tune_kernel)

__all__ = [
    "EvaluationResults", "run_coverage_and_codesize", "run_speedups",
    "run_full_evaluation", "FIGURE1_MODELS", "TABLE2_MODELS",
    "render_table2", "render_figure1", "render_figure1_csv",
    "tune_kernel", "tune_benchmark", "TuneResult", "TunePoint",
    "DEFAULT_BLOCK_SIZES",
    "compare_models", "explain_model", "ModelExplanation",
    "sensitivity_sweep", "scaled_device", "SensitivityReport",
    "validate_suite", "ValidationMatrix",
]

"""Evaluation runner: sweeps benchmark × model × variant.

Produces the raw material for Table II and Figure 1.  Timing sweeps run
at paper scale with functional execution off (the analytical model only
needs shapes); coverage/code-size come straight from compilation.

Compilation goes through the shared artifact store
(:mod:`repro.models.cache`), so a full evaluation lowers each registry
port once even though the coverage, code-size, and speedup sweeps all
visit it; benchmark instances that are not the registry's (test
subclasses) are content-addressed by the store itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.benchmarks.base import Benchmark
from repro.benchmarks.registry import iter_suite
from repro.gpusim.device import TESLA_M2090, DeviceSpec
from repro.gpusim.timing import TimingConfig
from repro.metrics.codesize import CodeSizeReport
from repro.metrics.coverage import CoverageReport
from repro.metrics.speedup import BenchmarkSpeedups
from repro.models import DIRECTIVE_MODELS
from repro.models.cache import compile_bench
from repro.obs import tracer as obs

#: Figure 1's model set (R-Stream excluded, as in the paper, for its
#: low coverage; its coverage still appears in Table II)
FIGURE1_MODELS: tuple[str, ...] = (
    "PGI Accelerator", "OpenACC", "HMPP", "OpenMPC", "Hand-Written CUDA",
)

TABLE2_MODELS: tuple[str, ...] = DIRECTIVE_MODELS


@dataclass
class EvaluationResults:
    """Everything a full sweep produced."""

    coverage: dict[str, CoverageReport] = field(default_factory=dict)
    codesize: dict[str, CodeSizeReport] = field(default_factory=dict)
    #: speedups[benchmark][model]
    speedups: dict[str, dict[str, BenchmarkSpeedups]] = field(
        default_factory=dict)


def run_coverage_and_codesize(
        benchmarks: Optional[Sequence[Benchmark]] = None,
) -> EvaluationResults:
    """Compile every port; aggregate Table II."""
    results = EvaluationResults()
    benches = list(benchmarks) if benchmarks is not None else list(iter_suite())
    for model in TABLE2_MODELS:
        cov = CoverageReport(model=model)
        size = CodeSizeReport(model=model)
        for bench in benches:
            port, compiled = compile_bench(bench, model, "best")
            cov.add(compiled)
            size.add_port(bench.program, port)
        results.coverage[model] = cov
        results.codesize[model] = size
    return results


def run_speedups(benchmarks: Optional[Sequence[Benchmark]] = None,
                 models: Sequence[str] = FIGURE1_MODELS,
                 scale: str = "paper",
                 device: DeviceSpec = TESLA_M2090,
                 timing: Optional[TimingConfig] = None,
                 ) -> dict[str, dict[str, BenchmarkSpeedups]]:
    """Price every (benchmark, model, variant); returns Figure 1 data."""
    out: dict[str, dict[str, BenchmarkSpeedups]] = {}
    benches = list(benchmarks) if benchmarks is not None else list(iter_suite())
    for bench in benches:
        with obs.span(bench.name, "harness.bench"):
            per_model: dict[str, BenchmarkSpeedups] = {}
            for model in models:
                record = BenchmarkSpeedups(benchmark=bench.name, model=model)
                for variant in bench.variants(model):
                    _, compiled = compile_bench(bench, model, variant)
                    outcome = bench.run(model, variant, scale=scale,
                                        execute=False, validate=False,
                                        device=device, timing=timing,
                                        compiled=compiled)
                    record.variants.append(outcome.speedup)
                per_model[model] = record
            out[bench.name] = per_model
    return out


def run_full_evaluation(scale: str = "paper",
                        jobs: int = 1) -> EvaluationResults:
    """Coverage + code size + speedups over the whole suite.

    ``jobs=1`` is the serial path; ``jobs>1`` shards the (benchmark,
    model) work-unit graph across a process pool
    (:mod:`repro.harness.parallel`) and merges deterministically — the
    results are structurally identical for any ``jobs`` value.

    The suite is materialized once and shared by both sweeps, so the
    coverage/code-size pass and the speedup pass see the *same*
    benchmark instances (and therefore the same artifact-store fast
    keys).
    """
    if jobs > 1:
        from repro.harness.parallel import run_parallel_evaluation
        results, _, _ = run_parallel_evaluation(scale=scale, jobs=jobs)
        return results
    benches = list(iter_suite())
    results = run_coverage_and_codesize(benches)
    results.speedups = run_speedups(benches, scale=scale)
    return results

"""The machine-readable ``all`` rollup (``repro-harness all --json``).

One JSON document for the whole evaluation, split into two sections:

* ``results`` — coverage, code size, speedups, and per-kernel profiles.
  Everything here is a pure function of the deterministic simulator, so
  the section is **byte-identical for any ``--jobs`` value** (CI diffs
  the ``--jobs 4`` rollup against ``--jobs 1``);
* ``meta`` — host/timing metadata that legitimately varies run to run:
  wall-clock, worker count, shard balance, artifact-store hit/miss
  stats, journal reuse.

Serialize with ``render_rollup`` (sorted keys, fixed indentation) so
equal documents are equal byte strings.
"""

from __future__ import annotations

import json
import math
from typing import Any, Mapping, Optional, Sequence

from repro.harness.runner import EvaluationResults
from repro.obs.profile import RunProfile

ROLLUP_SCHEMA = 1


def _finite(value: float) -> Optional[float]:
    """JSON has no Infinity/NaN; map them to ``None`` explicitly."""
    return value if math.isfinite(value) else None


def _speedup_entry(record) -> dict:
    return {
        "variants": [
            {"variant": r.variant,
             "speedup": _finite(r.speedup),
             "cpu_time_s": r.cpu_time_s,
             "gpu_time_s": r.gpu_time_s,
             "kernel_time_s": r.kernel_time_s,
             "transfer_time_s": r.transfer_time_s,
             "host_fallback_s": r.host_fallback_s}
            for r in record.variants],
        "primary_speedup": _finite(record.primary.speedup),
        "best_speedup": _finite(record.best.speedup),
        "tuning_variation": _finite(record.tuning_variation),
    }


def build_rollup(results: EvaluationResults,
                 profiles: Sequence[RunProfile],
                 meta: Optional[Mapping[str, Any]] = None) -> dict:
    """Assemble the rollup document from merged sweep results."""
    coverage = {
        model: {"translated": cov.translated, "total": cov.total,
                "percent": cov.percent,
                "per_program": {name: list(pair)
                                for name, pair in cov.per_program.items()},
                "failures": [list(f) for f in cov.failures]}
        for model, cov in results.coverage.items()}
    codesize = {
        model: {"average_percent": rep.average_percent,
                "entries": [{"program": e.program,
                             "baseline_lines": e.baseline_lines,
                             "directive_lines": e.directive_lines,
                             "restructured_lines": e.restructured_lines,
                             "increase_percent": e.increase_percent}
                            for e in rep.entries]}
        for model, rep in results.codesize.items()}
    speedups = {
        bench: {model: _speedup_entry(record)
                for model, record in per_model.items()}
        for bench, per_model in results.speedups.items()}
    return {
        "schema": ROLLUP_SCHEMA,
        "meta": dict(meta or {}),
        "results": {
            "coverage": coverage,
            "codesize": codesize,
            "speedups": speedups,
            "profiles": [p.to_dict() for p in profiles],
        },
    }


def timing_meta(attribution, sweep_stats=None) -> dict:
    """The ``meta.timing`` block: selfprof per-phase wall-clock.

    Timing legitimately varies run to run, so this lives in ``meta`` —
    never in ``results`` — keeping the jobs-invariance diff clean.
    ``attribution`` is an :class:`repro.obs.selfprof.Attribution`;
    ``sweep_stats`` (parallel runs) adds pool utilization.
    """
    out = {"wall_s": round(attribution.wall_s, 6),
           "work_s": round(attribution.work_s, 6),
           "coverage": round(attribution.coverage, 6),
           "phases": attribution.phase_seconds()}
    if sweep_stats is not None:
        out["utilization"] = round(sweep_stats.utilization(), 4)
        out["worker_busy_s"] = round(sweep_stats.busy_s, 6)
        out["worker_wait_s"] = round(sweep_stats.wait_s, 6)
    return out


def render_rollup(doc: Mapping[str, Any]) -> str:
    """Canonical serialization: sorted keys, two-space indent."""
    return json.dumps(doc, indent=2, sort_keys=True, allow_nan=False)

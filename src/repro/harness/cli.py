"""Command-line entry point: ``repro-harness`` / ``python -m repro.harness``.

Subcommands regenerate the paper's evaluation artifacts:

* ``table1`` — the feature matrix;
* ``table2`` — coverage + code-size increase over the 13-benchmark suite;
* ``figure1`` — per-benchmark speedups for every model (text bars/CSV);
* ``run BENCH MODEL`` — one functional run with validation and a trace;
* ``lint [BENCH MODEL]`` — the directive verifier (``--all`` for the
  whole suite, ``--format json|sarif|github`` for machine-readable
  output, code scanning, or workflow annotations, ``--fail-on`` to
  gate CI);
* ``xfer [BENCH MODEL]`` — the whole-program transfer coherence
  analysis: a dataflow verdict per transfer (``--all`` for the
  per-model rollup; exits 2 on any COH stale-read error, ``--fail-on``
  gates the remaining findings);
* ``locality [BENCH MODEL]`` — the cache-locality suite: replayed
  L1/L2 miss ratios and MAP locality metrics next to the static reuse
  analyzer's predictions (``--all`` for the per-model rollup,
  ``--fail-on`` gates on the CACHE lint family);
* ``tv [BENCH MODEL]`` — the translation validator: equivalence
  certificates per lowered region (``--all`` for the suite matrix;
  exits 1 on any REFUTED certificate, ``--fail-on warning`` also
  gates UNKNOWN);
* ``translate [BENCH SRC DST]`` — the cross-model directive
  translator: rewrite one model's port for another through the
  directive IR, compile it with the target's own pipeline, and certify
  it against the source program (``--all`` for the shipped pair matrix;
  exits 1 on any REFUTED certificate, ``--fail-on warning`` also gates
  dropped clauses and UNKNOWN certificates);
* ``profile [BENCH MODEL]`` — per-kernel simulated counters with
  bottleneck attribution (``--all`` sweeps the Figure-1 matrix;
  ``--jsonl``/``--chrome`` write the trace artifacts);
* ``passes [BENCH MODEL]`` — the pass-pipeline report: per-pass state
  diffs and, for untranslated regions, which pass rejected them
  (``--all`` for the one-line-per-region suite smoke);
* ``baseline record|check`` — the perf-regression gate over the
  committed baseline (``check`` exits 2 on regression/drift);
* ``selfprof [BENCH MODEL]`` — the harness *self*-profile: wall-clock
  attribution per phase (compile/analyze/execute/simulate/merge) over
  the span tree, worker utilization, ``--flamegraph`` collapsed-stack
  export, ``--metrics``/``--openmetrics`` registry export
  (``--deterministic`` restricts to the jobs-invariant families);
* ``loadgen`` — replay a seeded synthetic compile/run/exec request
  stream against a cold then warm ArtifactStore, reporting throughput,
  exact p50/p99 latency, and store hit rates (``--smoke`` gates CI on
  a nonzero warm hit rate);
* ``all`` — everything (the EXPERIMENTS.md payload); ``--json`` emits
  the machine-readable rollup, ``--journal`` checkpoints the sharded
  sweep for resume.

Every sweep subcommand takes ``--jobs N`` (default 1 = the serial
path).  ``N > 1`` shards the (benchmark, model) work-unit graph across
worker processes (:mod:`repro.harness.parallel`) and merges results in
registry order — output is independent of the worker count.

Executing subcommands (``run``/``validate``/``profile``/``selfprof``/
``all``) take ``--jit {on,off,verify}`` selecting the kernel execution
engine (:mod:`repro.gpusim.jit`): the JIT tier when the body is
lowerable, interpreter-only, or both-with-byte-identity-checks.
Results are engine-independent by construction — ``verify`` proves it
per launch.

Exit-code contract (pinned by ``tests/test_cli_errors.py``): 0 clean,
1 on gated findings, 2 on usage errors.  Usage errors — unknown
benchmark/model/variant, contradictory flags — are raised as
:class:`UsageError` anywhere in a subcommand and mapped to a stderr
message plus exit 2 in exactly one place (:func:`main`).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.benchmarks.base import ALL_MODELS
from repro.benchmarks.registry import BENCHMARK_ORDER, get_benchmark
from repro.harness.compare import compare_models
from repro.harness.report import (render_figure1, render_figure1_csv,
                                  render_table2)
from repro.harness.runner import (run_coverage_and_codesize, run_speedups)
from repro.harness.validate import validate_suite
from repro.models.features import render_table1


class UsageError(Exception):
    """A CLI usage error: message goes to stderr, process exits 2."""


#: models `run`/`compare` accept: the Figure-1 set plus the post-paper
#: OpenMP-Target compiler (runnable and validated, outside Figure 1)
RUNNABLE_MODELS: tuple[str, ...] = ALL_MODELS + ("OpenMP-Target",)


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep (default 1 = "
                             "the serial path; results are identical for "
                             "any value)")


def _jobs(args: argparse.Namespace) -> int:
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        raise UsageError(f"--jobs must be >= 1 (got {jobs})")
    return jobs


def _add_jit(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jit", default=None, dest="jit",
                        choices=("on", "off", "verify"),
                        help="kernel execution engine: 'on' JIT-compiles "
                             "lowerable bodies to vectorized numpy "
                             "(the default), 'off' always interprets, "
                             "'verify' runs both and fails unless every "
                             "launch agrees byte-for-byte (also settable "
                             "via REPRO_JIT)")


def _apply_jit(args: argparse.Namespace) -> str:
    """Install the requested JIT mode process-wide and return it.

    Both the module knob and ``REPRO_JIT`` are set so worker processes
    (fork *or* spawn) inherit the mode; :class:`SweepContext` carries it
    explicitly as well for journal replays.
    """
    import os

    from repro.gpusim import jit as jit_mod

    mode = getattr(args, "jit", None)
    if mode is not None:
        jit_mod.set_mode(mode)
        os.environ["REPRO_JIT"] = mode
    return jit_mod.current_mode()


def _jit_fallback_notes(registry) -> list[str]:
    """One lint-style line per (kernel, reason) the JIT declined."""
    notes = []
    for labels, series in registry.series_of("jit_fallback"):
        lab = dict(labels)
        notes.append(f"note: jit-fallback: kernel "
                     f"{lab.get('kernel', '?')!r} interpreted "
                     f"{int(series.value)} launch(es) "
                     f"[{lab.get('reason', 'unknown')}]")
    return notes


def _fail_on_gate(fail_on: str | None,
                  items: list[tuple[str, str, str, str]]) -> int:
    """The shared ``--fail-on`` gate for analysis subcommands.

    ``items`` are ``(where, rule, severity, message)`` rows with
    severity one of ``info``/``warning``/``error``.  Prints the rows at
    or above the threshold and returns 1 when any exist, else 0.
    """
    if fail_on is None:
        return 0
    order = {"info": 0, "warning": 1, "error": 2}
    threshold = order[fail_on]
    over = [it for it in items if order.get(it[2], 0) >= threshold]
    if not over:
        return 0
    print(f"\nFindings at or above {fail_on}:")
    for where, rule, sev, msg in over:
        print(f"  {where}: {rule} {sev} {msg}")
    return 1


def _require_port_args(cmd: str, args: argparse.Namespace) -> None:
    """BENCH and MODEL are mandatory for port subcommands without --all."""
    if getattr(args, "all_ports", False):
        return
    if not args.benchmark or not args.model:
        raise UsageError(
            f"{cmd}: BENCH and MODEL are required unless --all is given")


def _resolve_port(cmd: str, fn, *fn_args, **fn_kwargs):
    """Run a port-resolving callable, mapping the KeyErrors the model /
    benchmark / variant lookups raise (argparse cannot pre-validate
    aliases or per-benchmark variants) to :class:`UsageError`."""
    try:
        return fn(*fn_args, **fn_kwargs)
    except KeyError as exc:
        raise UsageError(f"{cmd}: {exc.args[0]}") from exc


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(render_table1())
    return 0


def _parallel_evaluation(jobs: int, *, scale: str = "paper",
                         coverage: bool = False, speedups: bool = False,
                         profiles: bool = False,
                         journal: str | None = None,
                         jit: str | None = None):
    """One sharded sweep covering whatever the subcommand needs.

    Returns ``(EvaluationResults, run_profiles, SweepResult)``; a
    fused unit graph means each port is lowered exactly once even when
    coverage, speedups, and profiles are all requested.
    """
    from repro.harness.parallel import (SweepContext, evaluation_units,
                                        merge_evaluation, run_sweep)

    units = evaluation_units(coverage=coverage, speedups=speedups,
                             profiles=profiles)
    sweep = run_sweep(units, jobs=jobs, journal=journal,
                      context=SweepContext(scale=scale, jit=jit))
    results, run_profiles = merge_evaluation(sweep.outcomes)
    return results, run_profiles, sweep


def _render_table2_text(results) -> None:
    print(render_table2(results))
    failures = []
    for model, cov in results.coverage.items():
        for prog, region, feature in cov.failures:
            failures.append(f"  {model}: {prog}/{region}: {feature}")
    if failures:
        print("\nUntranslated regions:")
        print("\n".join(failures))


def _cmd_table2(args: argparse.Namespace) -> int:
    jobs = _jobs(args)
    if jobs > 1:
        results, _, _ = _parallel_evaluation(jobs, coverage=True)
    else:
        results = run_coverage_and_codesize()
    _render_table2_text(results)
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    jobs = _jobs(args)
    if jobs > 1:
        results, _, _ = _parallel_evaluation(jobs, scale=args.scale,
                                             speedups=True)
        speedups = results.speedups
    else:
        speedups = run_speedups(scale=args.scale)
    if args.csv:
        print(render_figure1_csv(speedups))
    else:
        print(render_figure1(speedups))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry, collecting

    _jobs(args)
    mode = _apply_jit(args)
    bench = _resolve_port("run", get_benchmark, args.benchmark)
    known = _resolve_port("run", bench.variants, args.model)
    if args.variant != "best" and args.variant not in known:
        raise UsageError(f"run: unknown variant {args.variant!r} for "
                         f"{bench.name}/{args.model}; known: {list(known)}")
    registry = MetricsRegistry()
    with collecting(registry):
        outcome = _resolve_port("run", bench.run, args.model, args.variant,
                                scale=args.scale, execute=True)
    print(outcome.speedup.summary())
    jits = sum(int(s.value) for _, s
               in registry.series_of("jit_launch_hits"))
    interp = sum(int(s.value) for _, s
                 in registry.series_of("executor_interpret_launches"))
    if mode == "verify":
        print(f"engine: jit verify — {interp} launch(es), each checked "
              f"byte-for-byte against the JIT")
    else:
        print(f"engine: jit {mode} — {jits} jit launch(es), "
              f"{interp} interpreted")
    for note in _jit_fallback_notes(registry):
        print(f"  {note}")
    if outcome.validated is not None:
        print(f"validation: {'PASS' if outcome.validated else 'FAIL'}")
        for err in outcome.validation_errors:
            print(f"  {err}")
    print()
    print(outcome.executable.rt.profiler.report())
    for name, result in outcome.compiled.results.items():
        status = "ok" if result.translated else "HOST FALLBACK"
        extras = "; ".join(result.applied)
        print(f"  region {name}: {status}"
              + (f" ({extras})" if extras else ""))
    return 0 if outcome.validated is not False else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    _apply_jit(args)
    names = args.benchmarks or None
    matrix = validate_suite(benchmarks=names,
                            elide_transfers=args.elide_transfers)
    print(matrix.render())
    return 0 if matrix.passed else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    bench = get_benchmark(args.benchmark)
    print(compare_models(bench, args.model_a, args.model_b,
                         variant=args.variant, scale=args.scale))
    return 0


def _lint_format(args: argparse.Namespace) -> str:
    """Resolve --format against the legacy --json/--sarif switches."""
    legacy = [name for name, flag in (("--sarif", args.sarif),
                                      ("--json", args.json)) if flag]
    if len(legacy) > 1:
        raise UsageError("lint: --sarif and --json are mutually exclusive")
    if args.format is not None:
        if legacy:
            raise UsageError(f"lint: --format and {legacy[0]} are "
                             "mutually exclusive")
        return args.format
    if args.sarif:
        return "sarif"
    if args.json:
        return "json"
    return "text"


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import Severity, lint_port, lint_suite
    from repro.lint.findings import github_annotations
    from repro.lint.sarif import report_to_sarif, reports_to_sarif
    from repro.metrics.lintstats import lint_density, render_lint_density

    fmt = _lint_format(args)
    threshold = Severity.parse(args.fail_on) if args.fail_on else None
    if args.all_ports:
        records = lint_suite(jobs=_jobs(args))
        if fmt == "sarif":
            # one SARIF run per (benchmark, model) pair, single log
            merged = reports_to_sarif(rec.report for rec in records)
            print(json.dumps(merged, indent=2))
        elif fmt == "json":
            payload = [{"benchmark": rec.benchmark, "model": rec.model,
                        "variant": rec.variant, "regions": rec.regions,
                        "findings": [f.to_dict()
                                     for f in rec.report.sorted()]}
                       for rec in records]
            print(json.dumps(payload, indent=2))
        elif fmt == "github":
            out = github_annotations(*(rec.report for rec in records))
            if out:
                print(out)
        else:
            print(render_lint_density(lint_density(records)))
        if threshold is None:
            return 0
        over = [(rec, f) for rec in records
                for f in rec.report.at_or_above(threshold)]
        if over and fmt == "text":
            print(f"\nFindings at or above {threshold}:")
            for rec, f in over:
                print(f"  {f.rule} {f.severity} {f.location()}: {f.message}")
        return 1 if over else 0
    _require_port_args("lint", args)
    report = _resolve_port("lint", lint_port, args.benchmark, args.model,
                           variant=args.variant)
    if fmt == "sarif":
        print(json.dumps(report_to_sarif(report), indent=2))
    elif fmt == "json":
        print(report.to_json())
    elif fmt == "github":
        out = github_annotations(report)
        if out:
            print(out)
    else:
        header = f"{report.program} / {report.model}"
        print(header)
        print("-" * len(header))
        if not report.findings:
            print("no findings")
        for f in report.sorted():
            print(f"{f.rule} {f.severity} {f.location()}: {f.message}")
    if threshold is not None and report.at_or_above(threshold):
        return 1
    return 0


def _cmd_xfer(args: argparse.Namespace) -> int:
    from repro.dataflow.suite import xfer_port, xfer_suite

    if args.all_ports:
        records = xfer_suite(models=ALL_MODELS, scale=args.scale,
                             jobs=_jobs(args))
    else:
        _require_port_args("xfer", args)
        records = [_resolve_port("xfer", xfer_port, args.benchmark,
                                 args.model, variant=args.variant,
                                 scale=args.scale)]
    if args.json:
        print(json.dumps([rec.to_dict() for rec in records], indent=2))
    elif args.all_ports:
        from repro.metrics.xferstats import render_xfer_rollup, xfer_rollup
        print(render_xfer_rollup(xfer_rollup(records)))
    else:
        rec = records[0]
        analysis = rec.analysis
        header = (f"{rec.benchmark} / {rec.model} ({rec.variant}) — "
                  f"{analysis.node_count} CFG nodes, "
                  f"{analysis.iterations} solver iterations")
        print(header)
        print("-" * len(header))
        for v in analysis.verdicts:
            trips = f" x{v.trips}" if v.trips > 1 else ""
            print(f"{v.verdict:<10} {v.direction} {v.array!r} "
                  f"@ {v.node}{trips} [{v.origin}]")
            print(f"           {v.witness}")
        for p in analysis.problems:
            print(f"{p.rule} [{p.severity}] {p.message}")
        print(f"bytes moved: {analysis.bytes_total()}  "
              f"statically elidable: {analysis.bytes_elidable()}")
    errors = [(rec, p) for rec in records for p in rec.analysis.coh_errors]
    if errors:
        if not args.json:
            print("\nCOH errors (stale reads the state machine proves "
                  "possible):")
            for rec, p in errors:
                print(f"  {rec.benchmark}/{rec.model}: {p.rule} {p.message}")
        # a COH error means the port's transfer discipline itself is
        # unsound, not merely a gated finding — exit 2 like a usage error
        return 2
    return _fail_on_gate(args.fail_on, [
        (f"{rec.benchmark}/{rec.model}", p.rule, p.severity, p.message)
        for rec in records for p in rec.analysis.problems])


def _cmd_locality(args: argparse.Namespace) -> int:
    from repro.gpusim.locality import locality_port, locality_suite

    if args.all_ports:
        records = locality_suite(scale=args.scale, jobs=_jobs(args))
    else:
        _require_port_args("locality", args)
        records = [_resolve_port("locality", locality_port, args.benchmark,
                                 args.model, variant=args.variant,
                                 scale=args.scale)]
    if args.json:
        print(json.dumps([rec.to_dict() for rec in records], indent=2))
    elif args.all_ports:
        from repro.metrics.cachestats import (cache_rollup,
                                              render_cache_rollup)
        print(render_cache_rollup(cache_rollup(records)))
    else:
        rec = records[0]
        header = f"{rec.benchmark} / {rec.model} ({rec.variant})"
        print(header)
        print("-" * len(header))
        for kl in rec.kernels:
            sim, stat = kl.simulated, kl.static
            approx = "" if sim.exact else "  (approximate: indirect)"
            print(f"{kl.region}:{kl.kernel}{approx}")
            print(f"  simulated  L1 {sim.l1.miss_ratio:6.3f}  "
                  f"L2 {sim.l2.miss_ratio:6.3f}  "
                  f"spatial {sim.spatial_locality:.3f}  "
                  f"temporal {sim.temporal_locality:.3f}  "
                  f"shortMRI {sim.short_mri_fraction:.3f}")
            print(f"  static     L1 {stat.l1_miss_ratio:6.3f}  "
                  f"L2 {stat.l2_miss_ratio:6.3f}  "
                  f"({len(stat.pairs)} reuse pairs, "
                  f"{len(stat.working_sets)} loop working sets)")
    if args.fail_on is None:
        return 0
    # the gate reruns only the CACHE family of the verifier over the
    # same (memoized) compilations the locality records came from
    from repro.lint.engine import run_lint
    from repro.models.cache import compile_port
    items: list[tuple[str, str, str, str]] = []
    if args.all_ports:
        pairs = [(b, m, None) for b in BENCHMARK_ORDER for m in ALL_MODELS]
    else:
        pairs = [(args.benchmark, args.model, args.variant)]
    for bench_name, model, variant in pairs:
        port, compiled, _chosen = _resolve_port(
            "locality", compile_port, bench_name, model, variant)
        report = run_lint(port.program, compiled, families=("CACHE",))
        items.extend((f"{bench_name}/{compiled.model}", f.rule,
                      str(f.severity), f.message)
                     for f in report.findings)
    return _fail_on_gate(args.fail_on, items)


def _tv_gate_items(records) -> list[tuple[str, str, str, str]]:
    """``--fail-on`` rows for tv records: UNKNOWN certificates are
    warnings (REFUTED already exits 1 unconditionally)."""
    from repro.tv import CertStatus

    return [(f"{rec.benchmark}/{rec.model}:{c.region}", "TV-UNKNOWN",
             "warning", c.detail)
            for rec in records for c in rec.certificates
            if c.status is CertStatus.UNKNOWN]


def _cmd_tv(args: argparse.Namespace) -> int:
    from repro.metrics.tvstats import render_tv_matrix, tv_matrix
    from repro.tv import CertStatus, validate_port, validate_suite

    if args.all_ports:
        records = validate_suite(jobs=_jobs(args))
        if args.json:
            payload = [{"benchmark": rec.benchmark, "model": rec.model,
                        "variant": rec.variant,
                        "certificates": [c.to_dict()
                                         for c in rec.certificates]}
                       for rec in records]
            print(json.dumps(payload, indent=2))
        else:
            print(render_tv_matrix(tv_matrix(records)))
        refuted = [(rec, c) for rec in records for c in rec.certificates
                   if c.status is CertStatus.REFUTED]
        if refuted and not args.json:
            print("\nREFUTED certificates:")
            for rec, c in refuted:
                print(f"  {rec.benchmark}/{rec.model}:{c.region}")
                print(f"    {c.detail}")
        if refuted:
            return 1
        return _fail_on_gate(args.fail_on, _tv_gate_items(records))
    _require_port_args("tv", args)
    record = _resolve_port("tv", validate_port, args.benchmark, args.model,
                           variant=args.variant)
    if args.json:
        payload = {"benchmark": record.benchmark, "model": record.model,
                   "variant": record.variant,
                   "certificates": [c.to_dict()
                                    for c in record.certificates]}
        print(json.dumps(payload, indent=2))
    else:
        header = f"{record.benchmark} / {record.model} ({record.variant})"
        print(header)
        print("-" * len(header))
        for c in record.certificates:
            print(f"{c.status.value:8s} {c.region}: {c.detail}")
            if c.blocking:
                print(f"         blocked by: {c.blocking}")
    if record.count(CertStatus.REFUTED):
        return 1
    return _fail_on_gate(args.fail_on, _tv_gate_items([record]))


def _cmd_translate(args: argparse.Namespace) -> int:
    from repro.metrics.translatestats import (render_translate_matrix,
                                              translate_matrix)
    from repro.translate import translate_pair, translate_suite
    from repro.tv import CertStatus

    if args.all_ports:
        records = translate_suite(jobs=_jobs(args))
    else:
        if not args.benchmark or not args.src or not args.dst:
            raise UsageError("translate: BENCH SRC DST are required "
                             "unless --all is given")
        records = [_resolve_port("translate", translate_pair,
                                 args.benchmark, args.src, args.dst,
                                 variant=args.variant)]
    if args.json:
        print(json.dumps([rec.to_dict() for rec in records], indent=2))
    else:
        print(render_translate_matrix(translate_matrix(records)))
    refuted = [(rec, c) for rec in records for c in rec.certificates
               if c.status is CertStatus.REFUTED]
    if refuted and not args.json:
        print("\nREFUTED certificates:")
        for rec, c in refuted:
            print(f"  {rec.benchmark}/{rec.src}->{rec.dst}:{c.region}")
            print(f"    {c.detail}")
    if refuted:
        return 1
    items: list[tuple[str, str, str, str]] = []
    for rec in records:
        where = f"{rec.benchmark}/{rec.src}->{rec.dst}"
        items.extend((where, "XLAT-DROP", "warning", note)
                     for note in rec.notes if "dropped" in note)
        items.extend((f"{where}:{c.region}", "XLAT-UNKNOWN", "warning",
                      c.detail)
                     for c in rec.certificates
                     if c.status is CertStatus.UNKNOWN)
    return _fail_on_gate(args.fail_on, items)


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.gpusim.profiler import chrome_trace_document
    from repro.obs.profile import (profile_run, profile_suite,
                                   render_run_profile,
                                   render_suite_profiles)
    from repro.obs.tracer import Tracer, make_manifest, tracing
    from repro.gpusim.device import TESLA_M2090
    from repro.gpusim.timing import TimingConfig

    _require_port_args("profile", args)
    _apply_jit(args)
    if args.all_ports:
        profiles, tracer = profile_suite(scale=args.scale,
                                         jobs=_jobs(args))
    else:
        tracer = Tracer(manifest=make_manifest(
            TESLA_M2090, TimingConfig(), args.scale))
        with tracing(tracer):
            profiles = [_resolve_port("profile", profile_run,
                                      args.benchmark, args.model,
                                      variant=args.variant,
                                      scale=args.scale)]
    if args.json:
        print(json.dumps([p.to_dict() for p in profiles], indent=2))
    elif args.all_ports:
        print(render_suite_profiles(profiles))
    else:
        print(render_run_profile(profiles[0]))
    if args.jsonl:
        tracer.write_jsonl(args.jsonl)
        print(f"wrote {len(tracer.spans)} spans to {args.jsonl}",
              file=sys.stderr)
    if args.chrome:
        with open(args.chrome, "w") as handle:
            json.dump(chrome_trace_document(
                [], extra_events=tracer.chrome_events(pid=1000)), handle)
        print(f"wrote Chrome trace to {args.chrome}", file=sys.stderr)
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    from repro.obs.baseline import (DEFAULT_BASELINE_PATH, check_baseline,
                                    record_baseline)

    path = args.baseline or DEFAULT_BASELINE_PATH
    benchmarks = args.benchmarks or None
    jobs = _jobs(args)
    try:
        if args.action == "record":
            from repro.obs.baseline import DEFAULT_TOLERANCE
            doc = record_baseline(path, benchmarks=benchmarks,
                                  scale=args.scale,
                                  tolerance=args.tolerance
                                  if args.tolerance is not None
                                  else DEFAULT_TOLERANCE,
                                  jobs=jobs)
            n = sum(len(m) for m in doc["entries"].values())
            print(f"recorded {n} entries to {path} "
                  f"(config {doc['manifest']['config_hash']})")
            return 0
        diff = check_baseline(path, tolerance=args.tolerance, jobs=jobs)
        print(diff.render())
        return 2 if diff.failed else 0
    except FileNotFoundError:
        raise UsageError(f"baseline: no baseline at {path!r} — run "
                         f"'repro-harness baseline record' first") from None
    except KeyError as exc:
        raise UsageError(f"baseline: {exc.args[0]}") from exc


def _cmd_passes(args: argparse.Namespace) -> int:
    from repro.models import DIRECTIVE_MODELS
    from repro.models.cache import compile_port
    from repro.pipeline import render_pass_report, render_pass_summary

    if args.all_ports:
        # the suite smoke: one line per region, every Table-II port
        rejected = 0
        for bench_name in BENCHMARK_ORDER:
            for model in DIRECTIVE_MODELS:
                _, compiled, variant = compile_port(bench_name, model)
                print(f"{compiled.program.name} / {model} ({variant}): "
                      f"{compiled.regions_translated}/"
                      f"{compiled.regions_total} regions")
                print(render_pass_summary(compiled))
                rejected += (compiled.regions_total
                             - compiled.regions_translated)
        print(f"\n{rejected} region(s) rejected across the suite "
              "(expected: Table II's uncovered regions)")
        return 0
    _require_port_args("passes", args)
    _, compiled, _ = _resolve_port("passes", compile_port, args.benchmark,
                                   args.model, args.variant)
    print(render_pass_report(compiled))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    import time

    from repro.benchmarks.registry import iter_suite
    from repro.harness.report import render_bottleneck_section
    from repro.harness.rollup import build_rollup, render_rollup, timing_meta
    from repro.models.cache import cache_stats
    from repro.obs.merge import absorb_payloads
    from repro.obs.profile import profile_suite
    from repro.obs.selfprof import attribute_spans
    from repro.obs.tracer import Tracer, tracing

    jobs = _jobs(args)
    jit_mode = _apply_jit(args)
    sweep = None
    tracer = Tracer()
    t_wall = time.perf_counter()
    if jobs > 1:
        with tracing(tracer):   # captures the parent-side sweep.merge span
            results, profiles, sweep = _parallel_evaluation(
                jobs, scale=args.scale, coverage=True, speedups=True,
                profiles=True, journal=args.journal,
                jit=getattr(args, "jit", None))
            absorb_payloads(tracer, sweep.span_payloads(),
                            lanes=[o.worker for o in sweep.outcomes])
    else:
        if args.journal:
            raise UsageError("all: --journal requires --jobs > 1 "
                             "(the serial path does not checkpoint)")
        benches = list(iter_suite())
        with tracing(tracer):
            results = run_coverage_and_codesize(benches)
            results.speedups = run_speedups(benches, scale=args.scale)
            profiles, prof_tracer = profile_suite(scale=args.scale)
        # profile_suite traces into its own tracer; pull its spans in so
        # the attribution covers the profile phase too
        tracer.absorb_spans([sp.to_dict() for sp in prof_tracer.spans])
    attribution = attribute_spans(tracer.spans,
                                  wall_s=time.perf_counter() - t_wall)

    if args.json:
        meta = {"jobs": jobs, "scale": args.scale, "jit": jit_mode,
                "generated_unix": time.time(),
                "timing": timing_meta(
                    attribution,
                    sweep.stats if sweep is not None else None)}
        if sweep is not None:
            meta["sweep"] = sweep.stats.to_dict()
        else:
            meta["store"] = cache_stats()
        print(render_rollup(build_rollup(results, profiles, meta)))
        return 0

    print("Table I")
    print(render_table1())
    print()
    _render_table2_text(results)
    print()
    print(render_figure1(results.speedups))
    print()
    print(render_bottleneck_section(profiles))
    print()
    if sweep is not None:
        print(sweep.stats.store_summary())
        print(sweep.stats.shard_summary())
    else:
        stats = cache_stats()
        print(f"artifact store: {stats['entries']} compilations for "
              f"{stats['hits'] + stats['misses']} requests "
              f"({stats['hits']} hits, {stats['misses']} misses)")
    phases = attribution.phase_seconds()
    breakdown = ", ".join(f"{name} {seconds * 1e3:.0f} ms"
                          for name, seconds in sorted(
                              phases.items(), key=lambda kv: -kv[1])
                          if seconds > 0)
    print(f"self-profile: wall {attribution.wall_s * 1e3:.0f} ms — "
          f"{breakdown} (details: repro-harness selfprof --all)")
    return 0


def _selfprof_pair_units(benchmark: str, model: str):
    """The single-pair selfprof workload: every applicable unit kind.

    (This mixes kinds over one pair, so it exercises every phase; the
    jobs-invariant metrics guarantee applies to ``--all``, whose
    stratified workload keeps the compile-once partition.)
    """
    from repro.harness.parallel import WorkUnit
    from repro.harness.runner import FIGURE1_MODELS, TABLE2_MODELS
    from repro.models import resolve_model

    model = _resolve_port("selfprof", resolve_model, model)
    _resolve_port("selfprof", get_benchmark, benchmark)
    directive = model in TABLE2_MODELS
    fig1 = model in FIGURE1_MODELS
    flags = (("coverage",) if directive else ()) + \
        (("speedups", "profile") if fig1 else ())
    units = [WorkUnit(kind="eval", bench=benchmark, model=model,
                      flags=flags, seq=0)]
    kinds = ["tv", "locality"] + (["lint", "xfer"] if directive else []) \
        + (["exec"] if fig1 else [])
    for kind in kinds:
        units.append(WorkUnit(kind=kind, bench=benchmark, model=model,
                              seq=len(units)))
    return units


def _cmd_selfprof(args: argparse.Namespace) -> int:
    from repro.harness.parallel import (SweepContext, run_sweep,
                                        selfprof_units)
    from repro.obs.flamegraph import write_collapsed
    from repro.obs.merge import absorb_payloads
    from repro.obs.metrics import (MetricsRegistry, collecting,
                                   render_metrics_json)
    from repro.obs.selfprof import attribute_spans, render_attribution
    from repro.obs.tracer import Tracer, tracing

    jobs = _jobs(args)
    _apply_jit(args)
    _require_port_args("selfprof", args)
    if args.all_ports:
        units = selfprof_units()
    else:
        units = _selfprof_pair_units(args.benchmark, args.model)

    registry = MetricsRegistry()
    tracer = Tracer()
    with tracing(tracer), collecting(registry):
        with tracer.span("selfprof.suite", "harness", scale=args.scale,
                         jobs=jobs):
            sweep = run_sweep(units, jobs=jobs,
                              context=SweepContext(
                                  scale=args.scale,
                                  jit=getattr(args, "jit", None)))
            absorb_payloads(tracer, sweep.span_payloads(),
                            parent_id=tracer.spans[0].span_id,
                            lanes=[o.worker for o in sweep.outcomes])

    attribution = attribute_spans(tracer.spans)
    stats = sweep.stats
    if args.flamegraph:
        rows = write_collapsed(args.flamegraph, tracer.spans)
        print(f"wrote {rows} collapsed stacks to {args.flamegraph}",
              file=sys.stderr)
    if args.metrics:
        doc = registry.to_dict(deterministic_only=args.deterministic)
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(render_metrics_json(doc) + "\n")
    if args.openmetrics:
        with open(args.openmetrics, "w", encoding="utf-8") as fh:
            fh.write(registry.to_openmetrics())

    fallback_notes = _jit_fallback_notes(registry)
    if args.json:
        print(json.dumps({"selfprof": attribution.to_dict(),
                          "sweep": stats.to_dict(),
                          "jit_fallbacks": [
                              {"kernel": dict(labels).get("kernel"),
                               "reason": dict(labels).get("reason"),
                               "launches": int(series.value)}
                              for labels, series
                              in registry.series_of("jit_fallback")]},
                         indent=2, sort_keys=True))
    else:
        worker_stats = {
            "workers": stats.jobs,
            "units": f"{stats.units_total} "
                     f"({stats.units_executed} executed)",
            "utilization": f"{stats.utilization():.1%}",
            "busy / wait": f"{stats.busy_s * 1e3:.0f} ms / "
                           f"{stats.wait_s * 1e3:.0f} ms",
        }
        print(render_attribution(attribution, top=args.top,
                                 worker_stats=worker_stats))
        for note in fallback_notes:
            print(note)
    if args.min_coverage is not None \
            and attribution.coverage < args.min_coverage:
        print(f"selfprof: named-phase coverage "
              f"{attribution.coverage:.1%} is below the required "
              f"{args.min_coverage:.1%}", file=sys.stderr)
        return 1
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.harness.loadgen import (DEFAULT_MIX, MixError, parse_mix,
                                       run_loadgen)
    from repro.obs.metrics import MetricsRegistry, collecting

    _jobs(args)
    if args.requests < 1:
        raise UsageError(f"loadgen: --requests must be >= 1 "
                         f"(got {args.requests})")
    mix = args.mix or DEFAULT_MIX
    try:
        parse_mix(mix)
    except MixError as exc:
        raise UsageError(f"loadgen: {exc}") from exc

    registry = MetricsRegistry()
    with collecting(registry):
        report = run_loadgen(requests=args.requests, seed=args.seed,
                             mix=mix, scale=args.scale)
    if args.openmetrics:
        with open(args.openmetrics, "w", encoding="utf-8") as fh:
            fh.write(registry.to_openmetrics())
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.smoke:
        problems = report.smoke_failures()
        if problems:
            for problem in problems:
                print(f"loadgen smoke: {problem}", file=sys.stderr)
            return 1
        print("loadgen smoke: ok (warm hit rate "
              f"{report.warm.hit_rate:.1%})", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the tables and figure of Lee & Vetter, "
                    "SC'12 (directive-based GPU model evaluation).")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="feature matrix").set_defaults(
        func=_cmd_table1)
    p_t2 = sub.add_parser("table2", help="coverage and code-size")
    _add_jobs(p_t2)
    p_t2.set_defaults(func=_cmd_table2)

    p_fig = sub.add_parser("figure1", help="speedup sweep")
    p_fig.add_argument("--scale", default="paper",
                       choices=("test", "paper"))
    p_fig.add_argument("--csv", action="store_true")
    _add_jobs(p_fig)
    p_fig.set_defaults(func=_cmd_figure1)

    p_run = sub.add_parser("run", help="run one benchmark functionally")
    p_run.add_argument("benchmark", choices=BENCHMARK_ORDER)
    p_run.add_argument("model", choices=RUNNABLE_MODELS)
    p_run.add_argument("--variant", default="best")
    p_run.add_argument("--scale", default="test",
                       choices=("test", "paper"))
    # a single run is one work unit; --jobs is accepted (and validated)
    # for interface uniformity with the sweep subcommands
    _add_jobs(p_run)
    _add_jit(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_val = sub.add_parser(
        "validate", help="functional validation sweep (test scale)")
    p_val.add_argument("benchmarks", nargs="*", metavar="BENCH",
                       choices=BENCHMARK_ORDER + ("",) if False
                       else None)
    p_val.add_argument("--elide-transfers", action="store_true",
                       dest="elide_transfers",
                       help="validate the analysis-guided transfer-elision "
                            "flavour of every port")
    _add_jit(p_val)
    p_val.set_defaults(func=_cmd_validate)

    p_cmp = sub.add_parser("compare",
                           help="explain one model-vs-model gap")
    p_cmp.add_argument("benchmark", choices=BENCHMARK_ORDER)
    p_cmp.add_argument("model_a", choices=RUNNABLE_MODELS)
    p_cmp.add_argument("model_b", choices=RUNNABLE_MODELS)
    p_cmp.add_argument("--variant", default="best")
    p_cmp.add_argument("--scale", default="paper",
                       choices=("test", "paper"))
    p_cmp.set_defaults(func=_cmd_compare)

    p_lint = sub.add_parser(
        "lint", help="run the directive verifier over one port or --all")
    p_lint.add_argument("benchmark", nargs="?", default=None,
                        help="benchmark name (e.g. jacobi)")
    p_lint.add_argument("model", nargs="?", default=None,
                        help="model name or alias (e.g. openacc)")
    p_lint.add_argument("--variant", default=None,
                        help="port variant (default: the model's best)")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable findings")
    p_lint.add_argument("--sarif", action="store_true",
                        help="SARIF 2.1.0 output (GitHub code scanning)")
    p_lint.add_argument("--format", default=None,
                        choices=("text", "json", "sarif", "github"),
                        help="output format; 'github' emits "
                             "::error/::warning workflow annotations "
                             "(--json/--sarif remain as aliases)")
    p_lint.add_argument("--all", action="store_true", dest="all_ports",
                        help="lint every benchmark x model pair and print "
                             "the per-model density table")
    p_lint.add_argument("--fail-on", dest="fail_on", default=None,
                        choices=("error", "warning", "info"),
                        help="exit 1 if any finding is at/above "
                             "this severity")
    _add_jobs(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_x = sub.add_parser(
        "xfer", help="whole-program transfer coherence analysis: a "
                     "verdict per transfer for one port, or the per-model "
                     "rollup with --all (exits 2 on any COH error)")
    p_x.add_argument("benchmark", nargs="?", default=None,
                     help="benchmark name (e.g. jacobi)")
    p_x.add_argument("model", nargs="?", default=None,
                     help="model name or alias (e.g. openacc)")
    p_x.add_argument("--variant", default=None,
                     help="port variant (default: the model's best)")
    p_x.add_argument("--scale", default="test",
                     choices=("test", "paper"),
                     help="workload scale used for transfer byte sizes")
    p_x.add_argument("--json", action="store_true",
                     help="machine-readable verdicts with witnesses")
    p_x.add_argument("--all", action="store_true", dest="all_ports",
                     help="analyze every benchmark x model pair and print "
                          "the per-model verdict rollup")
    p_x.add_argument("--fail-on", dest="fail_on", default=None,
                     choices=("error", "warning"),
                     help="exit 1 if any XFER/COH finding is at/above "
                          "this severity (COH errors still exit 2)")
    _add_jobs(p_x)
    p_x.set_defaults(func=_cmd_xfer)

    p_loc = sub.add_parser(
        "locality", help="cache-locality suite: replayed L1/L2 metrics "
                         "side by side with the static reuse analyzer's "
                         "predictions for one port, or the per-model "
                         "rollup with --all")
    p_loc.add_argument("benchmark", nargs="?", default=None,
                       help="benchmark name (e.g. jacobi)")
    p_loc.add_argument("model", nargs="?", default=None,
                       help="model name or alias (e.g. openacc)")
    p_loc.add_argument("--variant", default=None,
                       help="port variant (default: the model's best)")
    p_loc.add_argument("--scale", default="test",
                       choices=("test", "paper"),
                       help="workload scale used for the trace replay")
    p_loc.add_argument("--json", action="store_true",
                       help="machine-readable per-kernel reports")
    p_loc.add_argument("--all", action="store_true", dest="all_ports",
                       help="analyze every benchmark x model pair "
                            "(all six models) and print the per-model "
                            "cache rollup")
    p_loc.add_argument("--fail-on", dest="fail_on", default=None,
                       choices=("error", "warning"),
                       help="exit 1 if the CACHE lint family reports a "
                            "finding at/above this severity")
    _add_jobs(p_loc)
    p_loc.set_defaults(func=_cmd_locality)

    p_tv = sub.add_parser(
        "tv", help="translation validator: equivalence certificates for "
                   "every lowered region")
    p_tv.add_argument("benchmark", nargs="?", default=None,
                      help="benchmark name (e.g. jacobi)")
    p_tv.add_argument("model", nargs="?", default=None,
                      help="model name or alias (e.g. openacc)")
    p_tv.add_argument("--variant", default=None,
                      help="port variant (default: the model's best)")
    p_tv.add_argument("--json", action="store_true",
                      help="machine-readable certificates")
    p_tv.add_argument("--all", action="store_true", dest="all_ports",
                      help="certify every benchmark x model pair and print "
                           "the per-model certificate matrix")
    p_tv.add_argument("--fail-on", dest="fail_on", default=None,
                      choices=("warning", "error"),
                      help="also exit 1 on UNKNOWN certificates "
                           "(REFUTED always exits 1)")
    _add_jobs(p_tv)
    p_tv.set_defaults(func=_cmd_tv)

    p_xl = sub.add_parser(
        "translate", help="cross-model directive translation through the "
                          "neutral IR, tv-certified against the source")
    p_xl.add_argument("benchmark", nargs="?", default=None,
                      help="benchmark name (e.g. jacobi)")
    p_xl.add_argument("src", nargs="?", default=None,
                      help="source model name or alias (e.g. openacc)")
    p_xl.add_argument("dst", nargs="?", default=None,
                      help="target model name or alias (e.g. omp-target)")
    p_xl.add_argument("--variant", default=None,
                      help="source port variant (default: the model's best)")
    p_xl.add_argument("--json", action="store_true",
                      help="machine-readable translation records")
    p_xl.add_argument("--all", action="store_true", dest="all_ports",
                      help="translate every benchmark across the shipped "
                           "pairs and print the per-pair matrix")
    p_xl.add_argument("--fail-on", dest="fail_on", default=None,
                      choices=("warning", "error"),
                      help="also exit 1 on dropped clauses or UNKNOWN "
                           "certificates (REFUTED always exits 1)")
    _add_jobs(p_xl)
    p_xl.set_defaults(func=_cmd_translate)

    p_prof = sub.add_parser(
        "profile", help="per-kernel simulated counters and bottleneck "
                        "attribution for one port or --all")
    p_prof.add_argument("benchmark", nargs="?", default=None,
                        help="benchmark name (e.g. jacobi)")
    p_prof.add_argument("model", nargs="?", default=None,
                        help="model name or alias (e.g. openacc)")
    p_prof.add_argument("--variant", default=None,
                        help="port variant (default: the model's best)")
    p_prof.add_argument("--scale", default="paper",
                        choices=("test", "paper"))
    p_prof.add_argument("--all", action="store_true", dest="all_ports",
                        help="profile every benchmark x Figure-1 model pair")
    p_prof.add_argument("--json", action="store_true",
                        help="machine-readable profiles")
    p_prof.add_argument("--jsonl", default=None, metavar="PATH",
                        help="write the span trace as JSONL")
    p_prof.add_argument("--chrome", default=None, metavar="PATH",
                        help="write a chrome://tracing document")
    _add_jobs(p_prof)
    _add_jit(p_prof)
    p_prof.set_defaults(func=_cmd_profile)

    p_sp = sub.add_parser(
        "selfprof", help="harness self-profile: wall-clock attribution "
                         "per phase, flamegraph + metrics export")
    p_sp.add_argument("benchmark", nargs="?", default=None,
                      help="benchmark name (e.g. jacobi)")
    p_sp.add_argument("model", nargs="?", default=None,
                      help="model name or alias (e.g. openacc)")
    p_sp.add_argument("--all", action="store_true", dest="all_ports",
                      help="profile the stratified full-suite workload")
    p_sp.add_argument("--scale", default="test",
                      choices=("test", "paper"))
    p_sp.add_argument("--json", action="store_true",
                      help="machine-readable attribution + sweep stats")
    p_sp.add_argument("--top", type=int, default=8, metavar="N",
                      help="detail rows per phase in the text report")
    p_sp.add_argument("--flamegraph", default=None, metavar="PATH",
                      help="write collapsed stacks (flamegraph.pl / "
                           "speedscope folded format)")
    p_sp.add_argument("--metrics", default=None, metavar="PATH",
                      help="write the metrics registry as canonical JSON")
    p_sp.add_argument("--deterministic", action="store_true",
                      help="restrict --metrics to deterministic families "
                           "(byte-identical for any --jobs)")
    p_sp.add_argument("--openmetrics", default=None, metavar="PATH",
                      help="write OpenMetrics/Prometheus text exposition")
    p_sp.add_argument("--min-coverage", type=float, default=None,
                      metavar="FRAC",
                      help="exit 1 if named-phase coverage falls below "
                           "FRAC (e.g. 0.95)")
    _add_jobs(p_sp)
    _add_jit(p_sp)
    p_sp.set_defaults(func=_cmd_selfprof)

    p_lg = sub.add_parser(
        "loadgen", help="replay a seeded synthetic request stream cold "
                        "vs warm; report p50/p99 latency + throughput")
    p_lg.add_argument("--requests", type=int, default=40, metavar="N",
                      help="requests per phase (default 40)")
    p_lg.add_argument("--seed", type=int, default=0,
                      help="stream seed (the stream is a pure function "
                           "of it)")
    p_lg.add_argument("--mix", default=None,
                      help="request mix, e.g. compile=6,run=3,exec=1")
    p_lg.add_argument("--scale", default="test",
                      choices=("test", "paper"))
    p_lg.add_argument("--json", action="store_true",
                      help="machine-readable report")
    p_lg.add_argument("--openmetrics", default=None, metavar="PATH",
                      help="write OpenMetrics/Prometheus text exposition")
    p_lg.add_argument("--smoke", action="store_true",
                      help="CI gate: exit 1 unless the warm phase hit "
                           "the artifact store")
    _add_jobs(p_lg)
    p_lg.set_defaults(func=_cmd_loadgen)

    p_pass = sub.add_parser(
        "passes", help="pass-pipeline report: per-pass state diffs and "
                       "rejection attribution for one port or --all")
    p_pass.add_argument("benchmark", nargs="?", default=None,
                        help="benchmark name (e.g. jacobi)")
    p_pass.add_argument("model", nargs="?", default=None,
                        help="model name or alias (e.g. openacc)")
    p_pass.add_argument("--variant", default=None,
                        help="port variant (default: the model's best)")
    p_pass.add_argument("--all", action="store_true", dest="all_ports",
                        help="one summary line per region for every "
                             "benchmark x model pair")
    p_pass.set_defaults(func=_cmd_passes)

    p_base = sub.add_parser(
        "baseline", help="record or check the perf-regression baseline")
    p_base.add_argument("action", choices=("record", "check"))
    p_base.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file (default: "
                             "benchmarks/baselines/figure1-paper.json)")
    p_base.add_argument("--scale", default="paper",
                        choices=("test", "paper"),
                        help="workload scale for 'record'")
    p_base.add_argument("--benchmarks", nargs="*", default=None,
                        metavar="BENCH",
                        help="restrict 'record' to these benchmarks")
    p_base.add_argument("--tolerance", type=float, default=None,
                        help="relative tolerance (default: the baseline's "
                             "own, 2%%)")
    _add_jobs(p_base)
    p_base.set_defaults(func=_cmd_baseline)

    p_all = sub.add_parser("all", help="everything")
    p_all.add_argument("--scale", default="paper",
                       choices=("test", "paper"))
    p_all.add_argument("--json", action="store_true",
                       help="emit the machine-readable rollup (the "
                            "'results' section is byte-identical for "
                            "any --jobs value)")
    p_all.add_argument("--journal", default=None, metavar="PATH",
                       help="checkpoint/resume journal for the sharded "
                            "sweep (requires --jobs > 1); an interrupted "
                            "sweep restarts only the missing work units")
    _add_jobs(p_all)
    _add_jit(p_all)
    p_all.set_defaults(func=_cmd_all)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UsageError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Text rendering of the reproduced tables and figure."""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from repro.benchmarks.registry import BENCHMARK_ORDER
from repro.harness.runner import FIGURE1_MODELS, EvaluationResults
from repro.metrics.speedup import BenchmarkSpeedups
from repro.models.features import render_table1

#: the paper's Table II values, for side-by-side comparison
PAPER_TABLE2: Mapping[str, tuple[str, float]] = {
    "PGI Accelerator": ("98.3 (57/58)", 18.2),
    "OpenACC": ("98.3 (57/58)", 18.0),
    "HMPP": ("98.3 (57/58)", 18.5),
    "OpenMPC": ("100 (58/58)", 5.2),
    "R-Stream": ("37.9 (22/58)", 9.5),
}


def render_table2(results: EvaluationResults) -> str:
    """Table II: program coverage and normalized code-size increase."""
    lines = [
        "Table II: program coverage and normalized, average code-size "
        "increase",
        f"{'GPU Model':<18}{'Coverage (measured)':<24}"
        f"{'Coverage (paper)':<20}{'Code-size + (measured)':<24}"
        f"{'(paper)':<8}",
        "-" * 94,
    ]
    for model, cov in results.coverage.items():
        size = results.codesize[model]
        paper_cov, paper_size = PAPER_TABLE2.get(model, ("?", float("nan")))
        lines.append(
            f"{model:<18}"
            f"{cov.percent:5.1f}% ({cov.translated}/{cov.total})"
            f"{'':<6}"
            f"{paper_cov:<20}"
            f"+{size.average_percent:5.1f}%{'':<16}"
            f"+{paper_size:.1f}%")
    return "\n".join(lines)


def render_figure1(speedups: Mapping[str, Mapping[str, BenchmarkSpeedups]],
                   log_bars: bool = True) -> str:
    """Figure 1 as a text table + log-scale bars.

    Speedups are over serial CPU; per (benchmark, model) the best tuning
    variant is shown and the worst variant gives the tuning-variation
    whisker, as in the paper's 'Performance Variation By Tuning' marks.
    """
    lines = [
        "Figure 1: speedup over serial CPU (best variant; "
        "[worst variant] = tuning variation)",
        f"{'Benchmark':<10}" + "".join(f"{m:<22}" for m in FIGURE1_MODELS),
        "-" * (10 + 22 * len(FIGURE1_MODELS)),
    ]
    for name in BENCHMARK_ORDER:
        if name not in speedups:
            continue
        row = f"{name:<10}"
        for model in FIGURE1_MODELS:
            rec = speedups[name].get(model)
            if rec is None or not rec.variants:
                row += f"{'-':<22}"
                continue
            primary = rec.primary.speedup
            lo, hi = rec.worst.speedup, rec.best.speedup
            cell = f"{primary:8.2f}x"
            if len(rec.variants) > 1 and not math.isclose(lo, hi):
                cell += f" [{lo:.2f}..{hi:.2f}]"
            row += f"{cell:<22}"
        lines.append(row)
    if log_bars:
        lines.append("")
        lines.append("log-scale bars (each '#' is a factor of 10^0.25):")
        for name in BENCHMARK_ORDER:
            if name not in speedups:
                continue
            for model in FIGURE1_MODELS:
                rec = speedups[name].get(model)
                if rec is None or not rec.variants:
                    continue
                s = max(rec.primary.speedup, 1e-3)
                n = max(0, int(round((math.log10(s) + 1.0) / 0.25)))
                lines.append(f"  {name:<10}{model:<20}|{'#' * n} "
                             f"{s:.2f}x")
    return "\n".join(lines)


def render_figure1_csv(speedups: Mapping[str, Mapping[str, BenchmarkSpeedups]],
                       ) -> str:
    """Figure 1 data as CSV (benchmark, model, variant, speedup...)."""
    rows = ["benchmark,model,variant,speedup,cpu_s,gpu_s,kernel_s,"
            "transfer_s,host_fallback_s"]
    for name in BENCHMARK_ORDER:
        if name not in speedups:
            continue
        for model, rec in speedups[name].items():
            for r in rec.variants:
                rows.append(
                    f"{r.benchmark},{r.model},{r.variant},"
                    f"{r.speedup:.4f},{r.cpu_time_s:.6f},"
                    f"{r.gpu_time_s:.6f},{r.kernel_time_s:.6f},"
                    f"{r.transfer_time_s:.6f},{r.host_fallback_s:.6f}")
    return "\n".join(rows)


def render_bottleneck_section(profiles: Sequence) -> str:
    """The per-model bottleneck distribution, as a figure companion.

    ``profiles`` are :class:`~repro.obs.profile.RunProfile` rows from a
    ``profile --all`` sweep; the table explains the speedup gaps of
    Figure 1 in counter terms (which models leave kernels
    latency-bound, whose timelines PCIe dominates).
    """
    from repro.metrics.profstats import profile_stats, render_profile_stats

    return render_profile_stats(profile_stats(profiles))


def render_all(results: EvaluationResults) -> str:
    parts = ["Table I: feature matrix (transcribed and model-verified)",
             render_table1(), "", render_table2(results)]
    if results.speedups:
        parts += ["", render_figure1(results.speedups)]
    return "\n".join(parts)

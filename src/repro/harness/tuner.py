"""Launch-configuration autotuner (the Section VI-C tunability story).

"Directive-based GPU programming models may enable an easy tuning
environment that assists users in generating GPU programs in many
optimization variants" — OpenMPC shipped built-in tuning tools; this
module provides the equivalent for our stack: sweep per-kernel launch
configurations (block size, optionally register pressure) through the
deterministic timing model and report the best point plus the whole
response surface.

Because the simulator prices kernels analytically, a full sweep is
cheap and exactly reproducible — the "many optimization variants
without detailed knowledge of the complex GPU programming and memory
models" workflow the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.errors import LaunchError
from repro.gpusim.device import TESLA_M2090, DeviceSpec
from repro.gpusim.kernel import Kernel
from repro.gpusim.timing import TimingConfig, price_kernel

#: the block sizes a CUDA tuner would typically sweep
DEFAULT_BLOCK_SIZES: tuple[int, ...] = (32, 64, 96, 128, 192, 256, 384,
                                        512, 768, 1024)


@dataclass(frozen=True)
class TunePoint:
    """One evaluated configuration."""

    block_threads: int
    time_s: float
    occupancy: float
    bound: str

    def summary(self) -> str:
        return (f"block={self.block_threads:<5} "
                f"t={self.time_s * 1e3:9.4f} ms  occ={self.occupancy:4.2f} "
                f"({self.bound}-bound)")


@dataclass
class TuneResult:
    """Response surface for one kernel."""

    kernel: str
    points: list[TunePoint] = field(default_factory=list)
    skipped: list[tuple[int, str]] = field(default_factory=list)

    @property
    def best(self) -> TunePoint:
        if not self.points:
            raise LaunchError(
                f"kernel {self.kernel!r}: no feasible configuration")
        return min(self.points, key=lambda p: p.time_s)

    @property
    def worst(self) -> TunePoint:
        if not self.points:
            raise LaunchError(
                f"kernel {self.kernel!r}: no feasible configuration")
        return max(self.points, key=lambda p: p.time_s)

    @property
    def tuning_gain(self) -> float:
        """worst/best time ratio — how much tuning was worth."""
        return self.worst.time_s / self.best.time_s

    def report(self) -> str:
        lines = [f"kernel {self.kernel}:"]
        best = self.best
        for p in sorted(self.points, key=lambda p: p.block_threads):
            marker = "  <-- best" if p is best else ""
            lines.append(f"  {p.summary()}{marker}")
        for block, reason in self.skipped:
            lines.append(f"  block={block:<5} infeasible ({reason})")
        lines.append(f"  tuning gain: {self.tuning_gain:.2f}x")
        return "\n".join(lines)


def _with_block(kernel: Kernel, block: int) -> Kernel:
    return Kernel(kernel.name, kernel.body, kernel.thread_vars,
                  arrays=kernel.arrays, scalars=kernel.scalars,
                  block_threads=block, dtype=kernel.dtype,
                  placements=kernel.placements, tiling=kernel.tiling,
                  regs_per_thread=kernel.regs_per_thread,
                  indirect_carriers=kernel.indirect_carriers,
                  monotone_carriers=kernel.monotone_carriers,
                  pattern_overrides=kernel.pattern_overrides,
                  private_orientations=kernel.private_orientations)


def tune_kernel(kernel: Kernel, bindings: Mapping[str, float],
                array_extents: Mapping[str, Sequence[Optional[int]]],
                block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
                device: DeviceSpec = TESLA_M2090,
                timing: Optional[TimingConfig] = None) -> TuneResult:
    """Sweep block sizes for one kernel; returns the response surface."""
    result = TuneResult(kernel=kernel.name)
    for block in block_sizes:
        candidate = _with_block(kernel, block)
        try:
            desc = candidate.describe(bindings, array_extents)
            priced = price_kernel(desc, device, timing)
        except LaunchError as exc:
            result.skipped.append((block, str(exc)))
            continue
        result.points.append(TunePoint(
            block_threads=block, time_s=priced.time_s,
            occupancy=priced.occupancy, bound=priced.bound))
    return result


def tune_benchmark(bench, model: str, variant: str = "best",
                   scale: str = "paper",
                   block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
                   device: DeviceSpec = TESLA_M2090) -> dict[str, TuneResult]:
    """Tune every translated kernel of one benchmark port."""
    compiled = bench.compile(model, variant)
    wl = bench.workload(scale)
    arrays = bench.arrays_for(model, variant, wl)
    extents = {name: list(a.shape) for name, a in arrays.items()}
    bindings = {k: float(x) for k, x in wl.scalars.items()}
    results: dict[str, TuneResult] = {}
    for name, region in compiled.results.items():
        if not region.translated:
            continue
        for kernel in region.kernels:
            results[kernel.name] = tune_kernel(
                kernel, bindings, extents, block_sizes, device)
    return results

"""Device-parameter sensitivity analysis.

The reproduction's Figure 1 depends on the simulated M2090's constants
(bandwidth, PCIe, launch overhead, cache hit rates).  This module sweeps
those constants and measures how the figure's *qualitative conclusions*
respond — the robustness argument for the reproduction: if OpenMPC's EP
advantage only existed at exactly 155 GB/s, it would be an artifact; it
doesn't, and this is how we show it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.benchmarks.base import Benchmark
from repro.gpusim.device import TESLA_M2090, DeviceSpec

#: device fields that are safe and meaningful to scale
SWEEPABLE_FIELDS: tuple[str, ...] = (
    "mem_bandwidth_gbs", "peak_gflops_dp", "pcie_bandwidth_gbs",
    "kernel_launch_us", "indirect_locality", "texture_cache_hit_rate",
)


def scaled_device(base: DeviceSpec, field_name: str,
                  factor: float) -> DeviceSpec:
    """A copy of ``base`` with one constant scaled by ``factor``."""
    if field_name not in SWEEPABLE_FIELDS:
        raise ValueError(
            f"{field_name!r} is not sweepable; choose from "
            f"{SWEEPABLE_FIELDS}")
    value = getattr(base, field_name) * factor
    if field_name in ("indirect_locality", "texture_cache_hit_rate"):
        value = min(0.999, value)
    return dataclasses.replace(base, name=f"{base.name} "
                               f"[{field_name} x{factor:g}]",
                               **{field_name: value})


@dataclass
class SensitivityRow:
    """One (field, factor) point of the sweep."""

    field_name: str
    factor: float
    speedups: Mapping[str, float]  # model -> speedup

    def ordering(self) -> tuple[str, ...]:
        return tuple(sorted(self.speedups,
                            key=lambda m: -self.speedups[m]))


@dataclass
class SensitivityReport:
    """Sweep of one benchmark over device-constant perturbations."""

    benchmark: str
    baseline: Mapping[str, float]
    rows: list[SensitivityRow] = field(default_factory=list)

    def ordering_stable(self) -> bool:
        """Does the model ranking survive every perturbation?"""
        base = tuple(sorted(self.baseline,
                            key=lambda m: -self.baseline[m]))
        return all(row.ordering() == base for row in self.rows)

    def report(self) -> str:
        lines = [f"sensitivity of {self.benchmark} "
                 f"(baseline ranking: "
                 f"{' > '.join(sorted(self.baseline, key=lambda m: -self.baseline[m]))})"]
        for row in self.rows:
            cells = "  ".join(f"{m}={s:7.2f}x"
                              for m, s in row.speedups.items())
            lines.append(f"  {row.field_name:<24} x{row.factor:<5g} {cells}")
        lines.append(f"  ranking stable under all perturbations: "
                     f"{self.ordering_stable()}")
        return "\n".join(lines)


def sensitivity_sweep(bench: Benchmark,
                      models: Sequence[str] = ("PGI Accelerator",
                                               "OpenMPC",
                                               "Hand-Written CUDA"),
                      fields: Sequence[str] = ("mem_bandwidth_gbs",
                                               "pcie_bandwidth_gbs",
                                               "kernel_launch_us"),
                      factors: Sequence[float] = (0.5, 2.0),
                      base: DeviceSpec = TESLA_M2090,
                      scale: str = "paper") -> SensitivityReport:
    """Sweep device constants; record each model's speedup per point."""

    def measure(device: DeviceSpec) -> dict[str, float]:
        out: dict[str, float] = {}
        for model in models:
            result = bench.run(model, "best", scale=scale, execute=False,
                               validate=False, device=device)
            out[model] = result.speedup.speedup
        return out

    report = SensitivityReport(benchmark=bench.name,
                               baseline=measure(base))
    for field_name in fields:
        for factor in factors:
            device = scaled_device(base, field_name, factor)
            report.rows.append(SensitivityRow(
                field_name=field_name, factor=factor,
                speedups=measure(device)))
    return report

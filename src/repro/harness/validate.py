"""Suite-wide functional validation runner.

Runs every benchmark × model × tuning variant *functionally* at test
scale, compares all output arrays against the NumPy references, and
renders the PASS matrix — the one-command answer to "is this
reproduction actually computing the right things?" (the same sweep the
test-suite performs, packaged for humans and CI logs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.benchmarks.base import ALL_MODELS, Benchmark
from repro.benchmarks.registry import BENCHMARK_ORDER, get_benchmark


@dataclass
class ValidationCell:
    """Outcome of one (benchmark, model, variant) functional run."""

    benchmark: str
    model: str
    variant: str
    passed: bool
    seconds: float
    errors: tuple[str, ...] = ()


@dataclass
class ValidationMatrix:
    """All cells of the sweep."""

    cells: list[ValidationCell] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.cells)

    def failures(self) -> list[ValidationCell]:
        return [c for c in self.cells if not c.passed]

    def render(self) -> str:
        lines = [f"{'benchmark':<10}{'model':<20}{'variant':<12}"
                 f"{'result':<8}{'secs':>6}",
                 "-" * 56]
        for c in self.cells:
            status = "PASS" if c.passed else "FAIL"
            lines.append(f"{c.benchmark:<10}{c.model:<20}"
                         f"{c.variant:<12}{status:<8}{c.seconds:>6.1f}")
            for err in c.errors:
                lines.append(f"    {err}")
        total = len(self.cells)
        bad = len(self.failures())
        lines.append("-" * 56)
        lines.append(f"{total - bad}/{total} configurations validated "
                     f"against the NumPy references")
        return "\n".join(lines)


def validate_suite(benchmarks: Optional[Sequence[str]] = None,
                   models: Sequence[str] = ALL_MODELS,
                   seed: int = 0,
                   elide_transfers: bool = False) -> ValidationMatrix:
    """Run the full functional sweep at test scale.

    ``elide_transfers`` validates the analysis-guided transfer-elision
    flavour of every port instead of the default transfer discipline —
    the numeric half of the elision pass's certification (the tv layer
    proves the kernels unchanged; this proves the answers are too).
    """
    matrix = ValidationMatrix()
    names = list(benchmarks) if benchmarks else list(BENCHMARK_ORDER)
    for name in names:
        bench: Benchmark = get_benchmark(name)
        for model in models:
            for variant in bench.variants(model):
                start = time.perf_counter()
                try:
                    outcome = bench.run(model, variant, scale="test",
                                        seed=seed,
                                        elide_transfers=elide_transfers)
                    passed = bool(outcome.validated)
                    errors = tuple(outcome.validation_errors)
                except Exception as exc:  # surface, don't abort the sweep
                    passed = False
                    errors = (f"exception: {exc}",)
                matrix.cells.append(ValidationCell(
                    benchmark=name, model=model,
                    variant=variant + ("+elide" if elide_transfers else ""),
                    passed=passed,
                    seconds=time.perf_counter() - start,
                    errors=errors))
    return matrix

"""Exception hierarchy for the repro package.

Every layer of the stack (IR, analyses, model compilers, GPU simulator)
raises a subclass of :class:`ReproError` so callers can distinguish
"your input program is malformed" from "this directive model cannot
express that construct" from "the simulated device ran out of memory".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IRError(ReproError):
    """Malformed IR: bad node types, unbound variables, invalid shapes."""


class IRTypeError(IRError):
    """An IR node was constructed with an operand of the wrong kind."""


class AnalysisError(ReproError):
    """A static analysis was asked something it cannot answer."""


class TransformError(ReproError):
    """A requested loop transformation is illegal or inapplicable."""


class UnsupportedFeatureError(ReproError):
    """A directive model cannot translate a construct.

    Carries the *feature* name so coverage accounting (Table II) can report
    which limitation of Section III was hit.
    """

    def __init__(self, feature: str, detail: str = "",
                 region: str = "") -> None:
        self.feature = feature
        self.detail = detail
        self.region = region  # the rejecting region, when known
        msg = feature if not detail else f"{feature}: {detail}"
        super().__init__(msg)


class CompileError(ReproError):
    """A directive compiler failed for a reason other than model limits."""


class GpuSimError(ReproError):
    """Base class for GPU-simulator runtime errors."""


class DeviceMemoryError(GpuSimError):
    """Simulated device allocation exceeded global-memory capacity."""


class LaunchError(GpuSimError):
    """Invalid kernel launch configuration (grid/block limits, smem)."""


class ExecutionError(GpuSimError):
    """The kernel interpreter failed while executing an IR body."""


class BenchmarkError(ReproError):
    """A benchmark application was configured or validated incorrectly."""

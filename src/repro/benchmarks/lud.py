"""LUD — LU decomposition (Rodinia, Section V-B).

In-place LU factorization of a dense matrix (no pivoting — the inputs
are diagonally dominant, as Rodinia's are).  The OpenMP version is two
simple parallel loops per elimination step; the paper: "it is known to
be very difficult for compilers to analyze and generate efficient GPU
code, due to its unique access patterns.  The hand-written CUDA code
shows that algorithmic changes specialized for the underlying GPU memory
model can change its performance by an order of magnitude."

Our directive ports launch 2(n-1) per-step kernels whose column walks
(``a[i*n + k]``) the compilers cannot re-tile (the arrays are manually
linearized with a symbolic leading dimension, which also keeps R-Stream
out); OpenMPC's automatic loop-swap recovers coalescing on the trailing
update.  The manual port reproduces the blocked shared-memory algorithm
as an explicit tiling decision plus per-block scheduling.

Regions (4): ``init_a`` (copy-in), ``lud_scale`` (column scaling),
``lud_update`` (trailing submatrix), ``lud_norm`` (validation reduction).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import make_spd_dense
from repro.ir.builder import (accum, aref, assign, intrinsic, pfor,
                              reduce_clause, sfor, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.ir.transforms.tiling import TilingDecision
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

_TILE = 16


def _build(two_d_update: bool, with_clauses: bool = True) -> Program:
    i, j, k = v("i"), v("j"), v("k")
    lin = lambda r, c: r * v("n") + c  # noqa: E731 - row-major linearized

    init_a = ParallelRegion(
        "init_a",
        pfor("i", 0, v("n"),
             sfor("j", 0, v("n"),
                  assign(aref("a", lin(i, j)), aref("a0", lin(i, j)))),
             private=["j"]))
    lud_scale = ParallelRegion(
        "lud_scale",
        pfor("i", v("k") + 1, v("n"),
             assign(aref("a", lin(i, k)),
                    aref("a", lin(i, k)) / aref("a", lin(k, k)))),
        invocations=1)
    update_body = accum(aref("a", lin(i, j)),
                        -(aref("a", lin(i, k)) * aref("a", lin(k, j))))
    if two_d_update:
        update_nest = pfor("i", v("k") + 1, v("n"),
                           pfor("j", v("k") + 1, v("n"), update_body))
    else:
        update_nest = pfor("i", v("k") + 1, v("n"),
                           sfor("j", v("k") + 1, v("n"), update_body),
                           private=["j"])
    lud_update = ParallelRegion("lud_update", update_nest, invocations=1)
    lud_norm = ParallelRegion(
        "lud_norm",
        pfor("i", 0, v("n"),
             sfor("j", 0, v("n"),
                  accum(aref("nrm", 0),
                        intrinsic("fabs", aref("a", lin(i, j))))),
             private=["j"],
             reductions=(reduce_clause("+", "nrm"),) if with_clauses else ()))
    return Program(
        "lud",
        arrays=[ArrayDecl("a0", ("nn",), intent="in"),
                ArrayDecl("a", ("nn",), intent="out"),
                ArrayDecl("nrm", (1,), intent="out")],
        scalars=[ScalarDecl("n", "int"), ScalarDecl("nn", "int"),
                 ScalarDecl("k", "int")],
        regions=[init_a, lud_scale, lud_update, lud_norm],
        domain="Dense linear algebra", driver_lines=50)


class Lud(Benchmark):
    """Rodinia LUD benchmark."""

    name = "LUD"
    domain = "Dense linear algebra"
    rtol = 1e-7
    atol = 1e-9

    def build_program(self) -> Program:
        return _build(two_d_update=False)

    # -- workload -----------------------------------------------------------
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        n = 48 if scale == "test" else 2048
        a0 = make_spd_dense(n, seed=seed)
        schedule: list[ScheduleStep] = [ScheduleStep("init_a")]
        for k in range(n - 1):
            schedule.append(ScheduleStep("lud_scale", scalars={"k": k}))
            schedule.append(ScheduleStep("lud_update", scalars={"k": k}))
        schedule.append(ScheduleStep("lud_norm"))
        return Workload(
            sizes={"n": n},
            arrays={"a0": a0.reshape(-1).copy(),
                    "a": np.zeros(n * n), "nrm": np.zeros(1)},
            scalars={"n": n, "nn": n * n, "k": 0},
            schedule=schedule)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        n = wl.sizes["n"]
        a = wl.arrays["a0"].reshape(n, n).copy()
        for k in range(n - 1):
            a[k + 1:, k] /= a[k, k]
            a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
        return {"a": a.reshape(-1),
                "nrm": np.array([np.abs(a).sum()])}

    def output_arrays(self) -> tuple[str, ...]:
        return ("a", "nrm")

    # -- ports ---------------------------------------------------------------
    def variants(self, model: str) -> tuple[str, ...]:
        if model in ("PGI Accelerator", "OpenACC", "HMPP", "OpenMPC"):
            return ("best", "naive")
        return ("best",)

    def port(self, model: str, variant: str = "best") -> PortSpec:
        data = DataRegionSpec(
            name="lud_data",
            regions=("init_a", "lud_scale", "lud_update", "lud_norm"),
            copyin=("a0",), copyout=("a", "nrm"), create=("a",))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            prog = _build(two_d_update=(variant == "best"),
                          with_clauses=(model != "PGI Accelerator"))
            return PortSpec(
                model=model, program=prog,
                directive_lines=9,
                restructured_lines=4,
                data_regions=(data,),
                notes=(f"variant={variant}",
                       "per-step kernels; no blocked re-formulation "
                       "expressible"))
        if model == "OpenMPC":
            prog = _build(two_d_update=False)
            opts = RegionOptions(
                disable_auto_transforms=(variant == "naive"))
            return PortSpec(
                model=model, program=prog, directive_lines=2,
                restructured_lines=0,
                region_options={"lud_update": opts, "init_a": opts,
                                "lud_norm": opts},
                notes=(f"variant={variant}", "automatic loop-swap on the "
                       "trailing update"))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=_build(two_d_update=False),
                directive_lines=2, restructured_lines=6,
                notes=("linearized symbolic subscripts; dependences "
                       "unprovable",))
        if model == "Hand-Written CUDA":
            prog = _build(two_d_update=True)
            tile = TilingDecision(
                tile_dims=(_TILE, _TILE), reuse_factor=float(_TILE),
                smem_bytes_per_block=2 * _TILE * _TILE * 8,
                arrays=("a",))
            opts = RegionOptions(block_threads=128, tiling=(tile,))
            return PortSpec(
                model=model, program=prog, directive_lines=0,
                restructured_lines=150,
                data_regions=(data,),
                region_options={"lud_update": opts,
                                "lud_scale": RegionOptions(block_threads=128),
                                "init_a": RegionOptions(block_threads=256),
                                "lud_norm": RegionOptions(block_threads=256)},
                notes=("blocked shared-memory LU (diagonal/perimeter/"
                       "internal kernels)",))
        return self.derived_port(model, variant)

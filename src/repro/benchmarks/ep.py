"""EP — NAS Embarrassingly Parallel benchmark (Section V-A).

Each thread generates pseudo-random pairs (a per-chunk LCG stream),
transforms the uniform pairs to Gaussians (Box-Muller acceptance), and
tallies the maxima into ten annulus counters.  The OpenMP version keeps
a *private array* ``qq[10]`` per thread and merges it into the global
``q`` in a critical section — the exact construct the paper uses to
contrast the models:

* OpenMPC accepts the critical-section array reduction and expands the
  private array **column-wise** (Matrix Transpose [21]) → coalesced.
* PGI/OpenACC/HMPP need the critical decomposed into ten scalar-slot
  reductions in the input, and expand the private array **row-wise** →
  uncoalesced; this is the Figure 1 gap OpenMPC wins by.
* The manual CUDA version additionally removes the redundant private
  array (two-level reduction with local registers) and is fastest.
* The private-array expansion can overflow device memory when the
  parallel loop is too large — reproduced by ``examples/ep_overflow.py``
  via strip-mining.

Region (1): ``ep_main`` — non-affine (LCG modulus, data-dependent
branch).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.ir.builder import (accum, aref, assign, block, c, cast, critical,
                              iff, intrinsic, local, maximum, pfor, sfor, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.models.base import PortSpec, RegionOptions, ScheduleStep

_NQ = 10
_LCG_A = 1103515245
_LCG_C = 12345
_LCG_M = 2147483648  # 2^31


def _lcg_next(s):
    return (c(_LCG_A) * s + c(_LCG_C)) % c(_LCG_M)


def _ep_body(decomposed_critical: bool):
    """The per-chunk generation/tally loop."""
    i, j = v("i"), v("j")
    s = v("s")
    stmts = [
        local("s", dtype="int",
              init=(v("seed0") + i * c(2654435761)) % c(_LCG_M)),
        local("qq", shape=(_NQ,)),
        local("tsx", init=0.0),
        local("tsy", init=0.0),
        sfor("j", 0, v("chunk"), block(
            assign(s, _lcg_next(s)),
            local("x1", init=2.0 * (s / c(float(_LCG_M))) - 1.0),
            assign(s, _lcg_next(s)),
            local("x2", init=2.0 * (s / c(float(_LCG_M))) - 1.0),
            local("tt", init=v("x1") * v("x1") + v("x2") * v("x2")),
            iff(v("tt").le(1.0).logical_and(v("tt").gt(0.0)), block(
                local("tln", init=intrinsic(
                    "sqrt", -2.0 * intrinsic("log", v("tt")) / v("tt"))),
                local("y1", init=v("x1") * v("tln")),
                local("y2", init=v("x2") * v("tln")),
                local("l", dtype="int",
                      init=cast("int", maximum(intrinsic("fabs", v("y1")),
                                               intrinsic("fabs", v("y2"))))),
                accum(aref("qq", v("l")), 1.0),
                accum(v("tsx"), v("y1")),
                accum(v("tsy"), v("y2")),
            )),
        )),
    ]
    if decomposed_critical:
        for l in range(_NQ):
            stmts.append(accum(aref("q", l), aref("qq", l)))
    else:
        stmts.append(critical(
            sfor("l2", 0, _NQ, accum(aref("q", v("l2")), aref("qq", v("l2"))))))
    stmts.append(accum(aref("sx", 0), v("tsx")))
    stmts.append(accum(aref("sy", 0), v("tsy")))
    return block(*stmts)


def _build(decomposed_critical: bool) -> Program:
    region = ParallelRegion(
        "ep_main",
        pfor("i", 0, v("nk"), _ep_body(decomposed_critical),
             private=["j", "s", "qq", "tsx", "tsy"]),
        invocations=1)
    return Program(
        "ep",
        arrays=[ArrayDecl("q", (_NQ,), intent="out"),
                ArrayDecl("sx", (1,), intent="out"),
                ArrayDecl("sy", (1,), intent="out")],
        scalars=[ScalarDecl("nk", "int"), ScalarDecl("chunk", "int"),
                 ScalarDecl("seed0", "int")],
        regions=[region],
        domain="Monte Carlo", driver_lines=73)


class Ep(Benchmark):
    """NAS EP benchmark."""

    name = "EP"
    domain = "Monte Carlo"
    rtol = 1e-9
    atol = 1e-12

    def build_program(self) -> Program:
        return _build(decomposed_critical=False)

    # -- workload ---------------------------------------------------------
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        if scale == "test":
            nk, chunk = 128, 64
        else:
            nk, chunk = 65536, 256  # 2^24 pairs
        return Workload(
            sizes={"nk": nk, "chunk": chunk},
            arrays={"q": np.zeros(_NQ), "sx": np.zeros(1),
                    "sy": np.zeros(1)},
            scalars={"nk": nk, "chunk": chunk, "seed0": 271828 + seed},
            schedule=[ScheduleStep("ep_main")])

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        nk, chunk = wl.sizes["nk"], wl.sizes["chunk"]
        seed0 = int(wl.scalars["seed0"])
        s = (seed0 + np.arange(nk, dtype=np.int64) * 2654435761) % _LCG_M
        q = np.zeros(_NQ)
        tsx = np.zeros(nk)
        tsy = np.zeros(nk)
        with np.errstate(invalid="ignore", divide="ignore"):
            for _ in range(chunk):
                s = (_LCG_A * s + _LCG_C) % _LCG_M
                x1 = 2.0 * (s / float(_LCG_M)) - 1.0
                s = (_LCG_A * s + _LCG_C) % _LCG_M
                x2 = 2.0 * (s / float(_LCG_M)) - 1.0
                tt = x1 * x1 + x2 * x2
                ok = (tt <= 1.0) & (tt > 0.0)
                tln = np.sqrt(-2.0 * np.log(tt) / tt)
                y1 = x1 * tln
                y2 = x2 * tln
                l = np.trunc(np.maximum(np.abs(y1), np.abs(y2))
                             ).astype(np.int64)
                np.add.at(q, l[ok], 1.0)
                tsx = tsx + np.where(ok, y1, 0.0)
                tsy = tsy + np.where(ok, y2, 0.0)
        return {"q": q, "sx": np.array([tsx.sum()]),
                "sy": np.array([tsy.sum()])}

    def output_arrays(self) -> tuple[str, ...]:
        return ("q", "sx", "sy")

    # -- ports ---------------------------------------------------------------
    def variants(self, model: str) -> tuple[str, ...]:
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            return ("best", "transposed")
        return ("best",)

    def port(self, model: str, variant: str = "best") -> PortSpec:
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            # critical decomposed to ten scalar-slot reductions; private
            # array expanded row-wise by default.  The "transposed"
            # variant applies the Matrix Transpose technique manually in
            # the input code instead of using the private clause.
            opts = RegionOptions(
                private_orientations={"qq": "column"}
                if variant == "transposed" else {})
            return PortSpec(
                model=model, program=_build(decomposed_critical=True),
                directive_lines=5,
                restructured_lines=14 if variant == "best" else 20,
                region_options={"ep_main": opts},
                notes=(f"variant={variant}",
                       "critical decomposed to scalar reductions"))
        if model == "OpenMPC":
            return PortSpec(
                model=model, program=_build(decomposed_critical=False),
                directive_lines=2, restructured_lines=0,
                notes=("critical-section array reduction handled natively",))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=_build(decomposed_critical=False),
                directive_lines=1, restructured_lines=7,
                notes=("non-affine: LCG modulus and data-dependent branch",))
        if model == "Hand-Written CUDA":
            # two-level reduction without the redundant private array:
            # qq stays register/shared-resident
            opts = RegionOptions(block_threads=128,
                                 private_orientations={"qq": "register"})
            return PortSpec(
                model=model, program=_build(decomposed_critical=True),
                directive_lines=0, restructured_lines=80,
                region_options={"ep_main": opts},
                notes=("two-level tree reduction, no redundant private "
                       "array",))
        return self.derived_port(model, variant)

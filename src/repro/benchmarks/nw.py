"""NW — Needleman-Wunsch sequence alignment (Rodinia, Section V-B).

Global DP alignment of two length-n sequences.  The score matrix is
filled along anti-diagonals (the only parallel dimension); each cell
takes the max of three predecessors plus the substitution score looked
up through the sequences (``blosum[seq1[i]][seq2[j]]`` — indirect).

The paper: "To achieve the optimal GPU performance, a tiling
optimization using shared memory is essential.  Due to the boundary
access patterns, however, our tested compilers could not generate
efficient tiling codes" — the directive ports launch one kernel per
anti-diagonal (tiny grids, thousands of launches), while the manual
CUDA port processes 16x16 tiles along *block* diagonals with the tile
resident in shared memory (fewer launches, big reuse).

Regions (3): ``init_refs`` (substitution matrix + borders; indirect),
``wave_upper`` and ``wave_lower`` (anti-diagonal sweeps; symbolically
linearized subscripts and unprovable parallelism keep R-Stream out).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import make_blosum, make_sequences
from repro.ir.builder import (aref, assign, block, iff, local, maximum,
                              pfor, sfor, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.ir.transforms.tiling import TilingDecision
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

_TILE = 16


def _dp_update(i, j):
    """items[i][j] = max3(diag + ref, left - p, up - p)."""
    diag = aref("items", i - 1, j - 1) + aref("refm", i - 1, j - 1)
    left = aref("items", i, j - 1) - v("penalty")
    up = aref("items", i - 1, j) - v("penalty")
    return assign(aref("items", i, j), maximum(maximum(diag, left), up))


def _build_wavefront() -> Program:
    i, j, t, d = v("i"), v("j"), v("t"), v("d")
    init_refs = ParallelRegion(
        "init_refs",
        block(
            pfor("i", 0, v("n"),
                 sfor("j", 0, v("n"),
                      assign(aref("refm", i, j),
                             aref("blosum", aref("seq1", i),
                                  aref("seq2", j)))),
                 private=["j"]),
            pfor("i", 0, v("n") + 1,
                 assign(aref("items", i, 0), -v("penalty") * i)),
            pfor("j", 0, v("n") + 1,
                 assign(aref("items", 0, j), -v("penalty") * j)),
        ))
    wave_upper = ParallelRegion(
        "wave_upper",
        pfor("t", 0, v("d") + 1, _dp_update(t + 1, d - t + 1)),
        invocations=1)
    wave_lower = ParallelRegion(
        "wave_lower",
        pfor("t", 0, 2 * v("n") - 1 - v("d"),
             _dp_update(v("d") - v("n") + 2 + t, v("n") - t)),
        invocations=1)
    return Program(
        "nw",
        arrays=[
            ArrayDecl("seq1", ("n",), dtype="int", intent="in"),
            ArrayDecl("seq2", ("n",), dtype="int", intent="in"),
            ArrayDecl("blosum", ("alpha", "alpha"), intent="in"),
            ArrayDecl("refm", ("n", "n"), intent="temp"),
            ArrayDecl("items", ("n1", "n1"), intent="out"),
        ],
        scalars=[ScalarDecl("n", "int"), ScalarDecl("n1", "int"),
                 ScalarDecl("alpha", "int"), ScalarDecl("penalty"),
                 ScalarDecl("d", "int"), ScalarDecl("blo", "int"),
                 ScalarDecl("bcount", "int"), ScalarDecl("bd", "int")],
        regions=[init_refs, wave_upper, wave_lower],
        domain="Bioinformatics", driver_lines=116)


def _build_blocked() -> Program:
    """Manual-CUDA structure: 16x16 tiles along block anti-diagonals.

    One thread sequentially fills one tile (cross-tile dependencies are
    satisfied by the block-diagonal launch order; in the real kernel a
    thread block cooperates with __syncthreads, which our model folds
    into the tiling decision).
    """
    b, ii, jj = v("b"), v("ii"), v("jj")
    bi = v("blo") + b
    bj = v("bd") - bi
    i = bi * _TILE + ii + 1
    j = bj * _TILE + jj + 1
    tile_body = sfor("ii", 0, _TILE,
                     sfor("jj", 0, _TILE, _dp_update(i, j)))
    prog = _build_wavefront()
    block_wave = ParallelRegion(
        "block_wave",
        pfor("b", 0, v("bcount"), tile_body, private=["ii", "jj"]),
        invocations=1)
    return Program(
        "nw",
        arrays=list(prog.arrays.values()),
        scalars=list(prog.scalars.values()),
        regions=[prog.region("init_refs"), block_wave],
        domain="Bioinformatics", driver_lines=116)


class Nw(Benchmark):
    """Rodinia Needleman-Wunsch benchmark."""

    name = "NW"
    domain = "Bioinformatics"
    rtol = 0.0
    atol = 1e-12

    def build_program(self) -> Program:
        return _build_wavefront()

    # -- workload -----------------------------------------------------------
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        n = 64 if scale == "test" else 2048
        assert n % _TILE == 0
        seq1, seq2 = make_sequences(n, seed=seed)
        blosum = make_blosum(seed=seed + 1)
        schedule: list[ScheduleStep] = [ScheduleStep("init_refs")]
        for d in range(n):
            schedule.append(ScheduleStep("wave_upper", scalars={"d": d}))
        for d in range(n, 2 * n - 1):
            schedule.append(ScheduleStep("wave_lower", scalars={"d": d}))
        return Workload(
            sizes={"n": n, "alpha": blosum.shape[0]},
            arrays={"seq1": seq1, "seq2": seq2, "blosum": blosum,
                    "refm": np.zeros((n, n)),
                    "items": np.zeros((n + 1, n + 1))},
            scalars={"n": n, "n1": n + 1, "alpha": blosum.shape[0],
                     "penalty": 10.0, "d": 0, "blo": 0, "bcount": 1,
                     "bd": 0},
            schedule=schedule)

    def schedule_for(self, model: str, variant: str, wl: Workload):
        if model != "Hand-Written CUDA":
            return wl.schedule
        n = wl.sizes["n"]
        nb = n // _TILE
        steps = [ScheduleStep("init_refs")]
        for bd in range(2 * nb - 1):
            blo = max(0, bd - nb + 1)
            bhi = min(bd, nb - 1)
            steps.append(ScheduleStep(
                "block_wave",
                scalars={"bd": bd, "blo": blo, "bcount": bhi - blo + 1}))
        return steps

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        n = wl.sizes["n"]
        penalty = wl.scalars["penalty"]
        refm = wl.arrays["blosum"][wl.arrays["seq1"][:, None],
                                   wl.arrays["seq2"][None, :]]
        items = np.zeros((n + 1, n + 1))
        items[:, 0] = -penalty * np.arange(n + 1)
        items[0, :] = -penalty * np.arange(n + 1)
        for d in range(2 * n - 1):
            i_lo = max(1, d - n + 2)
            i_hi = min(d + 1, n)
            ii = np.arange(i_lo, i_hi + 1)
            jj = d + 2 - ii
            items[ii, jj] = np.maximum(
                np.maximum(items[ii - 1, jj - 1] + refm[ii - 1, jj - 1],
                           items[ii, jj - 1] - penalty),
                items[ii - 1, jj] - penalty)
        return {"items": items}

    def output_arrays(self) -> tuple[str, ...]:
        return ("items",)

    # -- ports ---------------------------------------------------------------
    def port(self, model: str, variant: str = "best") -> PortSpec:
        prog = _build_wavefront()
        data = DataRegionSpec(
            name="nw_data",
            regions=("init_refs", "wave_upper", "wave_lower", "block_wave"),
            copyin=("seq1", "seq2", "blosum"),
            copyout=("items",),
            create=("refm", "items"))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            return PortSpec(
                model=model, program=prog,
                directive_lines=12,
                restructured_lines=14,  # wavefront restructuring of the DP
                data_regions=(data,),
                notes=("per-diagonal kernels; no shared-memory tiling",))
        if model == "OpenMPC":
            return PortSpec(
                model=model, program=prog, directive_lines=3,
                restructured_lines=12,
                notes=("per-diagonal kernels",))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=prog, directive_lines=2,
                restructured_lines=7,
                notes=("wavefront parallelism not provable; linearized "
                       "subscripts",))
        if model == "Hand-Written CUDA":
            from repro.ir.analysis.access import AccessPattern

            tile = TilingDecision(
                tile_dims=(_TILE, _TILE), reuse_factor=8.0,
                smem_bytes_per_block=(_TILE + 1) * (_TILE + 1) * 8 * 2,
                arrays=("items", "refm"))
            # the real kernel stages tile rows through shared memory with
            # coalesced row loads; one cooperative block per tile
            opts = RegionOptions(
                block_threads=64, tiling=(tile,),
                pattern_overrides={"items": AccessPattern.COALESCED,
                                   "refm": AccessPattern.COALESCED})
            return PortSpec(
                model=model, program=_build_blocked(), directive_lines=0,
                restructured_lines=110,
                data_regions=(data,),
                region_options={"block_wave": opts},
                notes=("16x16 shared-memory tiles along block diagonals",))
        return self.derived_port(model, variant)

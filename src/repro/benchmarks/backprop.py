"""BACKPROP — neural-network training (Rodinia, Section V-B).

One epoch of back-propagation on a 2-layer perceptron: forward pass,
output/hidden error, weight adjustment with momentum.

Porting facts reproduced from the paper:

* the original allocates weight matrices as pointer-to-pointer rows
  (``float**``) — every port repacks them into dense 2-D arrays except
  R-Stream's, whose front end then rejects all regions
  (pointer-based allocation);
* the naive translation is "very poor, due to uncoalesced accesses":
  weights are stored ``w[j][i]`` (per-unit rows) and the parallel unit
  index walks rows.  *Parallel loop-swap* fixes it, but "the current
  OpenMPC compiler could not perform the optimization automatically due
  to its complexity" (the loop body is an imperfect nest with a
  reduction), so every best port applies the transposed layout
  ``wt[i][j]`` manually in the input code;
* the layout change surfaces array-reduction patterns that the non-
  OpenMPC models cannot handle, requiring further manual transformation
  (accounted as restructuring lines).

Regions (6): ``forward_hidden``, ``forward_output``, ``output_error``,
``hidden_error``, ``adjust_w2``, ``adjust_w1`` — only ``output_error``
(which touches no weight matrix) is R-Stream-mappable.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.ir.builder import (accum, aref, assign, block, intrinsic, local,
                              pfor, reduce_clause, sfor, ternary, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

ETA = 0.3
MOMENTUM = 0.3


def _w1(transposed: bool, i, j):
    """weight input->hidden: canonical layout w1[j][i] (unit-major)."""
    return aref("w1", i, j) if transposed else aref("w1", j, i)


def _w2(transposed: bool, j, k):
    return aref("w2", k, j) if transposed else aref("w2", j, k)


def _sigmoid(x):
    return 1.0 / (1.0 + intrinsic("exp", -x))


def _build(transposed: bool, contiguous: bool,
           with_clauses: bool = True) -> Program:
    i, j, k = v("i"), v("j"), v("k")

    forward_hidden = ParallelRegion(
        "forward_hidden",
        pfor("j", 0, v("nh"), block(
            local("s", init=_w1(transposed, 0, j)),  # bias row i=0
            sfor("i", 1, v("ni1"),
                 accum(v("s"), _w1(transposed, i, j) * aref("inp", i - 1))),
            assign(aref("hidden", j), _sigmoid(v("s"))),
        ), private=["i", "s"]))
    forward_output = ParallelRegion(
        "forward_output",
        pfor("k", 0, v("no"), block(
            local("s", init=_w2(transposed, 0, k)),
            sfor("j", 1, v("nh1"),
                 accum(v("s"), _w2(transposed, j, k) * aref("hidden", j - 1))),
            assign(aref("out", k), _sigmoid(v("s"))),
        ), private=["j", "s"]))
    output_error = ParallelRegion(
        "output_error",
        pfor("k", 0, v("no"), block(
            assign(aref("delta_o", k),
                   aref("out", k) * (1.0 - aref("out", k))
                   * (aref("target", k) - aref("out", k))),
            accum(aref("errsum", 0),
                  intrinsic("fabs", aref("delta_o", k))),
        ), reductions=(reduce_clause("+", "errsum"),) if with_clauses else ()))
    hidden_error = ParallelRegion(
        "hidden_error",
        pfor("j", 0, v("nh"), block(
            local("s", init=0.0),
            sfor("k", 0, v("no"),
                 accum(v("s"), aref("delta_o", k)
                       * _w2(transposed, j + 1, k))),
            assign(aref("delta_h", j),
                   aref("hidden", j) * (1.0 - aref("hidden", j)) * v("s")),
            accum(aref("errsum", 1), intrinsic("fabs", aref("delta_h", j))),
        ), private=["k", "s"],
            reductions=(reduce_clause("+", "errsum"),) if with_clauses else ()))
    hval = ternary(j.eq(0), 1.0, aref("hidden", j - 1))
    adjust_w2 = ParallelRegion(
        "adjust_w2",
        pfor("k", 0, v("no"),
             sfor("j", 0, v("nh1"), block(
                 local("dw", init=ETA * aref("delta_o", k) * hval
                       + MOMENTUM * (aref("oldw2", k, j) if transposed
                                     else aref("oldw2", j, k))),
                 accum(_w2(transposed, j, k), v("dw")),
                 assign(aref("oldw2", k, j) if transposed
                        else aref("oldw2", j, k), v("dw")),
             )), private=["j", "dw"]))
    ival = ternary(i.eq(0), 1.0, aref("inp", i - 1))
    adjust_w1 = ParallelRegion(
        "adjust_w1",
        pfor("j", 0, v("nh"),
             sfor("i", 0, v("ni1"), block(
                 local("dw", init=ETA * aref("delta_h", j) * ival
                       + MOMENTUM * (aref("oldw1", i, j) if transposed
                                     else aref("oldw1", j, i))),
                 accum(_w1(transposed, i, j), v("dw")),
                 assign(aref("oldw1", i, j) if transposed
                        else aref("oldw1", j, i), v("dw")),
             )), private=["i", "dw"]))

    if transposed:
        w_shapes = {"w1": ("ni1", "nh"), "oldw1": ("ni1", "nh"),
                    "w2": ("no", "nh1"), "oldw2": ("no", "nh1")}
    else:
        w_shapes = {"w1": ("nh", "ni1"), "oldw1": ("nh", "ni1"),
                    "w2": ("nh1", "no"), "oldw2": ("nh1", "no")}
    return Program(
        "backprop",
        arrays=[
            ArrayDecl("w1", w_shapes["w1"], contiguous=contiguous),
            ArrayDecl("oldw1", w_shapes["oldw1"], contiguous=contiguous),
            ArrayDecl("w2", w_shapes["w2"], contiguous=contiguous),
            ArrayDecl("oldw2", w_shapes["oldw2"], contiguous=contiguous),
            ArrayDecl("inp", ("ni",), intent="in"),
            ArrayDecl("hidden", ("nh",), intent="out"),
            ArrayDecl("out", ("no",), intent="out"),
            ArrayDecl("target", ("no",), intent="in"),
            ArrayDecl("delta_o", ("no",), intent="temp"),
            ArrayDecl("delta_h", ("nh",), intent="temp"),
            ArrayDecl("errsum", (2,), intent="out"),
        ],
        scalars=[ScalarDecl("ni", "int"), ScalarDecl("ni1", "int"),
                 ScalarDecl("nh", "int"), ScalarDecl("nh1", "int"),
                 ScalarDecl("no", "int")],
        regions=[forward_hidden, forward_output, output_error,
                 hidden_error, adjust_w2, adjust_w1],
        domain="Machine learning", driver_lines=114)


class Backprop(Benchmark):
    """Rodinia BACKPROP benchmark."""

    name = "BACKPROP"
    domain = "Machine learning"
    rtol = 1e-8
    atol = 1e-10

    def build_program(self) -> Program:
        # the original allocates the weight matrices as float** rows
        return _build(transposed=False, contiguous=False)

    #: training epochs per run (weights stay device-resident across
    #: epochs thanks to the data region / interprocedural planning)
    EPOCHS_TEST = 3
    EPOCHS_PAPER = 10

    # -- workload -----------------------------------------------------------
    def _dims(self, scale: str) -> tuple[int, int, int]:
        if scale == "test":
            return 96, 32, 8
        return 8192, 1024, 256

    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        ni, nh, no = self._dims(scale)
        rng = np.random.default_rng(seed)
        w1 = rng.standard_normal((nh, ni + 1)) * 0.1   # canonical [j][i]
        w2 = rng.standard_normal((nh + 1, no)) * 0.1   # canonical [j][k]
        inp = rng.random(ni)
        target = rng.random(no)
        return Workload(
            sizes={"ni": ni, "nh": nh, "no": no},
            arrays={"w1": w1, "oldw1": np.zeros_like(w1),
                    "w2": w2, "oldw2": np.zeros_like(w2),
                    "inp": inp, "target": target,
                    "hidden": np.zeros(nh), "out": np.zeros(no),
                    "delta_o": np.zeros(no), "delta_h": np.zeros(nh),
                    "errsum": np.zeros(2)},
            scalars={"ni": ni, "ni1": ni + 1, "nh": nh, "nh1": nh + 1,
                     "no": no},
            schedule=[ScheduleStep(r)
                      for _ in range(self.EPOCHS_TEST if scale == "test"
                                     else self.EPOCHS_PAPER)
                      for r in ("forward_hidden", "forward_output",
                                "output_error", "hidden_error",
                                "adjust_w2", "adjust_w1")])

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        w1 = wl.arrays["w1"].copy()   # [j][i]
        w2 = wl.arrays["w2"].copy()   # [j][k]
        oldw1 = np.zeros_like(w1)
        oldw2 = np.zeros_like(w2)
        inp = wl.arrays["inp"]
        target = wl.arrays["target"]
        ib = np.concatenate([[1.0], inp])
        epochs = len(wl.schedule) // 6
        err_o = err_h = 0.0
        for _ in range(epochs):
            s_h = w1 @ ib
            hidden = 1.0 / (1.0 + np.exp(-s_h))
            hb = np.concatenate([[1.0], hidden])
            s_o = w2.T @ hb
            out = 1.0 / (1.0 + np.exp(-s_o))
            delta_o = out * (1.0 - out) * (target - out)
            err_o += np.abs(delta_o).sum()
            s = w2[1:, :] @ delta_o
            delta_h = hidden * (1.0 - hidden) * s
            err_h += np.abs(delta_h).sum()
            dw2 = ETA * np.outer(hb, delta_o) + MOMENTUM * oldw2
            w2 = w2 + dw2
            oldw2 = dw2
            dw1 = ETA * np.outer(delta_h, ib) + MOMENTUM * oldw1
            w1 = w1 + dw1
            oldw1 = dw1
        return {"w1": w1, "w2": w2, "hidden": hidden, "out": out,
                "errsum": np.array([err_o, err_h])}

    def output_arrays(self) -> tuple[str, ...]:
        return ("w1", "w2", "hidden", "out", "errsum")

    def arrays_for(self, model, variant, wl):
        arrays = wl.copy_arrays()
        transposed = (model != "R-Stream"
                      and (variant == "best"
                           or model == "Hand-Written CUDA"))
        if transposed:
            for name in ("w1", "oldw1", "w2", "oldw2"):
                arrays[name] = np.ascontiguousarray(arrays[name].T)
        return arrays

    def canonical_output(self, name, array, model, variant, wl):
        transposed = (model != "R-Stream"
                      and (variant == "best"
                           or model == "Hand-Written CUDA"))
        if transposed and name in ("w1", "w2"):
            return array.T
        return array

    # -- ports ---------------------------------------------------------------
    def variants(self, model: str) -> tuple[str, ...]:
        if model in ("PGI Accelerator", "OpenACC", "HMPP", "OpenMPC"):
            return ("best", "naive")
        return ("best",)

    def port(self, model: str, variant: str = "best") -> PortSpec:
        transposed = variant == "best"
        data_regions = (DataRegionSpec(
            name="backprop_data",
            regions=("forward_hidden", "forward_output", "output_error",
                     "hidden_error", "adjust_w2", "adjust_w1"),
            copyin=("w1", "w2", "oldw1", "oldw2", "inp", "target"),
            copyout=("w1", "w2", "hidden", "out", "errsum"),
            create=("delta_o", "delta_h")),)
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            prog = _build(transposed=transposed, contiguous=True,
                          with_clauses=(model != "PGI Accelerator"))
            return PortSpec(
                model=model, program=prog,
                directive_lines=14,
                restructured_lines=16 if transposed else 6,
                data_regions=data_regions,
                notes=(f"variant={variant}",
                       "float** repacked; transposed weight layout, "
                       "array-reduction side effects removed manually"))
        if model == "OpenMPC":
            prog = _build(transposed=transposed, contiguous=True)
            return PortSpec(
                model=model, program=prog, directive_lines=2,
                restructured_lines=10 if transposed else 4,
                notes=(f"variant={variant}",
                       "parallel loop-swap too complex for the automatic "
                       "pass; layout transposed manually"))
        if model == "R-Stream":
            return PortSpec(
                model=model,
                program=_build(transposed=False, contiguous=False),
                directive_lines=2, restructured_lines=5,
                notes=("float** weight rows: pointer-based allocation",))
        if model == "Hand-Written CUDA":
            prog = _build(transposed=True, contiguous=True)
            opts = RegionOptions(block_threads=256)
            return PortSpec(
                model=model, program=prog, directive_lines=0,
                restructured_lines=70,
                data_regions=data_regions,
                region_options={r.name: opts for r in prog.regions},
                notes=("Rodinia CUDA backprop structure",))
        return self.derived_port(model, variant)

"""The benchmark suite registry — Figure 1's x-axis order."""

from __future__ import annotations

from typing import Iterator

from repro.benchmarks.backprop import Backprop
from repro.benchmarks.base import Benchmark
from repro.benchmarks.bfs import Bfs
from repro.benchmarks.cfd import Cfd
from repro.benchmarks.cg import Cg
from repro.benchmarks.ep import Ep
from repro.benchmarks.ft import Ft
from repro.benchmarks.hotspot import Hotspot
from repro.benchmarks.jacobi import Jacobi
from repro.benchmarks.kmeans import Kmeans
from repro.benchmarks.lud import Lud
from repro.benchmarks.nw import Nw
from repro.benchmarks.spmul import Spmul
from repro.benchmarks.srad import Srad

#: Figure 1 x-axis order.
BENCHMARK_ORDER: tuple[str, ...] = (
    "JACOBI", "EP", "SPMUL", "CG", "FT", "SRAD", "CFD", "BFS",
    "HOTSPOT", "BACKPROP", "KMEANS", "NW", "LUD",
)

_CLASSES = (Jacobi, Ep, Spmul, Cg, Ft, Srad, Cfd, Bfs, Hotspot,
            Backprop, Kmeans, Nw, Lud)


def make_suite() -> dict[str, Benchmark]:
    """Fresh instances of all thirteen benchmarks, keyed by name."""
    suite = {cls().name: cls() for cls in _CLASSES}
    assert set(suite) == set(BENCHMARK_ORDER)
    return suite


def get_benchmark(name: str) -> Benchmark:
    """One benchmark by its Figure 1 name."""
    for cls in _CLASSES:
        inst = cls()
        if inst.name == name.upper():
            return inst
    raise KeyError(f"unknown benchmark {name!r}; known: {BENCHMARK_ORDER}")


def iter_suite() -> Iterator[Benchmark]:
    for name in BENCHMARK_ORDER:
        yield get_benchmark(name)

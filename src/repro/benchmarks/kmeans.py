"""KMEANS — clustering (Rodinia, Section V-B).

One k-means iteration loop: assign each point to its nearest center,
accumulate per-cluster feature sums, recompute centers, measure the
membership churn (delta).

The paper's KMEANS story:

* the original OpenMP code avoids array reductions (OpenMP has none) by
  using per-thread expanded partial arrays reduced on the CPU; most GPU
  models keep that pattern — our non-OpenMPC ports restructure it into
  a cluster-owned accumulation (each of the k threads scans all points),
  which every model can translate but which parallelizes poorly;
* for OpenMPC the pattern was rewritten as **critical sections** so the
  compiler recognizes the array reduction and generates a two-level tree
  reduction — "resulting better performance than other models";
* the hand-written CUDA version implements the two-level reduction with
  the partial outputs cached in **shared memory** (complex subscript
  manipulation), performing much better than OpenMPC — expressing that
  would need directive extensions for shared memory and thread IDs.

Regions (3): ``assign_membership`` (divergent argmin — non-affine),
``update_centers`` (clear + accumulate + divide work-sharing loops in
one region; linearized symbolic subscripts — non-affine),
``compute_rmse`` (membership gather — non-affine).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import make_clusters
from repro.ir.builder import (accum, aref, assign, block, critical, iff,
                              intrinsic, local, maximum, pfor, sfor, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.ir.transforms.tiling import TilingDecision
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

_ITER_TEST = 3
_ITER_PAPER = 20


def _assign_region(iters: int) -> ParallelRegion:
    i, c, f = v("i"), v("c"), v("f")
    dist_term = (aref("points", i, f) - aref("centers", c * v("nf") + f))
    body = block(
        local("best", dtype="int", init=0),
        local("bestd", init=1e300),
        sfor("c", 0, v("k"), block(
            local("d", init=0.0),
            sfor("f", 0, v("nf"), accum(v("d"), dist_term * dist_term)),
            iff(v("d").lt(v("bestd")), block(
                assign(v("bestd"), v("d")),
                assign(v("best"), v("c")),
            )),
        )),
        iff(aref("membership", i).ne(v("best")),
            accum(aref("delta", v("t")), 1.0)),
        assign(aref("membership", i), v("best")),
    )
    return ParallelRegion(
        "assign_membership",
        pfor("i", 0, v("npoints"), body,
             private=["c", "f", "best", "bestd", "d"]),
        invocations=iters)


def _update_region(iters: int, style: str) -> ParallelRegion:
    """``style``: "critical" (OpenMPC), "cluster-owned" (other models)."""
    i, c, f, idx = v("i"), v("c"), v("f"), v("idx")
    clear = pfor("idx", 0, v("k") * v("nf"),
                 assign(aref("csums", idx), 0.0))
    clear_counts = pfor("c", 0, v("k"), assign(aref("ccounts", c), 0.0))
    if style == "critical":
        accumulate = pfor(
            "i", 0, v("npoints"),
            critical(block(
                sfor("f", 0, v("nf"),
                     accum(aref("csums",
                                aref("membership", i) * v("nf") + f),
                           aref("points", i, f))),
                accum(aref("ccounts", aref("membership", i)), 1.0),
            )), private=["f"])
    else:
        accumulate = pfor(
            "c", 0, v("k"),
            sfor("i", 0, v("npoints"),
                 iff(aref("membership", i).eq(c), block(
                     sfor("f", 0, v("nf"),
                          accum(aref("csums", c * v("nf") + f),
                                aref("points", i, f))),
                     accum(aref("ccounts", c), 1.0),
                 ))), private=["i", "f"])
    divide = pfor(
        "c", 0, v("k"),
        sfor("f", 0, v("nf"),
             assign(aref("centers", c * v("nf") + f),
                    aref("csums", c * v("nf") + f)
                    / maximum(aref("ccounts", c), 1.0))),
        private=["f"])
    return ParallelRegion(
        "update_centers",
        block(clear, clear_counts, accumulate, divide),
        invocations=iters)


def _rmse_region() -> ParallelRegion:
    i, f = v("i"), v("f")
    term = (aref("points", i, f)
            - aref("centers", aref("membership", i) * v("nf") + f))
    return ParallelRegion(
        "compute_rmse",
        pfor("i", 0, v("npoints"), block(
            local("d", init=0.0),
            sfor("f", 0, v("nf"), accum(v("d"), term * term)),
            accum(aref("rmse", 0), v("d")),
        ), private=["f", "d"]))


def _build(iters: int, style: str) -> Program:
    return Program(
        "kmeans",
        arrays=[
            ArrayDecl("points", ("npoints", "nf"), intent="in"),
            ArrayDecl("centers", ("kf",)),
            ArrayDecl("csums", ("kf",), intent="temp"),
            ArrayDecl("ccounts", ("k",), intent="temp"),
            ArrayDecl("membership", ("npoints",), dtype="int"),
            ArrayDecl("delta", ("iters",), intent="out"),
            ArrayDecl("rmse", (1,), intent="out"),
        ],
        scalars=[ScalarDecl("npoints", "int"), ScalarDecl("nf", "int"),
                 ScalarDecl("k", "int"), ScalarDecl("kf", "int"),
                 ScalarDecl("t", "int"), ScalarDecl("iters", "int")],
        regions=[_assign_region(iters), _update_region(iters, style),
                 _rmse_region()],
        domain="Data mining", driver_lines=52)


class Kmeans(Benchmark):
    """Rodinia KMEANS benchmark."""

    name = "KMEANS"
    domain = "Data mining"
    rtol = 1e-8
    atol = 1e-10

    def build_program(self) -> Program:
        return _build(_ITER_PAPER, style="cluster-owned")

    # -- workload -----------------------------------------------------------
    def _dims(self, scale: str) -> tuple[int, int, int]:
        if scale == "test":
            return 240, 8, 5
        return 200_000, 32, 16

    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        npoints, nf, k = self._dims(scale)
        iters = _ITER_TEST if scale == "test" else _ITER_PAPER
        points = make_clusters(npoints, nf, k, seed=seed)
        centers = points[:k].reshape(-1).copy()
        schedule: list[ScheduleStep] = []
        for t in range(iters):
            schedule.append(ScheduleStep("assign_membership",
                                         scalars={"t": t}))
            schedule.append(ScheduleStep("update_centers"))
        schedule.append(ScheduleStep("compute_rmse"))
        return Workload(
            sizes={"npoints": npoints, "nf": nf, "k": k, "iters": iters},
            arrays={"points": points, "centers": centers,
                    "csums": np.zeros(k * nf), "ccounts": np.zeros(k),
                    "membership": np.full(npoints, -1, dtype=np.int64),
                    "delta": np.zeros(iters), "rmse": np.zeros(1)},
            scalars={"npoints": npoints, "nf": nf, "k": k, "kf": k * nf,
                     "t": 0, "iters": iters},
            schedule=schedule)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        points = wl.arrays["points"]
        k, nf = wl.sizes["k"], wl.sizes["nf"]
        centers = wl.arrays["centers"].reshape(k, nf).copy()
        membership = np.full(wl.sizes["npoints"], -1, dtype=np.int64)
        delta = np.zeros(wl.sizes["iters"])
        for t in range(wl.sizes["iters"]):
            d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            best = np.argmin(d2, axis=1)
            delta[t] = float((membership != best).sum())
            membership = best
            csums = np.zeros((k, nf))
            counts = np.zeros(k)
            np.add.at(csums, membership, points)
            np.add.at(counts, membership, 1.0)
            centers = csums / np.maximum(counts, 1.0)[:, None]
        diff = points - centers[membership]
        rmse = float((diff * diff).sum())
        return {"centers": centers.reshape(-1), "membership": membership,
                "delta": delta, "rmse": np.array([rmse])}

    def output_arrays(self) -> tuple[str, ...]:
        return ("centers", "membership", "delta", "rmse")

    # -- ports ---------------------------------------------------------------
    def port(self, model: str, variant: str = "best") -> PortSpec:
        iters = _ITER_PAPER
        data = DataRegionSpec(
            name="kmeans_data",
            regions=("assign_membership", "update_centers", "compute_rmse"),
            copyin=("points", "centers", "membership"),
            copyout=("centers", "membership", "delta", "rmse"),
            create=("csums", "ccounts"))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            prog = _build(iters, style="cluster-owned")
            return PortSpec(
                model=model, program=prog,
                directive_lines=10,
                restructured_lines=8,
                data_regions=(data,),
                notes=("cluster-owned accumulation (no array reduction)",))
        if model == "OpenMPC":
            prog = _build(iters, style="critical")
            return PortSpec(
                model=model, program=prog, directive_lines=2,
                restructured_lines=4,
                notes=("reductions rewritten as critical sections so the "
                       "compiler recognizes them",))
        if model == "R-Stream":
            return PortSpec(
                model=model,
                program=_build(iters, style="cluster-owned"),
                directive_lines=2, restructured_lines=8,
                notes=("divergent argmin + linearized center arrays",))
        if model == "Hand-Written CUDA":
            prog = _build(iters, style="critical")
            from repro.ir.analysis.access import AccessPattern

            smem_tile = TilingDecision(
                tile_dims=(16,), reuse_factor=24.0,
                smem_bytes_per_block=16 * 32 * 8,
                arrays=("csums", "ccounts"))
            opts = RegionOptions(block_threads=256, tiling=(smem_tile,))
            # the hand kernel transposes the point matrix (feature-major)
            # so lanes read consecutive points of one feature
            assign_opts = RegionOptions(
                block_threads=256,
                pattern_overrides={"points": AccessPattern.COALESCED})
            return PortSpec(
                model=model, program=prog, directive_lines=0,
                restructured_lines=90,
                data_regions=(data,),
                region_options={"update_centers": opts,
                                "assign_membership": assign_opts,
                                "compute_rmse": assign_opts},
                notes=("two-level reduction, partials cached in shared "
                       "memory via subscript manipulation",))
        return self.derived_port(model, variant)

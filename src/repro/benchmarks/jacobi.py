"""JACOBI — 2-D Poisson iteration kernel (Section V-A).

The paper's story: the original OpenMP version parallelizes the outermost
loop (rows) to minimize fork-join overhead.  Translating that directly
gives every GPU thread a row — large, *uncoalesced* global accesses.

* OpenMPC fixes it automatically with *parallel loop-swap*.
* PGI/OpenACC perform best when the swap is applied manually in the input
  and only the outermost loop is parallelized; annotating both loops
  (2-D mapping) also recovers coalescing and triggers PGI's automatic
  shared-memory tiling.
* HMPP can express the swap as a codelet-generator directive.
* The manual CUDA version uses 2-D thread blocks with tiling.

Regions (2): ``stencil`` and ``copyback`` — both affine (R-Stream maps
them fully automatically).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import make_grid
from repro.ir.builder import aref, assign, idx, pfor, sfor, v
from repro.ir.program import (ArrayDecl, ParallelRegion, Program, ScalarDecl)
from repro.ir.transforms.tiling import TilingDecision
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

_ITER_TEST = 4
_ITER_PAPER = 50


def _stencil_body():
    i, j = idx("i", "j")
    return assign(
        aref("b", i, j),
        0.25 * (aref("a", i - 1, j) + aref("a", i + 1, j)
                + aref("a", i, j - 1) + aref("a", i, j + 1)))


def _copy_body():
    i, j = idx("i", "j")
    return assign(aref("a", i, j), aref("b", i, j))


def _program_outer_parallel(iters: int) -> Program:
    """The original OpenMP form: outermost loop parallel, inner serial."""
    regions = [
        ParallelRegion(
            "stencil",
            pfor("i", 1, v("n") - 1,
                 sfor("j", 1, v("n") - 1, _stencil_body()),
                 private=["j"]),
            affine_hint=True, invocations=iters),
        ParallelRegion(
            "copyback",
            pfor("i", 1, v("n") - 1,
                 sfor("j", 1, v("n") - 1, _copy_body()),
                 private=["j"]),
            affine_hint=True, invocations=iters),
    ]
    return Program(
        "jacobi",
        arrays=[ArrayDecl("a", ("n", "n")), ArrayDecl("b", ("n", "n"),
                                                      intent="temp")],
        scalars=[ScalarDecl("n", "int")],
        regions=regions,
        domain="Iterative PDE solvers", driver_lines=33)


def _program_swapped(iters: int) -> Program:
    """Manually loop-swapped input: the parallel index walks columns."""
    regions = [
        ParallelRegion(
            "stencil",
            pfor("j", 1, v("n") - 1,
                 sfor("i", 1, v("n") - 1, _stencil_body()),
                 private=["i"]),
            affine_hint=True, invocations=iters),
        ParallelRegion(
            "copyback",
            pfor("j", 1, v("n") - 1,
                 sfor("i", 1, v("n") - 1, _copy_body()),
                 private=["i"]),
            affine_hint=True, invocations=iters),
    ]
    return Program(
        "jacobi",
        arrays=[ArrayDecl("a", ("n", "n")), ArrayDecl("b", ("n", "n"),
                                                      intent="temp")],
        scalars=[ScalarDecl("n", "int")],
        regions=regions,
        domain="Iterative PDE solvers", driver_lines=33)


def _program_2d(iters: int) -> Program:
    """Both loops annotated parallel (2-D thread-block mapping)."""
    regions = [
        ParallelRegion(
            "stencil",
            pfor("i", 1, v("n") - 1,
                 pfor("j", 1, v("n") - 1, _stencil_body())),
            affine_hint=True, invocations=iters),
        ParallelRegion(
            "copyback",
            pfor("i", 1, v("n") - 1,
                 pfor("j", 1, v("n") - 1, _copy_body())),
            affine_hint=True, invocations=iters),
    ]
    return Program(
        "jacobi",
        arrays=[ArrayDecl("a", ("n", "n")), ArrayDecl("b", ("n", "n"),
                                                      intent="temp")],
        scalars=[ScalarDecl("n", "int")],
        regions=regions,
        domain="Iterative PDE solvers", driver_lines=33)


class Jacobi(Benchmark):
    """JACOBI kernel benchmark."""

    name = "JACOBI"
    domain = "Iterative PDE solvers"

    def build_program(self) -> Program:
        return _program_outer_parallel(_ITER_PAPER)

    # -- workload ---------------------------------------------------------
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        n = 48 if scale == "test" else 4096
        iters = _ITER_TEST if scale == "test" else _ITER_PAPER
        a = make_grid(n, seed=seed)
        b = np.zeros((n, n))
        schedule: list[ScheduleStep] = []
        for _ in range(iters):
            schedule.append(ScheduleStep("stencil"))
            schedule.append(ScheduleStep("copyback"))
        return Workload(sizes={"n": n, "iters": iters},
                        arrays={"a": a, "b": b},
                        scalars={"n": n},
                        schedule=schedule)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        a = wl.arrays["a"].copy()
        b = np.zeros_like(a)
        for _ in range(wl.sizes["iters"]):
            b[1:-1, 1:-1] = 0.25 * (a[:-2, 1:-1] + a[2:, 1:-1]
                                    + a[1:-1, :-2] + a[1:-1, 2:])
            a[1:-1, 1:-1] = b[1:-1, 1:-1]
        return {"a": a}

    def output_arrays(self) -> tuple[str, ...]:
        return ("a",)

    # -- ports -------------------------------------------------------------
    def variants(self, model: str) -> tuple[str, ...]:
        if model in ("PGI Accelerator", "OpenACC"):
            return ("best", "2d", "naive")
        if model in ("HMPP", "OpenMPC"):
            return ("best", "naive")
        return ("best",)

    def port(self, model: str, variant: str = "best") -> PortSpec:
        iters = _ITER_PAPER
        data_region = DataRegionSpec(
            name="jacobi_data", regions=("stencil", "copyback"),
            copyin=("a",), copyout=("a",), create=("b",))
        if model in ("PGI Accelerator", "OpenACC"):
            if variant == "naive":
                prog = _program_outer_parallel(iters)
            elif variant == "2d":
                prog = _program_2d(iters)
            else:
                prog = _program_swapped(iters)
            return PortSpec(
                model=model, program=prog,
                directive_lines=6 if model == "PGI Accelerator" else 5,
                restructured_lines=2 if variant == "best" else 0,
                data_regions=(data_region,),
                notes=(f"variant={variant}",))
        if model == "HMPP":
            swap = variant == "best"
            opts = RegionOptions(request_loop_swap=swap)
            return PortSpec(
                model=model, program=_program_outer_parallel(iters),
                directive_lines=9,  # codelet/callsite/group/loads + permute
                restructured_lines=0,
                data_regions=(data_region,),
                region_options={"stencil": opts, "copyback": opts},
                notes=(f"variant={variant}",))
        if model == "OpenMPC":
            opts = RegionOptions(
                disable_auto_transforms=(variant == "naive"))
            return PortSpec(
                model=model, program=_program_outer_parallel(iters),
                directive_lines=1,  # one tuning env directive
                restructured_lines=0,
                region_options={"stencil": opts, "copyback": opts},
                notes=(f"variant={variant}",))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=_program_2d(iters),
                directive_lines=2,  # map pragmas on the two functions
                restructured_lines=0,
                notes=("fully automatic mapping",))
        if model == "Hand-Written CUDA":
            tile = TilingDecision(tile_dims=(16, 16), reuse_factor=3.5,
                                  smem_bytes_per_block=18 * 18 * 8,
                                  arrays=("a",))
            opts = RegionOptions(block_threads=256, tiling=(tile,))
            return PortSpec(
                model=model, program=_program_2d(iters),
                directive_lines=0, restructured_lines=34,
                data_regions=(data_region,),
                region_options={"stencil": opts,
                                "copyback": RegionOptions(block_threads=256)},
                notes=("hand-tuned 2-D tiled kernels",))
        return self.derived_port(model, variant)

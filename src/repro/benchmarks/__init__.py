"""The thirteen-benchmark evaluation suite."""

from repro.benchmarks.base import (ALL_MODELS, Benchmark, RunOutcome,
                                   Workload)
from repro.benchmarks.registry import (BENCHMARK_ORDER, get_benchmark,
                                       iter_suite, make_suite)

__all__ = [
    "Benchmark", "Workload", "RunOutcome", "ALL_MODELS",
    "BENCHMARK_ORDER", "make_suite", "get_benchmark", "iter_suite",
]

"""SRAD — Speckle Reducing Anisotropic Diffusion (Rodinia, Section V-B).

Removes locally-correlated noise from ultrasound images by solving a
PDE: per iteration, (1) image statistics reduction over the ROI, (2) a
diffusion-coefficient pass using the Rodinia-style *subscript arrays*
``iN/iS/jW/jE`` for clamped neighbours, (3) the update pass.

The paper's SRAD story:

* OpenMPC gets coalescing from automatic *parallel loop-swap* on the
  row-parallel input loops; the other models rely on multi-dimensional
  partitioning as the manual version does (our PGI/OpenACC/HMPP/manual
  ports annotate both loops).
* The manual version replaces the subscript arrays with direct index
  computation — fewer global loads but more divergence; the measured
  trade-off *loses* (we reproduce it as a manual-port variant whose
  clamping arithmetic adds divergence, priced by the timing model).

Regions (4): ``extract`` (affine — exp on values only),
``reduce_stats`` (affine reduction), ``diffusion`` and ``update``
(subscript arrays → indirect, non-affine).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import make_grid
from repro.ir.builder import (accum, aref, assign, block, iff, intrinsic,
                              local, maximum, minimum, pfor, reduce_clause,
                              sfor, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

_ITER_TEST = 2
_ITER_PAPER = 100


def _q0sqr():
    """Image statistic q0^2 recomputed from the reduction slots."""
    mean = aref("sums", 2 * v("t")) / v("size")
    var = aref("sums", 2 * v("t") + 1) / v("size") - mean * mean
    return var / (mean * mean)


def _diffusion_body(direct_index: bool):
    i, j = v("i"), v("j")
    jc = aref("J", i, j)
    if direct_index:
        # direct index computation with divergent boundary branches, as
        # in the hand-written kernel (Section V-B: the saved subscript
        # loads are paid back in control-flow divergence)
        boundary = [
            local("dn", init=-jc), local("ds", init=-jc),
            local("dw", init=-jc), local("de", init=-jc),
            iff(i.gt(0), accum(v("dn"), aref("J", i - 1, j)),
                accum(v("dn"), jc)),
            iff(i.lt(v("rows") - 1), accum(v("ds"), aref("J", i + 1, j)),
                accum(v("ds"), jc)),
            iff(j.gt(0), accum(v("dw"), aref("J", i, j - 1)),
                accum(v("dw"), jc)),
            iff(j.lt(v("cols") - 1), accum(v("de"), aref("J", i, j + 1)),
                accum(v("de"), jc)),
        ]
    else:
        north = aref("J", aref("iN", i), j)
        south = aref("J", aref("iS", i), j)
        west = aref("J", i, aref("jW", j))
        east = aref("J", i, aref("jE", j))
        boundary = [
            local("dn", init=north - jc),
            local("ds", init=south - jc),
            local("dw", init=west - jc),
            local("de", init=east - jc),
        ]
    return block(
        *boundary,
        local("g2", init=(v("dn") * v("dn") + v("ds") * v("ds")
                          + v("dw") * v("dw") + v("de") * v("de"))
              / (jc * jc)),
        local("l_", init=(v("dn") + v("ds") + v("dw") + v("de")) / jc),
        local("num", init=(0.5 * v("g2"))
              - ((1.0 / 16.0) * (v("l_") * v("l_")))),
        local("den", init=1.0 + 0.25 * v("l_")),
        local("qsqr", init=v("num") / (v("den") * v("den"))),
        local("q0", init=_q0sqr()),
        local("cval", init=1.0 / (1.0 + ((v("qsqr") - v("q0"))
                                         / (v("q0") * (1.0 + v("q0")))))),
        iff(v("cval").lt(0.0), assign(v("cval"), 0.0),
            iff(v("cval").gt(1.0), assign(v("cval"), 1.0))),
        assign(aref("c", i, j), v("cval")),
        assign(aref("dN", i, j), v("dn")),
        assign(aref("dS", i, j), v("ds")),
        assign(aref("dW", i, j), v("dw")),
        assign(aref("dE", i, j), v("de")),
    )


def _update_body(direct_index: bool):
    i, j = v("i"), v("j")
    if direct_index:
        c_s = aref("c", minimum(i + 1, v("rows") - 1), j)
        c_e = aref("c", i, minimum(j + 1, v("cols") - 1))
    else:
        c_s = aref("c", aref("iS", i), j)
        c_e = aref("c", i, aref("jE", j))
    d = (aref("c", i, j) * aref("dN", i, j)
         + c_s * aref("dS", i, j)
         + aref("c", i, j) * aref("dW", i, j)
         + c_e * aref("dE", i, j))
    return accum(aref("J", i, j), 0.25 * v("lam") * d)


def _nest(body, two_d: bool):
    if two_d:
        return pfor("i", 0, v("rows"), pfor("j", 0, v("cols"), body))
    return pfor("i", 0, v("rows"), sfor("j", 0, v("cols"), body),
                private=["j"])


def _build(iters: int, two_d: bool = False, direct_index: bool = False,
           with_clauses: bool = True) -> Program:
    i, j = v("i"), v("j")
    extract = ParallelRegion(
        "extract",
        _nest(assign(aref("J", i, j),
                     intrinsic("exp", aref("img", i, j) / 255.0)), two_d),
        affine_hint=True)
    reduce_stats = ParallelRegion(
        "reduce_stats",
        pfor("i", 0, v("rows"),
             sfor("j", 0, v("cols"), block(
                 accum(aref("sums", 2 * v("t")), aref("J", i, j)),
                 accum(aref("sums", 2 * v("t") + 1),
                       aref("J", i, j) * aref("J", i, j)),
             )),
             private=["j"],
             reductions=(reduce_clause("+", "sums"),) if with_clauses else ()),
        invocations=iters, affine_hint=True)
    diffusion = ParallelRegion(
        "diffusion", _nest(_diffusion_body(direct_index), two_d),
        invocations=iters)
    update = ParallelRegion(
        "update", _nest(_update_body(direct_index), two_d),
        invocations=iters)
    arrays = [
        ArrayDecl("img", ("rows", "cols"), intent="in"),
        ArrayDecl("J", ("rows", "cols"), intent="out"),
        ArrayDecl("c", ("rows", "cols"), intent="temp"),
        ArrayDecl("dN", ("rows", "cols"), intent="temp"),
        ArrayDecl("dS", ("rows", "cols"), intent="temp"),
        ArrayDecl("dW", ("rows", "cols"), intent="temp"),
        ArrayDecl("dE", ("rows", "cols"), intent="temp"),
        ArrayDecl("sums", ("nslots",), intent="temp"),
    ]
    if not direct_index:
        arrays += [
            ArrayDecl("iN", ("rows",), dtype="int", intent="in",
                      monotone_content=True),
            ArrayDecl("iS", ("rows",), dtype="int", intent="in",
                      monotone_content=True),
            ArrayDecl("jW", ("cols",), dtype="int", intent="in",
                      monotone_content=True),
            ArrayDecl("jE", ("cols",), dtype="int", intent="in",
                      monotone_content=True),
        ]
    return Program(
        "srad",
        arrays=arrays,
        scalars=[ScalarDecl("rows", "int"), ScalarDecl("cols", "int"),
                 ScalarDecl("size", "int"), ScalarDecl("t", "int"),
                 ScalarDecl("lam"), ScalarDecl("nslots", "int")],
        regions=[extract, reduce_stats, diffusion, update],
        domain="Medical imaging", driver_lines=33)


class Srad(Benchmark):
    """Rodinia SRAD benchmark."""

    name = "SRAD"
    domain = "Medical imaging"
    rtol = 1e-8
    atol = 1e-10

    def build_program(self) -> Program:
        return _build(_ITER_PAPER)

    # -- workload -----------------------------------------------------------
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        rows = cols = 48 if scale == "test" else 2048
        iters = _ITER_TEST if scale == "test" else _ITER_PAPER
        img = 255.0 * make_grid(rows, cols, seed=seed)
        idx_n = np.maximum(np.arange(rows) - 1, 0).astype(np.int64)
        idx_s = np.minimum(np.arange(rows) + 1, rows - 1).astype(np.int64)
        idx_w = np.maximum(np.arange(cols) - 1, 0).astype(np.int64)
        idx_e = np.minimum(np.arange(cols) + 1, cols - 1).astype(np.int64)
        schedule: list[ScheduleStep] = [ScheduleStep("extract")]
        for t in range(iters):
            schedule.append(ScheduleStep("reduce_stats", scalars={"t": t}))
            schedule.append(ScheduleStep("diffusion", scalars={"t": t}))
            schedule.append(ScheduleStep("update"))
        return Workload(
            sizes={"rows": rows, "cols": cols, "iters": iters},
            arrays={"img": img, "J": np.zeros((rows, cols)),
                    "c": np.zeros((rows, cols)),
                    "dN": np.zeros((rows, cols)),
                    "dS": np.zeros((rows, cols)),
                    "dW": np.zeros((rows, cols)),
                    "dE": np.zeros((rows, cols)),
                    "sums": np.zeros(2 * iters),
                    "iN": idx_n, "iS": idx_s, "jW": idx_w, "jE": idx_e},
            scalars={"rows": rows, "cols": cols, "size": rows * cols,
                     "t": 0, "lam": 0.5, "nslots": 2 * iters},
            schedule=schedule)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        rows, cols = wl.sizes["rows"], wl.sizes["cols"]
        lam = wl.scalars["lam"]
        j_img = np.exp(wl.arrays["img"] / 255.0)
        i_n = wl.arrays["iN"]
        i_s = wl.arrays["iS"]
        j_w = wl.arrays["jW"]
        j_e = wl.arrays["jE"]
        for _ in range(wl.sizes["iters"]):
            total = j_img.sum()
            total2 = (j_img * j_img).sum()
            mean = total / (rows * cols)
            var = total2 / (rows * cols) - mean * mean
            q0 = var / (mean * mean)
            dn = j_img[i_n, :] - j_img
            ds = j_img[i_s, :] - j_img
            dw = j_img[:, j_w] - j_img
            de = j_img[:, j_e] - j_img
            g2 = (dn * dn + ds * ds + dw * dw + de * de) / (j_img * j_img)
            l_ = (dn + ds + dw + de) / j_img
            num = 0.5 * g2 - (1.0 / 16.0) * (l_ * l_)
            den = 1.0 + 0.25 * l_
            qsqr = num / (den * den)
            cmat = 1.0 / (1.0 + (qsqr - q0) / (q0 * (1.0 + q0)))
            cmat = np.clip(cmat, 0.0, 1.0)
            d = (cmat * dn + cmat[i_s, :] * ds
                 + cmat * dw + cmat[:, j_e] * de)
            j_img = j_img + 0.25 * lam * d
        return {"J": j_img}

    def output_arrays(self) -> tuple[str, ...]:
        return ("J",)

    # -- ports ---------------------------------------------------------------
    def variants(self, model: str) -> tuple[str, ...]:
        if model in ("PGI Accelerator", "OpenACC", "HMPP", "OpenMPC"):
            return ("best", "naive")
        return ("best",)

    def port(self, model: str, variant: str = "best") -> PortSpec:
        iters = _ITER_PAPER
        data = DataRegionSpec(
            name="srad_data",
            regions=("extract", "reduce_stats", "diffusion", "update"),
            copyin=("img", "iN", "iS", "jW", "jE"),
            copyout=("J",),
            create=("c", "dN", "dS", "dW", "dE", "sums"))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            # multi-dimensional loop partitioning, as in the manual version
            prog = _build(iters, two_d=(variant == "best"),
                          with_clauses=(model != "PGI Accelerator"))
            return PortSpec(
                model=model, program=prog,
                directive_lines=12,
                restructured_lines=4,
                data_regions=(data,),
                notes=(f"variant={variant}", "2-D loop partitioning"))
        if model == "OpenMPC":
            prog = _build(iters)
            opts = RegionOptions(
                disable_auto_transforms=(variant == "naive"))
            return PortSpec(
                model=model, program=prog, directive_lines=2,
                restructured_lines=0,
                region_options={"extract": opts, "diffusion": opts,
                                "update": opts},
                notes=(f"variant={variant}", "automatic parallel loop-swap"))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=_build(iters), directive_lines=2,
                restructured_lines=8,
                notes=("subscript-array regions are not static control",))
        if model == "Hand-Written CUDA":
            # direct index computation instead of subscript arrays: fewer
            # loads, more clamping arithmetic/divergence (the measured
            # trade-off in the paper favours the subscript arrays)
            prog = _build(iters, two_d=True, direct_index=True)
            data2 = DataRegionSpec(
                name="srad_data",
                regions=("extract", "reduce_stats", "diffusion", "update"),
                copyin=("img",), copyout=("J",),
                create=("c", "dN", "dS", "dW", "dE", "sums"))
            opts = RegionOptions(block_threads=256)
            return PortSpec(
                model=model, program=prog, directive_lines=0,
                restructured_lines=70,
                data_regions=(data2,),
                region_options={n: opts for n in
                                ("extract", "reduce_stats", "diffusion",
                                 "update")},
                notes=("direct index computation (no subscript arrays)",))
        return self.derived_port(model, variant)

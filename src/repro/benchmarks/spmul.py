"""SPMUL — sparse matrix-vector multiplication kernel (Section V-A).

A power-iteration-style driver: repeatedly ``y = A·x`` (CSR), then
normalize ``x = y / ||y||``.  The SpMV region is the canonical irregular
pattern: the inner loop's bounds come from ``rowstr[i]`` (data-dependent
trip counts → warp divergence) and ``x`` is gathered through ``colidx``
(indirect accesses).

* OpenMPC applies *loop collapsing* [21]: the flattened nonzero loop
  makes ``val``/``colidx`` traffic coalesced (modeled as pattern
  overrides; the gather of ``x`` stays indirect).
* PGI/OpenACC/HMPP translate the loop as-is; the PGI compiler leans on
  texture/L2 for the gathers (we grant the manual + OpenMPC versions
  texture placement of ``x``, which the other models cannot express).

Regions (3): ``spmv`` (non-affine), ``norm2`` (affine reduction into a
per-iteration slot), and ``scale`` (affine) — the latter two are the
SPMUL share of R-Stream's mappable set.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import CsrMatrix, make_csr
from repro.gpusim.memory import MemorySpace
from repro.ir.builder import (accum, aref, assign, block, idx, intrinsic,
                              pfor, sfor, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

_ITER_TEST = 3
_ITER_PAPER = 40


def _spmv_region(invocations: int) -> ParallelRegion:
    i, k = idx("i", "k")
    body = block(
        assign(aref("y", i), 0.0),
        sfor("k", aref("rowstr", i), aref("rowstr", i + 1),
             accum(aref("y", i),
                   aref("val", k) * aref("x", aref("colidx", k)))),
    )
    return ParallelRegion(
        "spmv",
        pfor("i", 0, v("n"), body, private=["k"]),
        invocations=invocations)


def _normalize_region(invocations: int, with_clause: bool) -> ParallelRegion:
    """Accumulate ||y||^2 into the per-iteration slot ``nrm[t]``.

    With ``with_clause`` the loop carries the OpenMP ``reduction(+: nrm)``
    annotation; the PGI port drops it (PGI has no reduction clause and
    must detect the pattern implicitly).
    """
    from repro.ir.builder import reduce_clause

    i = v("i")
    clauses = (reduce_clause("+", "nrm"),) if with_clause else ()
    return ParallelRegion(
        "norm2",
        pfor("i", 0, v("n"),
             accum(aref("nrm", v("t")), aref("y", i) * aref("y", i)),
             reductions=clauses),
        invocations=invocations)


def _scale_region(invocations: int) -> ParallelRegion:
    i = v("i")
    return ParallelRegion(
        "scale",
        pfor("i", 0, v("n"),
             assign(aref("x", i),
                    aref("y", i) / intrinsic("sqrt", aref("nrm", v("t"))))),
        invocations=invocations)


def _build_program(iters: int, with_clauses: bool = True) -> Program:
    return Program(
        "spmul",
        arrays=[
            ArrayDecl("rowstr", ("n1",), dtype="int", intent="in"),
            ArrayDecl("colidx", ("nnz",), dtype="int", intent="in"),
            ArrayDecl("val", ("nnz",), intent="in"),
            ArrayDecl("x", ("n",)),
            ArrayDecl("y", ("n",), intent="out"),
            ArrayDecl("nrm", ("iters",), intent="temp"),
        ],
        scalars=[ScalarDecl("n", "int"), ScalarDecl("n1", "int"),
                 ScalarDecl("nnz", "int"), ScalarDecl("t", "int"),
                 ScalarDecl("iters", "int")],
        regions=[_spmv_region(iters),
                 _normalize_region(iters, with_clauses),
                 _scale_region(iters)],
        domain="Sparse linear algebra", driver_lines=38)


class Spmul(Benchmark):
    """SPMUL kernel benchmark."""

    name = "SPMUL"
    domain = "Sparse linear algebra"
    rtol = 1e-7
    atol = 1e-9

    def build_program(self) -> Program:
        return _build_program(_ITER_PAPER)

    # -- workload --------------------------------------------------------
    def _matrix(self, scale: str, seed: int) -> CsrMatrix:
        n = 200 if scale == "test" else 150_000
        return make_csr(n, avg_nnz_per_row=16, seed=seed)

    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        mat = self._matrix(scale, seed)
        iters = _ITER_TEST if scale == "test" else _ITER_PAPER
        rng = np.random.default_rng(seed + 1)
        x = rng.random(mat.n)
        schedule: list[ScheduleStep] = []
        for t in range(iters):
            schedule.append(ScheduleStep("spmv"))
            schedule.append(ScheduleStep("norm2", scalars={"t": t}))
            schedule.append(ScheduleStep("scale", scalars={"t": t}))
        return Workload(
            sizes={"n": mat.n, "nnz": mat.nnz, "iters": iters},
            arrays={"rowstr": mat.rowstr.copy(), "colidx": mat.colidx.copy(),
                    "val": mat.values.copy(), "x": x,
                    "y": np.zeros(mat.n), "nrm": np.zeros(iters)},
            scalars={"n": mat.n, "n1": mat.n + 1, "nnz": mat.nnz,
                     "t": 0, "iters": iters},
            schedule=schedule)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        rowstr = wl.arrays["rowstr"]
        colidx = wl.arrays["colidx"]
        val = wl.arrays["val"]
        n = wl.sizes["n"]
        x = wl.arrays["x"].copy()
        y = np.zeros(n)
        src = np.repeat(np.arange(n), np.diff(rowstr))
        for _ in range(wl.sizes["iters"]):
            y = np.zeros(n)
            np.add.at(y, src, val * x[colidx])
            x = y / np.sqrt((y * y).sum())
        return {"x": x, "y": y}

    def output_arrays(self) -> tuple[str, ...]:
        return ("x", "y")

    # -- ports -------------------------------------------------------------
    def variants(self, model: str) -> tuple[str, ...]:
        if model == "OpenMPC":
            return ("best", "naive")
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            return ("best", "naive")
        return ("best",)

    def port(self, model: str, variant: str = "best") -> PortSpec:
        prog = _build_program(_ITER_PAPER,
                              with_clauses=(model != "PGI Accelerator"))
        data = DataRegionSpec(
            name="spmul_data", regions=("spmv", "norm2", "scale"),
            copyin=("rowstr", "colidx", "val", "x"),
            copyout=("x", "y"), create=("nrm",))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            dr = (data,) if variant == "best" else ()
            return PortSpec(
                model=model, program=prog,
                directive_lines=9,
                restructured_lines=2,
                data_regions=dr,
                notes=(f"variant={variant}",))
        if model == "OpenMPC":
            opts = RegionOptions(
                disable_auto_transforms=(variant == "naive"))
            return PortSpec(
                model=model, program=prog, directive_lines=2,
                restructured_lines=0,
                region_options={"spmv": opts},
                notes=(f"variant={variant}",))
        if model == "R-Stream":
            # the SpMV inner loop is not affine; the whole program is
            # ported anyway to measure coverage (with dummy affine
            # summaries, the paper's masking workflow — hence the
            # restructuring cost despite low coverage)
            return PortSpec(
                model=model, program=prog, directive_lines=3,
                restructured_lines=8,
                notes=("irregular regions not mappable",))
        if model == "Hand-Written CUDA":
            opts = RegionOptions(
                block_threads=128,
                placements={"x": MemorySpace.TEXTURE},
                pattern_overrides={},
            )
            return PortSpec(
                model=model, program=prog, directive_lines=0,
                restructured_lines=60,
                data_regions=(data,),
                region_options={"spmv": opts},
                notes=("CSR-vector style hand kernel, texture-cached x",))
        return self.derived_port(model, variant)

"""HOTSPOT — thermal simulation (Rodinia, Section V-B).

Estimates processor temperature from a power map by iterating a 5-point
stencil with boundary clamping (Rodinia's MIN/MAX macros — quasi-affine
subscripts, which keeps R-Stream out).  The paper's porting story is
about *thread count*: parallelizing only the outer row loop "does not
provide enough threads to hide the global memory latency";

* the manual CUDA version uses 2-D partitioning + shared-memory tiling,
* OpenMPC gets the same effect from the OpenMP ``collapse`` clause,
* the other models used *manual collapsing* in the input code (a flat
  loop with ``t // cols`` / ``t % cols`` index recovery) because the
  needed mapping features were not implemented.

Regions (2): ``step_ab`` and ``step_ba`` (ping-pong buffers).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import make_grid
from repro.ir.builder import (aref, assign, block, local, maximum, minimum,
                              pfor, sfor, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.ir.transforms.tiling import TilingDecision
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

_ITER_TEST = 4
_ITER_PAPER = 360


def _delta(src: str, r, c):
    """The Rodinia hotspot update term for cell (r, c) of ``src``."""
    t_c = aref(src, r, c)
    t_n = aref(src, maximum(r - 1, 0), c)
    t_s = aref(src, minimum(r + 1, v("rows") - 1), c)
    t_w = aref(src, r, maximum(c - 1, 0))
    t_e = aref(src, r, minimum(c + 1, v("cols") - 1))
    return (v("cap") * (aref("power", r, c)
                        + (t_s + t_n - 2.0 * t_c) * v("ry")
                        + (t_e + t_w - 2.0 * t_c) * v("rx")
                        + (v("amb") - t_c) * v("rz")))


def _step_body(src: str, dst: str, r, c):
    return assign(aref(dst, r, c), aref(src, r, c) + _delta(src, r, c))


def _step_region(name: str, src: str, dst: str, iters: int,
                 style: str) -> ParallelRegion:
    """``style``: "rows" (outer-only), "collapse" (clause), "2d", "flat"."""
    r, c, t = v("r"), v("c"), v("t")
    if style == "flat":
        body = _step_body(src, dst, t // v("cols"), t % v("cols"))
        nest = pfor("t", 0, v("rows") * v("cols"), body)
    elif style == "2d":
        nest = pfor("r", 0, v("rows"),
                    pfor("c", 0, v("cols"), _step_body(src, dst, r, c)))
    elif style == "collapse":
        nest = pfor("r", 0, v("rows"),
                    sfor("c", 0, v("cols"), _step_body(src, dst, r, c)),
                    private=["c"], collapse=2)
    else:  # "rows"
        nest = pfor("r", 0, v("rows"),
                    sfor("c", 0, v("cols"), _step_body(src, dst, r, c)),
                    private=["c"])
    return ParallelRegion(name, nest, invocations=(iters + 1) // 2)


def _build(iters: int, style: str) -> Program:
    return Program(
        "hotspot",
        arrays=[ArrayDecl("temp", ("rows", "cols")),
                ArrayDecl("temp2", ("rows", "cols"), intent="temp"),
                ArrayDecl("power", ("rows", "cols"), intent="in")],
        scalars=[ScalarDecl("rows", "int"), ScalarDecl("cols", "int"),
                 ScalarDecl("cap"), ScalarDecl("rx"), ScalarDecl("ry"),
                 ScalarDecl("rz"), ScalarDecl("amb")],
        regions=[_step_region("step_ab", "temp", "temp2", iters, style),
                 _step_region("step_ba", "temp2", "temp", iters, style)],
        domain="Physical simulation", driver_lines=53)


class Hotspot(Benchmark):
    """Rodinia HOTSPOT benchmark."""

    name = "HOTSPOT"
    domain = "Physical simulation"
    rtol = 1e-8
    atol = 1e-10

    def build_program(self) -> Program:
        return _build(_ITER_PAPER, style="rows")

    # -- workload -----------------------------------------------------------
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        rows = cols = 64 if scale == "test" else 1024
        iters = _ITER_TEST if scale == "test" else _ITER_PAPER
        assert iters % 2 == 0
        temp = 323.0 + 10.0 * make_grid(rows, cols, seed=seed)
        power = make_grid(rows, cols, seed=seed + 1) * 0.5
        schedule: list[ScheduleStep] = []
        for it in range(iters):
            schedule.append(ScheduleStep("step_ab" if it % 2 == 0
                                         else "step_ba"))
        return Workload(
            sizes={"rows": rows, "cols": cols, "iters": iters},
            arrays={"temp": temp, "temp2": np.zeros((rows, cols)),
                    "power": power},
            scalars={"rows": rows, "cols": cols, "cap": 0.5,
                     "rx": 0.1, "ry": 0.1, "rz": 0.05, "amb": 80.0},
            schedule=schedule)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        rows, cols = wl.sizes["rows"], wl.sizes["cols"]
        cap, rx, ry = (wl.scalars[k] for k in ("cap", "rx", "ry"))
        rz, amb = wl.scalars["rz"], wl.scalars["amb"]
        temp = wl.arrays["temp"].copy()
        power = wl.arrays["power"]
        r = np.arange(rows)
        c = np.arange(cols)
        rn = np.maximum(r - 1, 0)
        rs = np.minimum(r + 1, rows - 1)
        cw = np.maximum(c - 1, 0)
        ce = np.minimum(c + 1, cols - 1)
        for _ in range(wl.sizes["iters"]):
            t_n = temp[rn, :]
            t_s = temp[rs, :]
            t_w = temp[:, cw]
            t_e = temp[:, ce]
            delta = cap * (power + (t_s + t_n - 2 * temp) * ry
                           + (t_e + t_w - 2 * temp) * rx
                           + (amb - temp) * rz)
            temp = temp + delta
        return {"temp": temp}

    def output_arrays(self) -> tuple[str, ...]:
        return ("temp",)

    # -- ports ---------------------------------------------------------------
    def variants(self, model: str) -> tuple[str, ...]:
        if model in ("PGI Accelerator", "OpenACC", "HMPP", "OpenMPC"):
            return ("best", "naive")
        return ("best",)

    def port(self, model: str, variant: str = "best") -> PortSpec:
        iters = _ITER_PAPER
        data = DataRegionSpec(
            name="hotspot_data", regions=("step_ab", "step_ba"),
            copyin=("temp", "power"), copyout=("temp",), create=("temp2",))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            # manual collapsing in the input code (flat index recovery)
            style = "flat" if variant == "best" else "rows"
            return PortSpec(
                model=model, program=_build(iters, style),
                directive_lines=7 if model != "HMPP" else 8,
                restructured_lines=6 if variant == "best" else 0,
                data_regions=(data,),
                notes=(f"variant={variant}", "manually collapsed loops"))
        if model == "OpenMPC":
            style = "collapse" if variant == "best" else "rows"
            return PortSpec(
                model=model, program=_build(iters, style),
                directive_lines=2, restructured_lines=1,
                notes=(f"variant={variant}", "OpenMP collapse clause"))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=_build(iters, "2d"),
                directive_lines=2, restructured_lines=5,
                notes=("clamped (min/max) subscripts are quasi-affine",))
        if model == "Hand-Written CUDA":
            tile = TilingDecision(tile_dims=(16, 16), reuse_factor=3.5,
                                  smem_bytes_per_block=18 * 18 * 8,
                                  arrays=("temp", "temp2"))
            opts = RegionOptions(block_threads=256, tiling=(tile,))
            return PortSpec(
                model=model, program=_build(iters, "2d"),
                directive_lines=0, restructured_lines=60,
                data_regions=(data,),
                region_options={"step_ab": opts, "step_ba": opts},
                notes=("2-D partitioning + shared-memory tiling",))
        return self.derived_port(model, variant)

"""BFS — breadth-first search (Rodinia, Section V-B).

Frontier-based level-synchronous traversal of a random graph in CSR
adjacency form.  "Even though it has a very simple algorithm, its
irregular access patterns using a subscript array make it difficult to
achieve performance on the GPU.  Therefore, none of tested models
achieved reasonable performance" — every port here lands near 1x, and
the Luo/Wong/Hwu-style queue-based implementation that does beat the CPU
is *not expressible* in the directive models (Section V-B), so there is
deliberately no fast manual variant.

Regions (3):

* ``bfs_expand`` — visit the frontier, relax neighbours (indirect);
* ``bfs_update`` — promote the updating mask to the next frontier;
* ``level_histogram`` — an OpenMP *critical-section array reduction*
  with a data-dependent subscript (``hist[cost[i]] += 1``).  This is the
  **one region of the 58** only OpenMPC translates: the subscript's
  extent is runtime data, so it cannot be decomposed into scalar
  reductions the way EP's fixed ten counters were, and PGI/OpenACC/HMPP
  reject critical sections outright.
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import Graph, make_graph
from repro.ir.builder import (accum, aref, assign, block, critical, iff,
                              pfor, sfor, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)


def _build() -> Program:
    i, k = v("i"), v("k")
    nbr = aref("edges", k)
    expand = ParallelRegion(
        "bfs_expand",
        pfor("i", 0, v("n_nodes"), block(
            iff(aref("mask", i).eq(1), block(
                assign(aref("mask", i), 0),
                sfor("k", aref("node_start", i), aref("node_start", i + 1),
                     iff(aref("visited", nbr).eq(0), block(
                         assign(aref("cost", nbr), aref("cost", i) + 1),
                         assign(aref("updating", nbr), 1),
                     ))),
            )),
        ), private=["k"]))
    update = ParallelRegion(
        "bfs_update",
        pfor("i", 0, v("n_nodes"), block(
            iff(aref("updating", i).eq(1), block(
                assign(aref("mask", i), 1),
                assign(aref("visited", i), 1),
                assign(aref("updating", i), 0),
            )),
        )))
    histogram = ParallelRegion(
        "level_histogram",
        pfor("i", 0, v("n_nodes"),
             iff(aref("cost", i).ge(0),
                 critical(accum(aref("hist", aref("cost", i)), 1.0)))))
    return Program(
        "bfs",
        arrays=[
            ArrayDecl("node_start", ("n1",), dtype="int", intent="in"),
            ArrayDecl("edges", ("n_edges",), dtype="int", intent="in"),
            ArrayDecl("cost", ("n_nodes",), dtype="int"),
            ArrayDecl("mask", ("n_nodes",), dtype="int"),
            ArrayDecl("updating", ("n_nodes",), dtype="int", intent="temp"),
            ArrayDecl("visited", ("n_nodes",), dtype="int"),
            ArrayDecl("hist", ("n_nodes",), intent="out"),
        ],
        scalars=[ScalarDecl("n_nodes", "int"), ScalarDecl("n1", "int"),
                 ScalarDecl("n_edges", "int")],
        regions=[expand, update, histogram],
        domain="Graph algorithms", driver_lines=31)


def _bfs_levels(graph: Graph, source: int) -> np.ndarray:
    """Reference BFS levels (NumPy/level-synchronous)."""
    cost = np.full(graph.n_nodes, -1, dtype=np.int64)
    cost[source] = 0
    frontier = np.array([source], dtype=np.int64)
    visited = np.zeros(graph.n_nodes, dtype=bool)
    visited[source] = True
    level = 0
    while frontier.size:
        starts = graph.node_start[frontier]
        ends = graph.node_start[frontier + 1]
        neigh = np.concatenate([graph.edges[s:e]
                                for s, e in zip(starts, ends)])
        neigh = np.unique(neigh)
        new = neigh[~visited[neigh]]
        if new.size == 0:
            break
        level += 1
        visited[new] = True
        cost[new] = level
        frontier = new
    return cost


class Bfs(Benchmark):
    """Rodinia BFS benchmark."""

    name = "BFS"
    domain = "Graph algorithms"
    rtol = 0.0
    atol = 0.0

    def build_program(self) -> Program:
        return _build()

    # -- workload -----------------------------------------------------------
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        n = 500 if scale == "test" else 1_000_000
        graph = make_graph(n, avg_degree=6, seed=seed)
        source = 0
        cost = np.full(n, -1, dtype=np.int64)
        cost[source] = 0
        mask = np.zeros(n, dtype=np.int64)
        mask[source] = 1
        visited = np.zeros(n, dtype=np.int64)
        visited[source] = 1
        # the host driver loops until the frontier is empty; the level
        # count is a property of the input, precomputed here so the
        # schedule is static (required for timing-only runs)
        ref_cost = _bfs_levels(graph, source)
        n_levels = int(ref_cost.max()) + 1 if ref_cost.max() >= 0 else 1
        schedule: list[ScheduleStep] = []
        for _ in range(n_levels):
            schedule.append(ScheduleStep("bfs_expand"))
            schedule.append(ScheduleStep("bfs_update"))
        schedule.append(ScheduleStep("level_histogram"))
        return Workload(
            sizes={"n_nodes": n, "n_edges": graph.n_edges,
                   "n_levels": n_levels},
            arrays={"node_start": graph.node_start.copy(),
                    "edges": graph.edges.copy(),
                    "cost": cost, "mask": mask,
                    "updating": np.zeros(n, dtype=np.int64),
                    "visited": visited,
                    "hist": np.zeros(n)},
            scalars={"n_nodes": n, "n1": n + 1, "n_edges": graph.n_edges},
            schedule=schedule)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        graph = Graph(n_nodes=wl.sizes["n_nodes"],
                      node_start=wl.arrays["node_start"],
                      edges=wl.arrays["edges"])
        cost = _bfs_levels(graph, 0)
        hist = np.zeros(wl.sizes["n_nodes"])
        reached = cost[cost >= 0]
        np.add.at(hist, reached, 1.0)
        return {"cost": cost, "hist": hist}

    def output_arrays(self) -> tuple[str, ...]:
        return ("cost", "hist")

    # -- ports ---------------------------------------------------------------
    def port(self, model: str, variant: str = "best") -> PortSpec:
        prog = _build()
        data = DataRegionSpec(
            name="bfs_data",
            regions=("bfs_expand", "bfs_update", "level_histogram"),
            copyin=("node_start", "edges", "cost", "mask", "visited"),
            copyout=("cost", "hist"),
            create=("updating",))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            return PortSpec(
                model=model, program=prog,
                directive_lines=8,
                restructured_lines=3,
                data_regions=(data,),
                notes=("histogram region untranslatable: critical-section "
                       "array reduction with runtime extent",))
        if model == "OpenMPC":
            return PortSpec(
                model=model, program=prog, directive_lines=2,
                restructured_lines=0,
                notes=("critical-section array reduction handled",))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=prog, directive_lines=1,
                restructured_lines=6,
                notes=("data-dependent control flow throughout",))
        if model == "Hand-Written CUDA":
            opts = RegionOptions(block_threads=256)
            return PortSpec(
                model=model, program=prog, directive_lines=0,
                restructured_lines=40,
                data_regions=(data,),
                region_options={"bfs_expand": opts, "bfs_update": opts,
                                "level_histogram": opts},
                notes=("Rodinia-style mask-based CUDA BFS (the faster "
                       "queue-based algorithm is out of scope for all "
                       "models)",))
        return self.derived_port(model, variant)

"""FT — NAS 3-D FFT PDE benchmark (Section V-A).

Computes a 3-D FFT of a pseudo-random field and applies spectral
evolution factors, then checksums.  Complex data is stored as separate
re/im arrays, linearized — the paper's hand-written CUDA FT "transposes
the whole 3-D matrix so the 1st dimension is always parallelized for all
1-D FFT computations" and "linearizes all 2-D and 3-D arrays"; after
those same changes were applied to the *input* OpenMP code, all models
performed comparably.  Our port follows that final form: each FFT round
is a sequence of Stockham butterfly stages along the contiguous
dimension (ping-ponging between x and y buffers), then a cube rotation
brings the next dimension into the contiguous position.

The butterfly calls a ``fftz2``-style helper (as NAS FT factors its
butterflies), so the stage regions are interprocedural: OpenMPC
translates the call natively, PGI/OpenACC/HMPP auto-inline it, and
R-Stream rejects the stages (calls break extended static control) while
mapping the elementwise/rotation/copy/checksum regions.

Regions (9): ``indexmap`` (integer division chains, non-affine),
``init`` (LCG fill, non-affine), ``evolve`` (affine), ``stage_ab`` /
``stage_ba`` (function call, non-affine), ``rotate_ab`` (affine),
``copy_yx`` (affine), ``checksum`` (affine reduction), plus the final
``scale``-free checksum path — see the schedule.
"""

from __future__ import annotations

import math

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.ir.builder import (accum, aref, assign, block, c, call, idx,
                              local, pfor, reduce_clause, sfor, v)
from repro.ir.program import (ArrayDecl, Function, Param, ParallelRegion,
                              Program, ScalarDecl)
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

_LCG_A = 1103515245
_LCG_C = 12345
_LCG_M = 2147483648


def _fftz2_function() -> Function:
    """One butterfly pair: Y[o0], Y[o1] from X[i0], X[i1] and twiddle w."""
    body = block(
        local("t_re", init=aref("fxr", v("i0")) - aref("fxr", v("i1"))),
        local("t_im", init=aref("fxi", v("i0")) - aref("fxi", v("i1"))),
        assign(aref("fyr", v("o0")),
               aref("fxr", v("i0")) + aref("fxr", v("i1"))),
        assign(aref("fyi", v("o0")),
               aref("fxi", v("i0")) + aref("fxi", v("i1"))),
        assign(aref("fyr", v("o1")),
               v("t_re") * v("w_re") - v("t_im") * v("w_im")),
        assign(aref("fyi", v("o1")),
               v("t_re") * v("w_im") + v("t_im") * v("w_re")),
    )
    return Function(
        "fftz2",
        params=[Param("fxr", is_array=True), Param("fxi", is_array=True),
                Param("fyr", is_array=True), Param("fyi", is_array=True),
                Param("i0"), Param("i1"), Param("o0"), Param("o1"),
                Param("w_re"), Param("w_im")],
        body=body, inlinable=True)


def _vranlc_function() -> Function:
    """NAS-style RNG: two LCG draws into re/im at element ``e``."""
    body = block(
        assign(v("vs"), (c(_LCG_A) * v("vs") + c(_LCG_C)) % c(_LCG_M)),
        assign(aref("vre", v("ve")), v("vs") / c(float(_LCG_M))),
        assign(v("vs"), (c(_LCG_A) * v("vs") + c(_LCG_C)) % c(_LCG_M)),
        assign(aref("vim", v("ve")), v("vs") / c(float(_LCG_M))),
    )
    return Function(
        "vranlc",
        params=[Param("vre", is_array=True), Param("vim", is_array=True),
                Param("ve"), Param("vs")],
        body=body, inlinable=True)


def _stage_region(name: str, xr: str, xi: str, yr: str, yi: str,
                  invocations: int) -> ParallelRegion:
    """One Stockham stage over all lines.

    Per-stage scalars: ``l`` (butterfly groups) and ``m`` (group size),
    with ``l*m == n/2``.  ``line`` and ``jj`` are the parallel grid.
    """
    line, jj, k = idx("line", "jj", "k")
    base = line * v("n")
    body = sfor(
        "k", 0, v("m"),
        block(
            local("i0x", dtype="int", init=base + k + jj * v("m")),
            local("i1x", dtype="int",
                  init=base + k + jj * v("m") + v("l") * v("m")),
            local("o0x", dtype="int", init=base + k + 2 * jj * v("m")),
            local("o1x", dtype="int",
                  init=base + k + 2 * jj * v("m") + v("m")),
            local("wre", init=aref("wtab_re", jj * v("m"))),
            local("wim", init=aref("wtab_im", jj * v("m"))),
            call("fftz2", v(xr), v(xi), v(yr), v(yi),
                 v("i0x"), v("i1x"), v("o0x"), v("o1x"),
                 v("wre"), v("wim")),
        ))
    nest = pfor("line", 0, v("nlines"),
                pfor("jj", 0, v("l"), body, private=["k"]))
    return ParallelRegion(name, nest, invocations=invocations)


def _build(n_stage_invocations: int, with_clauses: bool = True) -> Program:
    e = v("e")
    i, j, k = idx("i", "j", "k")

    indexmap = ParallelRegion(
        "indexmap",
        pfor("e", 0, v("ntotal"), block(
            local("kx", dtype="int", init=(e % v("n"))),
            local("ky", dtype="int", init=((e // v("n")) % v("n"))),
            local("kz", dtype="int", init=(e // v("n2"))),
            local("kx2", init=(v("kx")
                               - (v("kx") // (v("n") // 2)) * v("n"))),
            local("ky2", init=(v("ky")
                               - (v("ky") // (v("n") // 2)) * v("n"))),
            local("kz2", init=(v("kz")
                               - (v("kz") // (v("n") // 2)) * v("n"))),
            # store through the reconstructed linear index, as NAS FT's
            # indexmap does (kz*n2 + ky*n + kx == e by construction) —
            # the data-dependent subscript is what keeps R-Stream out
            assign(aref("tw", v("kz") * v("n2") + v("ky") * v("n")
                        + v("kx")),
                   v("alpha") * (v("kx2") * v("kx2") + v("ky2") * v("ky2")
                                 + v("kz2") * v("kz2"))),
        )))
    # the pseudo-random fill goes through a vranlc-style RNG helper, as
    # in NAS FT (a user function call: interprocedural for OpenMPC,
    # inlined by PGI/HMPP, rejected by the polyhedral front end)
    init = ParallelRegion(
        "init",
        pfor("e", 0, v("ntotal"), block(
            local("s", dtype="int",
                  init=(v("seed0") + e * c(2654435761)) % c(_LCG_M)),
            call("vranlc", v("xr"), v("xi"), e, v("s")),
        ), private=["s"]))
    evolve = ParallelRegion(
        "evolve",
        pfor("e", 0, v("ntotal"), block(
            assign(aref("xr", e), aref("xr", e) * aref("tw", e)),
            assign(aref("xi", e), aref("xi", e) * aref("tw", e)),
        )), affine_hint=True)
    rotate = ParallelRegion(
        "rotate_ab",
        pfor("i", 0, v("n"),
             pfor("j", 0, v("n"),
                  sfor("k", 0, v("n"), block(
                      assign(aref("yr", k * v("n2") + i * v("n") + j),
                             aref("xr", i * v("n2") + j * v("n") + k)),
                      assign(aref("yi", k * v("n2") + i * v("n") + j),
                             aref("xi", i * v("n2") + j * v("n") + k)),
                  )), private=["k"])),
        invocations=3)
    copy_yx = ParallelRegion(
        "copy_yx",
        pfor("e", 0, v("ntotal"), block(
            assign(aref("xr", e), aref("yr", e)),
            assign(aref("xi", e), aref("yi", e)),
        )), invocations=3, affine_hint=True)
    # NAS FT checksums through the modular stride (5*j) mod ntotal — a
    # non-affine subscript (gcd(5, 2^k) = 1, so it is a permutation and
    # the sums equal the plain totals)
    perm = (5 * e) % v("ntotal")
    checksum = ParallelRegion(
        "checksum",
        pfor("e", 0, v("ntotal"), block(
            accum(aref("chk", 0), aref("xr", perm)),
            accum(aref("chk", 1), aref("xi", perm)),
        ), reductions=(reduce_clause("+", "chk"),) if with_clauses else ()))

    return Program(
        "ft",
        arrays=[
            ArrayDecl("xr", ("ntotal",)), ArrayDecl("xi", ("ntotal",)),
            ArrayDecl("yr", ("ntotal",), intent="temp"),
            ArrayDecl("yi", ("ntotal",), intent="temp"),
            ArrayDecl("tw", ("ntotal",), intent="temp"),
            ArrayDecl("wtab_re", ("nhalf",), intent="in"),
            ArrayDecl("wtab_im", ("nhalf",), intent="in"),
            ArrayDecl("chk", (2,), intent="out"),
        ],
        scalars=[ScalarDecl("n", "int"), ScalarDecl("n2", "int"),
                 ScalarDecl("ntotal", "int"), ScalarDecl("nhalf", "int"),
                 ScalarDecl("nlines", "int"), ScalarDecl("l", "int"),
                 ScalarDecl("m", "int"), ScalarDecl("seed0", "int"),
                 ScalarDecl("alpha")],
        regions=[indexmap, init, evolve,
                 _stage_region("stage_ab", "xr", "xi", "yr", "yi",
                               n_stage_invocations),
                 _stage_region("stage_ba", "yr", "yi", "xr", "xi",
                               n_stage_invocations),
                 rotate, copy_yx, checksum],
        functions=[_fftz2_function(), _vranlc_function()],
        domain="Spectral methods", driver_lines=138)


class Ft(Benchmark):
    """NAS FT benchmark."""

    name = "FT"
    domain = "Spectral methods"
    rtol = 1e-7
    atol = 1e-9

    def build_program(self) -> Program:
        # 3 dims x log2(n)/2 invocations of each ping/pong stage
        return _build(n_stage_invocations=12)

    # -- workload -----------------------------------------------------------
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        n = 16 if scale == "test" else 256
        log_n = int(math.log2(n))
        assert log_n % 2 == 0, "FT sizes must have even log2 (ping-pong)"
        n2 = n * n
        ntotal = n2 * n
        nhalf = n // 2
        jm = np.arange(nhalf)
        wtab = np.exp(-2j * np.pi * jm / n)
        steps: list[ScheduleStep] = [
            ScheduleStep("indexmap"), ScheduleStep("init")]
        for _dim in range(3):
            l, m = n // 2, 1
            for s in range(log_n):
                steps.append(ScheduleStep(
                    "stage_ab" if s % 2 == 0 else "stage_ba",
                    scalars={"l": l, "m": m}))
                l //= 2
                m *= 2
            # even log2(n): the round ends in the x buffers
            steps.append(ScheduleStep("rotate_ab"))
            steps.append(ScheduleStep("copy_yx"))
        steps.append(ScheduleStep("evolve"))
        steps.append(ScheduleStep("checksum"))
        arrays = {
            "xr": np.zeros(ntotal), "xi": np.zeros(ntotal),
            "yr": np.zeros(ntotal), "yi": np.zeros(ntotal),
            "tw": np.zeros(ntotal),
            "wtab_re": wtab.real.copy(), "wtab_im": wtab.imag.copy(),
            "chk": np.zeros(2),
        }
        scalars = {"n": n, "n2": n2, "ntotal": ntotal, "nhalf": nhalf,
                   "nlines": n2, "l": 1, "m": 1,
                   "seed0": 314159 + seed, "alpha": 1e-6}
        return Workload(sizes={"n": n, "ntotal": ntotal, "log_n": log_n},
                        arrays=arrays, scalars=scalars, schedule=steps)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        n = wl.sizes["n"]
        ntotal = wl.sizes["ntotal"]
        seed0 = int(wl.scalars["seed0"])
        alpha = wl.scalars["alpha"]
        e = np.arange(ntotal, dtype=np.int64)
        s = (seed0 + e * 2654435761) % _LCG_M
        s = (_LCG_A * s + _LCG_C) % _LCG_M
        xr = s / float(_LCG_M)
        s = (_LCG_A * s + _LCG_C) % _LCG_M
        xi = s / float(_LCG_M)
        x = (xr + 1j * xi).reshape(n, n, n)
        for _dim in range(3):
            x = np.fft.fft(x, axis=2)
            x = np.transpose(x, (2, 0, 1))
        kx = e % n
        ky = (e // n) % n
        kz = e // (n * n)
        half = n // 2
        kx2 = kx - (kx // half) * n
        ky2 = ky - (ky // half) * n
        kz2 = kz - (kz // half) * n
        tw = alpha * (kx2 * kx2 + ky2 * ky2 + kz2 * kz2)
        flat = x.reshape(-1) * tw
        return {"xr": flat.real.copy(), "xi": flat.imag.copy(),
                "chk": np.array([flat.real.sum(), flat.imag.sum()])}

    def output_arrays(self) -> tuple[str, ...]:
        return ("xr", "xi", "chk")

    # -- ports ---------------------------------------------------------------
    def port(self, model: str, variant: str = "best") -> PortSpec:
        prog = _build(n_stage_invocations=12,
                      with_clauses=(model != "PGI Accelerator"))
        all_regions = tuple(r.name for r in prog.regions)
        data = DataRegionSpec(
            name="ft_data", regions=all_regions,
            copyin=("wtab_re", "wtab_im"),
            copyout=("xr", "xi", "chk"),
            create=("yr", "yi", "tw"))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            return PortSpec(
                model=model, program=prog,
                directive_lines=18,
                restructured_lines=22,  # transposition + linearization
                data_regions=(data,),
                notes=("input transposed + linearized as in the "
                       "hand-written CUDA version",))
        if model == "OpenMPC":
            return PortSpec(
                model=model, program=prog, directive_lines=3,
                restructured_lines=22,
                notes=("same input restructuring; interprocedural "
                       "translation of the fftz2 call",))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=prog, directive_lines=3,
                restructured_lines=26,
                notes=("FFT stages call fftz2: not static control",))
        if model == "Hand-Written CUDA":
            opts = RegionOptions(block_threads=256)
            return PortSpec(
                model=model, program=prog, directive_lines=0,
                restructured_lines=90,
                data_regions=(data,),
                region_options={name: RegionOptions(block_threads=256)
                                for name in all_regions},
                notes=("Hpcgpu-project-style FT",))
        return self.derived_port(model, variant)

"""CG — NAS Conjugate Gradient benchmark (Section V-A).

Estimates the smallest eigenvalue of a sparse SPD matrix with inverse
power iteration; each outer iteration runs ``cgitmax`` conjugate-gradient
steps.  The paper's CG story:

* parallel loops span several procedures → complex CPU↔GPU transfer
  patterns.  OpenMPC optimizes them automatically (interprocedural data
  flow); every other model needs extensive data clauses (our ports carry
  a program-wide data region and the directive-line cost that goes with
  it).
* OpenMPC wins on kernel time through *loop collapsing* of the CSR
  traversal; the PGI compiler instead leans on shared memory.

Regions (12): two irregular SpMV regions (``spmv_q``, ``spmv_r``), and
ten affine vector regions (init, dots with reduction clauses, AXPYs, the
final scaling) — the mappable share of CG for R-Stream.

Per-iteration reduction slots (``rho[k]``, ``dpq[k]``) keep the program
race-free without host-side scalars: ``alpha``/``beta`` are recomputed
from the slots inside the consuming kernels (uniform loads).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import CsrMatrix, make_csr
from repro.gpusim.memory import MemorySpace
from repro.ir.builder import (accum, aref, assign, block, idx, intrinsic,
                              pfor, reduce_clause, sfor, v)
from repro.ir.program import ArrayDecl, ParallelRegion, Program, ScalarDecl
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

_CGIT_TEST = 4
_CGIT_PAPER = 25


def _spmv(name: str, dest: str, src: str, invocations: int) -> ParallelRegion:
    i, k = idx("i", "k")
    body = block(
        assign(aref(dest, i), 0.0),
        sfor("k", aref("rowstr", i), aref("rowstr", i + 1),
             accum(aref(dest, i),
                   aref("a", k) * aref(src, aref("colidx", k)))),
    )
    return ParallelRegion(name, pfor("i", 0, v("n"), body, private=["k"]),
                          invocations=invocations)


def _dot(name: str, slot_array: str, xa: str, ya: str, slot: str,
         invocations: int, with_clause: bool) -> ParallelRegion:
    i = v("i")
    clauses = (reduce_clause("+", slot_array),) if with_clause else ()
    return ParallelRegion(
        name,
        pfor("i", 0, v("n"),
             accum(aref(slot_array, v(slot)), aref(xa, i) * aref(ya, i)),
             reductions=clauses),
        invocations=invocations)


def _build(cgitmax: int, with_clauses: bool = True) -> Program:
    i = v("i")
    k = v("k")

    init_x = ParallelRegion(
        "init_x", pfor("i", 0, v("n"), assign(aref("x", i), 1.0)))
    init_cg = ParallelRegion(
        "init_cg",
        pfor("i", 0, v("n"), block(
            assign(aref("q", i), 0.0),
            assign(aref("z", i), 0.0),
            assign(aref("r", i), aref("x", i)),
            assign(aref("p", i), aref("x", i)),
        )))
    rho0 = _dot("rho0", "rho", "r", "r", "kk", 1, with_clauses)
    spmv_q = _spmv("spmv_q", "q", "p", cgitmax)
    dot_pq = _dot("dot_pq", "dpq", "p", "q", "kk", cgitmax, with_clauses)

    alpha = aref("rho", k) / aref("dpq", k)
    update_zr = ParallelRegion(
        "update_zr",
        pfor("i", 0, v("n"), block(
            accum(aref("z", i), alpha * aref("p", i)),
            accum(aref("r", i), -(alpha * aref("q", i))),
        )),
        invocations=cgitmax)
    rho_new = _dot("rho_new", "rho", "r", "r", "k1", cgitmax, with_clauses)
    beta = aref("rho", v("k1")) / aref("rho", k)
    update_p = ParallelRegion(
        "update_p",
        pfor("i", 0, v("n"),
             assign(aref("p", i), aref("r", i) + beta * aref("p", i))),
        invocations=cgitmax)

    spmv_r = _spmv("spmv_r", "r2", "z", 1)
    residual = ParallelRegion(
        "residual",
        pfor("i", 0, v("n"),
             accum(aref("sumr", 0),
                   (aref("x", i) - aref("r2", i))
                   * (aref("x", i) - aref("r2", i))),
             reductions=(reduce_clause("+", "sumr"),) if with_clauses else ()))
    norm_z = _dot("norm_z", "znorm", "z", "z", "zero", 1, with_clauses)
    scale_x = ParallelRegion(
        "scale_x",
        pfor("i", 0, v("n"),
             assign(aref("x", i),
                    aref("z", i) / intrinsic("sqrt", aref("znorm", 0)))))

    n_slots = cgitmax + 1
    return Program(
        "cg",
        arrays=[
            ArrayDecl("rowstr", ("n1",), dtype="int", intent="in"),
            ArrayDecl("colidx", ("nnz",), dtype="int", intent="in"),
            ArrayDecl("a", ("nnz",), intent="in"),
            ArrayDecl("x", ("n",)),
            ArrayDecl("z", ("n",), intent="temp"),
            ArrayDecl("p", ("n",), intent="temp"),
            ArrayDecl("q", ("n",), intent="temp"),
            ArrayDecl("r", ("n",), intent="temp"),
            ArrayDecl("r2", ("n",), intent="temp"),
            ArrayDecl("rho", (n_slots,), intent="temp"),
            ArrayDecl("dpq", (n_slots,), intent="temp"),
            ArrayDecl("sumr", (1,), intent="out"),
            ArrayDecl("znorm", (1,), intent="temp"),
        ],
        scalars=[ScalarDecl("n", "int"), ScalarDecl("n1", "int"),
                 ScalarDecl("nnz", "int"), ScalarDecl("k", "int"),
                 ScalarDecl("k1", "int"), ScalarDecl("kk", "int"),
                 ScalarDecl("zero", "int")],
        regions=[init_x, init_cg, rho0, spmv_q, dot_pq, update_zr,
                 rho_new, update_p, spmv_r, residual, norm_z, scale_x],
        domain="Sparse linear algebra / eigenvalue estimation", driver_lines=156)


class Cg(Benchmark):
    """NAS CG benchmark."""

    name = "CG"
    domain = "Sparse linear algebra"
    rtol = 1e-6
    atol = 1e-8

    def build_program(self) -> Program:
        return _build(_CGIT_PAPER)

    # -- workload -----------------------------------------------------------
    def _matrix(self, scale: str, seed: int) -> CsrMatrix:
        n = 150 if scale == "test" else 75_000
        return make_csr(n, avg_nnz_per_row=13, seed=seed)

    def _cgitmax(self, scale: str) -> int:
        return _CGIT_TEST if scale == "test" else _CGIT_PAPER

    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        mat = self._matrix(scale, seed)
        cgitmax = self._cgitmax(scale)
        schedule: list[ScheduleStep] = [
            ScheduleStep("init_x"),
            ScheduleStep("init_cg"),
            ScheduleStep("rho0", scalars={"kk": 0}),
        ]
        for k in range(cgitmax):
            schedule.append(ScheduleStep("spmv_q"))
            schedule.append(ScheduleStep("dot_pq", scalars={"kk": k, "k": k}))
            schedule.append(ScheduleStep("update_zr", scalars={"k": k}))
            schedule.append(ScheduleStep("rho_new",
                                         scalars={"k1": k + 1, "kk": k + 1}))
            schedule.append(ScheduleStep("update_p",
                                         scalars={"k": k, "k1": k + 1}))
        schedule.append(ScheduleStep("spmv_r"))
        schedule.append(ScheduleStep("residual"))
        schedule.append(ScheduleStep("norm_z", scalars={"zero": 0}))
        schedule.append(ScheduleStep("scale_x"))
        n_slots = _CGIT_PAPER + 1 if scale != "test" else _CGIT_TEST + 1
        return Workload(
            sizes={"n": mat.n, "nnz": mat.nnz, "cgitmax": cgitmax},
            arrays={"rowstr": mat.rowstr.copy(), "colidx": mat.colidx.copy(),
                    "a": mat.values.copy(),
                    "x": np.zeros(mat.n), "z": np.zeros(mat.n),
                    "p": np.zeros(mat.n), "q": np.zeros(mat.n),
                    "r": np.zeros(mat.n), "r2": np.zeros(mat.n),
                    "rho": np.zeros(n_slots), "dpq": np.zeros(n_slots),
                    "sumr": np.zeros(1), "znorm": np.zeros(1)},
            scalars={"n": mat.n, "n1": mat.n + 1, "nnz": mat.nnz,
                     "k": 0, "k1": 0, "kk": 0, "zero": 0},
            schedule=schedule)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        rowstr, colidx = wl.arrays["rowstr"], wl.arrays["colidx"]
        a = wl.arrays["a"]
        n = wl.sizes["n"]
        src = np.repeat(np.arange(n), np.diff(rowstr))

        def spmv(vec: np.ndarray) -> np.ndarray:
            out = np.zeros(n)
            np.add.at(out, src, a * vec[colidx])
            return out

        x = np.ones(n)
        z = np.zeros(n)
        r = x.copy()
        p = x.copy()
        rho = float(r @ r)
        for _ in range(wl.sizes["cgitmax"]):
            q = spmv(p)
            alpha = rho / float(p @ q)
            z = z + alpha * p
            r = r - alpha * q
            rho_new = float(r @ r)
            beta = rho_new / rho
            p = r + beta * p
            rho = rho_new
        r2 = spmv(z)
        sumr = float(((x - r2) ** 2).sum())
        znorm = float(z @ z)
        x = z / np.sqrt(znorm)
        return {"x": x, "sumr": np.array([sumr])}

    def output_arrays(self) -> tuple[str, ...]:
        return ("x", "sumr")

    # -- ports ---------------------------------------------------------------
    def variants(self, model: str) -> tuple[str, ...]:
        if model in ("PGI Accelerator", "OpenACC", "HMPP", "OpenMPC"):
            return ("best", "naive")
        return ("best",)

    def port(self, model: str, variant: str = "best") -> PortSpec:
        cgitmax = _CGIT_PAPER
        prog = _build(cgitmax, with_clauses=(model != "PGI Accelerator"))
        all_regions = tuple(r.name for r in prog.regions)
        arrays_in = ("rowstr", "colidx", "a")
        data = DataRegionSpec(
            name="cg_data", regions=all_regions,
            copyin=arrays_in,
            copyout=("x", "sumr"),
            create=("z", "p", "q", "r", "r2", "rho", "dpq", "znorm"))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            # "all the other GPU models demand extensive use of data
            # clauses to optimize the complex communication patterns"
            dr = (data,) if variant == "best" else ()
            return PortSpec(
                model=model, program=prog,
                directive_lines=30,
                restructured_lines=10,
                data_regions=dr,
                notes=(f"variant={variant}",
                       "extensive data clauses across procedures"))
        if model == "OpenMPC":
            opts = RegionOptions(
                disable_auto_transforms=(variant == "naive"))
            return PortSpec(
                model=model, program=prog, directive_lines=4,
                restructured_lines=0,
                region_options={"spmv_q": opts, "spmv_r": opts},
                notes=(f"variant={variant}",
                       "interprocedural transfer optimization + loop "
                       "collapsing"))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=prog, directive_lines=4,
                restructured_lines=12,
                notes=("SpMV regions are non-affine; vector regions map",))
        if model == "Hand-Written CUDA":
            spmv_opts = RegionOptions(
                block_threads=128,
                placements={"p": MemorySpace.TEXTURE,
                            "z": MemorySpace.TEXTURE})
            return PortSpec(
                model=model, program=prog, directive_lines=0,
                restructured_lines=120,
                data_regions=(data,),
                region_options={"spmv_q": spmv_opts, "spmv_r": spmv_opts},
                notes=("hand CUDA CG with texture-cached gather vectors",))
        return self.derived_port(model, variant)

"""Synthetic input generators for the benchmark suite.

The paper used the benchmarks' own input generators (NAS classes, Rodinia
data files); offline we synthesize statistically similar inputs — CSR
sparse matrices with banded random sparsity (NAS CG style), random
layered graphs for BFS, smooth random fields for the stencil codes — all
deterministic under a caller-provided seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CsrMatrix:
    """A square CSR sparse matrix (the SPMUL/CG substrate)."""

    n: int
    rowstr: np.ndarray  # int64[n+1]
    colidx: np.ndarray  # int64[nnz]
    values: np.ndarray  # float64[nnz]

    @property
    def nnz(self) -> int:
        return int(self.rowstr[-1])

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.n, self.n))
        rows = np.repeat(np.arange(self.n), np.diff(self.rowstr))
        np.add.at(dense, (rows, self.colidx), self.values)
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """NumPy reference SpMV."""
        y = np.zeros(self.n)
        np.add.at(y, np.repeat(np.arange(self.n),
                               np.diff(self.rowstr)),
                  self.values * x[self.colidx])
        return y


def make_csr(n: int, avg_nnz_per_row: int = 16, bandwidth_frac: float = 0.2,
             spd: bool = True, seed: int = 0) -> CsrMatrix:
    """Random banded CSR matrix, optionally diagonally dominant (CG).

    Fully vectorized (the evaluation sizes reach n=150k): row lengths are
    Poisson-distributed (the trip-count variance the SpMV divergence
    story needs), columns are sampled within a band around the diagonal
    (duplicate columns within a row are possible but rare and benign —
    CSR semantics simply sum them), and the first entry of each row is
    the dominant diagonal when ``spd``.
    """
    rng = np.random.default_rng(seed)
    band = max(2, int(n * bandwidth_frac))
    counts = rng.poisson(max(1, avg_nnz_per_row - 1), size=n) + 1
    counts = np.minimum(counts, band).astype(np.int64)
    kmax = int(counts.max())
    rows = np.arange(n, dtype=np.int64)
    offs = rng.integers(-(band // 2), band // 2 + 1, size=(n, kmax))
    cols = np.clip(rows[:, None] + offs, 0, n - 1)
    vals = rng.standard_normal((n, kmax)) * 0.1
    if spd:
        cols[:, 0] = rows
        vals[:, 0] = avg_nnz_per_row + 1.0  # dominance
    # keep each row's active prefix sorted by column for CSR hygiene
    mask = np.arange(kmax)[None, :] < counts[:, None]
    cols_sortable = np.where(mask, cols, n + 1)
    order = np.argsort(cols_sortable, axis=1, kind="stable")
    cols = np.take_along_axis(cols, order, axis=1)
    vals = np.take_along_axis(vals, order, axis=1)
    mask = np.take_along_axis(mask, order, axis=1)
    rowstr = np.zeros(n + 1, dtype=np.int64)
    rowstr[1:] = np.cumsum(counts)
    return CsrMatrix(n=n, rowstr=rowstr,
                     colidx=cols[mask].astype(np.int64),
                     values=vals[mask])


def make_grid(n: int, m: int | None = None, seed: int = 0,
              smooth: bool = True) -> np.ndarray:
    """A random 2-D field; smoothed once so stencil codes behave sanely."""
    rng = np.random.default_rng(seed)
    m = m or n
    field = rng.random((n, m))
    if smooth and n > 4 and m > 4:
        field[1:-1, 1:-1] = 0.25 * (field[:-2, 1:-1] + field[2:, 1:-1]
                                    + field[1:-1, :-2] + field[1:-1, 2:])
    return field


@dataclass(frozen=True)
class Graph:
    """A directed graph in CSR adjacency form (the BFS substrate)."""

    n_nodes: int
    node_start: np.ndarray  # int64[n_nodes+1]
    edges: np.ndarray       # int64[n_edges]

    @property
    def n_edges(self) -> int:
        return int(self.node_start[-1])


def make_graph(n_nodes: int, avg_degree: int = 6, seed: int = 0) -> Graph:
    """Random graph with mild locality (Rodinia BFS inputs are similar)."""
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(avg_degree, size=n_nodes).clip(1, None)
    starts = np.zeros(n_nodes + 1, dtype=np.int64)
    starts[1:] = np.cumsum(degrees)
    # half local edges, half uniform
    n_edges = int(starts[-1])
    src = np.repeat(np.arange(n_nodes), degrees)
    local = (src + rng.integers(-16, 17, size=n_edges)) % n_nodes
    uniform = rng.integers(0, n_nodes, size=n_edges)
    pick = rng.random(n_edges) < 0.5
    edges = np.where(pick, local, uniform).astype(np.int64)
    return Graph(n_nodes=n_nodes, node_start=starts, edges=edges)


def make_clusters(n_points: int, n_features: int, n_clusters: int,
                  seed: int = 0) -> np.ndarray:
    """Gaussian blobs for KMEANS."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-5, 5, size=(n_clusters, n_features))
    labels = rng.integers(0, n_clusters, size=n_points)
    return (centers[labels]
            + rng.standard_normal((n_points, n_features)) * 0.5)


def make_sequences(n: int, alphabet: int = 4, seed: int = 0,
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Two random DNA-like integer sequences for NW."""
    rng = np.random.default_rng(seed)
    return (rng.integers(0, alphabet, size=n).astype(np.int64),
            rng.integers(0, alphabet, size=n).astype(np.int64))


def make_blosum(alphabet: int = 4, seed: int = 0) -> np.ndarray:
    """A small random symmetric substitution-score matrix for NW."""
    rng = np.random.default_rng(seed)
    m = rng.integers(-4, 5, size=(alphabet, alphabet)).astype(np.float64)
    m = (m + m.T) / 2.0
    np.fill_diagonal(m, rng.integers(3, 8, size=alphabet))
    return m


def make_spd_dense(n: int, seed: int = 0) -> np.ndarray:
    """A dense LU-factorizable matrix (diagonally dominant) for LUD."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) * 0.1
    a += np.eye(n) * (n * 0.05 + 1.0)
    return a

"""Benchmark framework: the thirteen applications plug in here.

Each benchmark provides:

* the **OpenMP input program** (IR) — the single source of truth the
  paper's methodology starts from;
* a **workload** (arrays + scalars + a region schedule) at two scales:
  ``test`` (small, functionally executed and validated) and ``paper``
  (evaluation-sized, priced analytically with ``execute=False``);
* a **NumPy reference** implementation for validation;
* **ports** to each model, possibly with restructured input programs,
  directives, data regions, and tuning variants — the raw material of
  Table II and Figure 1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.cpu.host import KEENELAND_HOST, HostSpec, price_region_serial
from repro.errors import BenchmarkError
from repro.gpusim.device import TESLA_M2090, DeviceSpec
from repro.gpusim.runtime import CudaRuntime
from repro.gpusim.timing import TimingConfig
from repro.ir.program import Program
from repro.metrics.speedup import SpeedupResult
from repro.models.base import (CompiledProgram, ExecutableProgram, PortSpec,
                               ScheduleStep)
from repro.models import get_compiler
from repro.obs import tracer as obs

Value = Union[int, float]

#: canonical model list every benchmark must port to
ALL_MODELS: tuple[str, ...] = (
    "PGI Accelerator", "OpenACC", "HMPP", "OpenMPC", "R-Stream",
    "Hand-Written CUDA",
)


@dataclass
class Workload:
    """One problem instance: inputs, sizes, and the host-driver schedule."""

    sizes: Mapping[str, int]
    arrays: dict[str, np.ndarray]
    scalars: dict[str, Value]
    schedule: list[ScheduleStep]

    def copy_arrays(self) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self.arrays.items()}


class Benchmark(abc.ABC):
    """Base class of the thirteen applications."""

    #: short name as used in Figure 1 ("JACOBI", "EP", ...)
    name: str = "abstract"
    #: application domain label
    domain: str = ""
    #: element dtype of the dominant arrays
    dtype: str = "double"
    #: validation tolerance against the NumPy reference
    rtol: float = 1e-8
    atol: float = 1e-10

    def __init__(self) -> None:
        self._program: Optional[Program] = None

    # -- the OpenMP input --------------------------------------------------
    @abc.abstractmethod
    def build_program(self) -> Program:
        """Construct the original OpenMP input program."""

    @property
    def program(self) -> Program:
        if self._program is None:
            self._program = self.build_program()
        return self._program

    # -- workloads --------------------------------------------------------
    @abc.abstractmethod
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        """Build a problem instance at ``scale`` in {"test", "paper"}."""

    @abc.abstractmethod
    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        """Expected final contents of :meth:`output_arrays` (NumPy)."""

    @abc.abstractmethod
    def output_arrays(self) -> tuple[str, ...]:
        """Arrays whose final values validation compares."""

    # -- ports -----------------------------------------------------------
    @abc.abstractmethod
    def port(self, model: str, variant: str = "best") -> PortSpec:
        """The port of this benchmark to ``model``.

        ``variant`` selects a tuning point; every benchmark supports at
        least ``"best"``.  Untuned/naive points (``"naive"``) feed the
        'performance variation by tuning' whiskers of Figure 1.
        """

    def variants(self, model: str) -> tuple[str, ...]:
        """Tuning variants available for ``model``."""
        return ("best",)

    def derived_port(self, model: str, variant: str = "best") -> PortSpec:
        """Ports derived through the directive IR, not hand-written.

        ``port`` implementations fall through here for models they have
        no hand-written annotations for.  Currently the OpenMP-target
        model is derivable (from the benchmark's OpenMPC annotations via
        :func:`repro.directives.derive_port`); any other model keeps the
        historical ``KeyError``.
        """
        from repro.directives import derive_port
        return derive_port(self, model, variant)

    # -- execution ---------------------------------------------------------
    def compile(self, model: str, variant: str = "best",
                elide_transfers: bool = False) -> CompiledProgram:
        port = self.port(model, variant)
        if elide_transfers:
            from dataclasses import replace
            port = replace(port, elide_transfers=True)
        return get_compiler(model).compile_program(port)

    def run(self, model: str, variant: str = "best", scale: str = "test",
            seed: int = 0, execute: bool = True,
            device: DeviceSpec = TESLA_M2090,
            timing: Optional[TimingConfig] = None,
            host: HostSpec = KEENELAND_HOST,
            validate: Optional[bool] = None,
            compiled: Optional[CompiledProgram] = None,
            elide_transfers: bool = False) -> "RunOutcome":
        """Compile, execute (optionally functionally), and price a run.

        ``compiled`` lets callers that memoize compilation (the harness
        sweeps, the profiler) pass the lowered program in instead of
        recompiling; it must come from this benchmark's
        ``port(model, variant)``.  ``elide_transfers`` compiles (when
        ``compiled`` is not supplied) the elide-transfers flavour of the
        port, whose runtime guards skip provably redundant transfers.
        """
        with obs.span("bench.run", category="harness", benchmark=self.name,
                      model=model, variant=variant, scale=scale):
            outcome = self._run(model, variant, scale, seed, execute, device,
                                timing, host, validate, compiled,
                                elide_transfers)
            obs.set_attr("speedup", round(outcome.speedup.speedup, 4))
            obs.set_attr("gpu_time_s", outcome.speedup.gpu_time_s)
            if outcome.validated is not None:
                obs.set_attr("validated", outcome.validated)
            return outcome

    def _run(self, model: str, variant: str, scale: str, seed: int,
             execute: bool, device: DeviceSpec,
             timing: Optional[TimingConfig], host: HostSpec,
             validate: Optional[bool],
             compiled: Optional[CompiledProgram],
             elide_transfers: bool = False) -> "RunOutcome":
        if compiled is None:
            compiled = self.compile(model, variant,
                                    elide_transfers=elide_transfers)
        wl = self.workload(scale=scale, seed=seed)
        rt = CudaRuntime(spec=device, timing=timing, execute=execute)
        ex = ExecutableProgram(compiled, runtime=rt, host=host)
        arrays = self.arrays_for(model, variant, wl)
        if not execute:
            # timing-only runs need shapes, not private copies
            pass
        ex.bind_arrays(arrays)
        schedule = self.schedule_for(model, variant, wl)
        for step in schedule:
            bindings = dict(wl.scalars)
            bindings.update(step.scalars)
            ex.run_region(step.region, bindings, times=step.times)
        ex.close_data_regions()

        validated: Optional[bool] = None
        errors: list[str] = []
        if validate is None:
            validate = execute
        if validate:
            if not execute:
                raise BenchmarkError("cannot validate a timing-only run")
            expected = self.reference(wl)
            validated = True
            for name in self.output_arrays():
                got = self.canonical_output(name, arrays[name], model,
                                            variant, wl)
                want = expected[name]
                if not np.allclose(got, want, rtol=self.rtol, atol=self.atol):
                    validated = False
                    bad = np.max(np.abs(np.asarray(got, dtype=float)
                                        - np.asarray(want, dtype=float)))
                    errors.append(f"{name}: max abs err {bad:.3e}")

        cpu_s = self.cpu_time(wl, host=host)
        result = SpeedupResult(
            benchmark=self.name, model=model, variant=variant,
            cpu_time_s=cpu_s, gpu_time_s=ex.gpu_time_s,
            kernel_time_s=rt.profiler.kernel_time_s,
            transfer_time_s=rt.profiler.transfer_time_s,
            host_fallback_s=ex.host_time_s)
        return RunOutcome(benchmark=self.name, model=model, variant=variant,
                          compiled=compiled, executable=ex, arrays=arrays,
                          speedup=result, validated=validated,
                          validation_errors=errors)

    def arrays_for(self, model: str, variant: str,
                   wl: Workload) -> dict[str, np.ndarray]:
        """Host arrays in the layout the port's program expects.

        Defaults to private copies of the canonical workload arrays;
        ports that re-lay data out (transposed BACKPROP weights) override
        this and return re-laid copies.
        """
        return wl.copy_arrays()

    def schedule_for(self, model: str, variant: str,
                     wl: Workload) -> list[ScheduleStep]:
        """The region schedule a given port's host driver runs.

        Defaults to the workload's canonical schedule; ports whose manual
        restructuring changes the host loop structure (blocked NW/LUD)
        override this.  The CPU baseline always prices the canonical
        schedule.
        """
        return wl.schedule

    def canonical_output(self, name: str, array: np.ndarray, model: str,
                         variant: str, wl: Workload) -> np.ndarray:
        """Convert a port's output array to the reference layout.

        Ports that restructure data layouts (the CFD SoA change) override
        this so validation compares like with like.
        """
        return array

    def cpu_time(self, wl: Workload, host: HostSpec = KEENELAND_HOST) -> float:
        """Analytical serial-CPU time of the workload's schedule."""
        program = self.program
        extents = {name: list(arr.shape) for name, arr in wl.arrays.items()}
        bindings = {k: float(v) for k, v in wl.scalars.items()}
        total = 0.0
        cache: dict[tuple, float] = {}
        for step in wl.schedule:
            region = program.region(step.region)
            key = (step.region, tuple(sorted(step.scalars.items())))
            if key not in cache:
                step_bindings = dict(bindings)
                step_bindings.update({k: float(x)
                                      for k, x in step.scalars.items()})
                per_invocation = price_region_serial(
                    region, extents, step_bindings, dtype=self.dtype,
                    spec=host)
                cache[key] = per_invocation / max(1, region.invocations)
            total += cache[key] * step.times
        return total


@dataclass
class RunOutcome:
    """Everything one benchmark run produced."""

    benchmark: str
    model: str
    variant: str
    compiled: CompiledProgram
    executable: ExecutableProgram
    arrays: dict[str, np.ndarray]
    speedup: SpeedupResult
    validated: Optional[bool]
    validation_errors: list[str] = field(default_factory=list)

    def require_valid(self) -> None:
        if self.validated is False:
            raise BenchmarkError(
                f"{self.benchmark}/{self.model}[{self.variant}] failed "
                f"validation: {'; '.join(self.validation_errors)}")

"""CFD — unstructured-grid 3-D Euler solver (Rodinia euler3d, §V-B).

Finite-volume solver on an unstructured mesh: per element, fluxes are
accumulated over the (up to four) neighbouring elements reached through
the ``elements_surrounding`` indirection table, then an explicit time
step advances the conserved variables.

The paper's CFD story: the five conserved variables per element are
stored interleaved in one 1-D array (``variables[i*NVAR + j]``) — a 2-D
matrix in a 1-D array with "complex subscript expressions" that the
compilers cannot re-layout.  The stride-5 interleaving makes every
access uncoalesced; the manual version changes the layout to
structure-of-arrays (``variables[j*nelr + i]``) and after the same
change is applied to the *input* code, all models get close; OpenMPC
edges ahead with constant/texture caching of the read-only mesh data.

Regions (7): ``init_flat`` (``% NVAR`` recovery — non-affine),
``copy_old`` (affine), ``step_factor`` (calls helper functions —
non-affine for R-Stream), ``flux`` (indirection + calls — non-affine),
``time_step`` (affine), ``reduce_rms`` (affine reduction),
``apply_bc`` (boundary indirection — non-affine).
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks.base import Benchmark, Workload
from repro.benchmarks.data import make_graph
from repro.gpusim.memory import MemorySpace
from repro.ir.builder import (accum, aref, assign, block, call, iff,
                              intrinsic, local, pfor, reduce_clause, sfor, v)
from repro.ir.program import (ArrayDecl, Function, Param, ParallelRegion,
                              Program, ScalarDecl)
from repro.models.base import (DataRegionSpec, PortSpec, RegionOptions,
                               ScheduleStep)

NVAR = 5
_ITER_TEST = 2
_ITER_PAPER = 200
GAMMA = 1.4


def _vidx(soa: bool, i, j):
    """Index of variable ``j`` of element ``i`` under either layout."""
    if soa:
        return j * v("nelr") + i
    return i * NVAR + j


def _speed_fn() -> Function:
    """sqrt of the momentum magnitude over density (helper, inlinable)."""
    body = block(
        assign(aref("out", v("oi")),
               intrinsic("sqrt", (v("mx") * v("mx") + v("my") * v("my"))
                         / (v("rho") * v("rho")))),
    )
    return Function("compute_speed",
                    params=[Param("out", is_array=True), Param("oi"),
                            Param("mx"), Param("my"), Param("rho")],
                    body=body, inlinable=True)


def _step_factor_region(soa: bool, invocations: int) -> ParallelRegion:
    i = v("i")
    body = block(
        local("rho", init=aref("variables", _vidx(soa, i, 0))),
        local("mx", init=aref("variables", _vidx(soa, i, 1))),
        local("my", init=aref("variables", _vidx(soa, i, 2))),
        call("compute_speed", v("speed_tmp"), i, v("mx"), v("my"), v("rho")),
        assign(aref("step_factors", i),
               0.5 / (intrinsic("sqrt", aref("areas", i))
                      * (aref("speed_tmp", i) + 1.0))),
    )
    return ParallelRegion("step_factor",
                          pfor("i", 0, v("nelr"), body),
                          invocations=invocations)


def _flux_region(soa: bool, invocations: int) -> ParallelRegion:
    i, k, j = v("i"), v("k"), v("j")
    nb = aref("elements_surrounding", i * 4 + k)
    inner = iff(nb.ge(0), block(
        sfor("j", 0, NVAR,
             accum(aref("fluxes", _vidx(soa, i, j)),
                   aref("normals", (i * 4 + k)) *
                   (aref("variables", _vidx(soa, nb, j))
                    - aref("variables", _vidx(soa, i, j))))),
    ))
    body = block(
        sfor("j", 0, NVAR,
             assign(aref("fluxes", _vidx(soa, i, j)), 0.0)),
        sfor("k", 0, 4, inner),
    )
    return ParallelRegion("flux",
                          pfor("i", 0, v("nelr"), body, private=["k", "j"]),
                          invocations=invocations)


def _build(iters: int, soa: bool = False,
           with_clauses: bool = True) -> Program:
    i, j, idx, b = v("i"), v("j"), v("idx"), v("b")
    rk = iters * 3  # three RK substeps per iteration

    init_flat = ParallelRegion(
        "init_flat",
        pfor("idx", 0, v("ntotal"),
             assign(aref("variables", idx), aref("ff", idx % NVAR))
             if not soa else
             assign(aref("variables", idx),
                    aref("ff", idx // v("nelr")))))
    copy_old = ParallelRegion(
        "copy_old",
        pfor("idx", 0, v("ntotal"),
             assign(aref("old_variables", idx), aref("variables", idx))),
        invocations=iters, affine_hint=True)
    time_step = ParallelRegion(
        "time_step",
        pfor("idx", 0, v("ntotal"),
             assign(aref("variables", idx),
                    aref("old_variables", idx)
                    + v("rkcoef") * aref("fluxes", idx))),
        invocations=rk, affine_hint=True)
    reduce_rms = ParallelRegion(
        "reduce_rms",
        pfor("idx", 0, v("ntotal"),
             accum(aref("rms", 0),
                   (aref("variables", idx) - aref("old_variables", idx))
                   * (aref("variables", idx) - aref("old_variables", idx))),
             reductions=(reduce_clause("+", "rms"),) if with_clauses else ()),
        affine_hint=True)
    apply_bc = ParallelRegion(
        "apply_bc",
        pfor("b", 0, v("nbound"), block(
            sfor("j", 0, NVAR,
                 assign(aref("variables",
                             _vidx(soa, aref("boundary", b), j)),
                        aref("ff", j))),
        ), private=["j"]))

    return Program(
        "cfd",
        arrays=[
            ArrayDecl("variables", ("ntotal",)),
            ArrayDecl("old_variables", ("ntotal",), intent="temp"),
            ArrayDecl("fluxes", ("ntotal",), intent="temp"),
            ArrayDecl("step_factors", ("nelr",), intent="temp"),
            ArrayDecl("speed_tmp", ("nelr",), intent="temp"),
            ArrayDecl("areas", ("nelr",), intent="in"),
            ArrayDecl("normals", ("nfour",), intent="in"),
            ArrayDecl("elements_surrounding", ("nfour",), dtype="int",
                      intent="in"),
            ArrayDecl("boundary", ("nbound",), dtype="int", intent="in"),
            ArrayDecl("ff", (NVAR,), intent="in"),
            ArrayDecl("rms", (1,), intent="out"),
        ],
        scalars=[ScalarDecl("nelr", "int"), ScalarDecl("ntotal", "int"),
                 ScalarDecl("nfour", "int"), ScalarDecl("nbound", "int"),
                 ScalarDecl("rkcoef")],
        regions=[init_flat, copy_old,
                 _step_factor_region(soa, iters * 3),
                 _flux_region(soa, rk),
                 time_step, reduce_rms, apply_bc],
        functions=[_speed_fn()],
        domain="Fluid dynamics", driver_lines=138)


class Cfd(Benchmark):
    """Rodinia CFD (euler3d) benchmark."""

    name = "CFD"
    domain = "Fluid dynamics"
    rtol = 1e-7
    atol = 1e-9

    def build_program(self) -> Program:
        return _build(_ITER_PAPER)

    # -- workload -----------------------------------------------------------
    def workload(self, scale: str = "test", seed: int = 0) -> Workload:
        nelr = 300 if scale == "test" else 200_000
        iters = _ITER_TEST if scale == "test" else _ITER_PAPER
        rng = np.random.default_rng(seed)
        mesh = make_graph(nelr, avg_degree=4, seed=seed)
        # exactly 4 neighbour slots per element (-1 = boundary face)
        elem = np.full(nelr * 4, -1, dtype=np.int64)
        for i in range(nelr):
            lo, hi = mesh.node_start[i], min(mesh.node_start[i] + 4,
                                             mesh.node_start[i + 1])
            nbrs = mesh.edges[lo:hi]
            elem[i * 4:i * 4 + len(nbrs)] = nbrs
        areas = 1.0 + rng.random(nelr)
        normals = rng.standard_normal(nelr * 4) * 0.01
        nbound = max(1, nelr // 50)
        boundary = rng.choice(nelr, size=nbound, replace=False).astype(
            np.int64)
        ff = np.array([1.4, 0.1, 0.0, 0.0, 2.5])
        ntotal = nelr * NVAR
        schedule: list[ScheduleStep] = [ScheduleStep("init_flat")]
        for _ in range(iters):
            schedule.append(ScheduleStep("copy_old"))
            for rk in range(3):
                coef = 1.0 / (3 - rk)
                schedule.append(ScheduleStep("step_factor"))
                schedule.append(ScheduleStep("flux"))
                schedule.append(ScheduleStep("time_step",
                                             scalars={"rkcoef": coef}))
        schedule.append(ScheduleStep("apply_bc"))
        schedule.append(ScheduleStep("reduce_rms"))
        return Workload(
            sizes={"nelr": nelr, "iters": iters},
            arrays={"variables": np.zeros(ntotal),
                    "old_variables": np.zeros(ntotal),
                    "fluxes": np.zeros(ntotal),
                    "step_factors": np.zeros(nelr),
                    "speed_tmp": np.zeros(nelr),
                    "areas": areas, "normals": normals,
                    "elements_surrounding": elem,
                    "boundary": boundary, "ff": ff,
                    "rms": np.zeros(1)},
            scalars={"nelr": nelr, "ntotal": ntotal, "nfour": nelr * 4,
                     "nbound": nbound, "rkcoef": 1.0},
            schedule=schedule)

    def reference(self, wl: Workload) -> dict[str, np.ndarray]:
        nelr = wl.sizes["nelr"]
        elem = wl.arrays["elements_surrounding"].reshape(nelr, 4)
        normals = wl.arrays["normals"].reshape(nelr, 4)
        ff = wl.arrays["ff"]
        variables = np.tile(ff, nelr).astype(np.float64)
        var2 = variables.reshape(nelr, NVAR)
        valid = elem >= 0
        safe = np.where(valid, elem, 0)
        for _ in range(wl.sizes["iters"]):
            old = var2.copy()
            for rk in range(3):
                coef = 1.0 / (3 - rk)
                # fluxes
                fluxes = np.zeros_like(var2)
                for k in range(4):
                    nbv = var2[safe[:, k], :]
                    contrib = normals[:, k:k + 1] * (nbv - var2)
                    fluxes += np.where(valid[:, k:k + 1], contrib, 0.0)
                var2 = old + coef * fluxes
            # loop continues with updated var2
        variables = var2.reshape(-1).copy()
        b = wl.arrays["boundary"]
        var2 = variables.reshape(nelr, NVAR)
        var2[b, :] = ff
        old_flat = old.reshape(-1)
        rms = float(((var2.reshape(-1) - old_flat) ** 2).sum())
        return {"variables": var2.reshape(-1), "rms": np.array([rms])}

    def output_arrays(self) -> tuple[str, ...]:
        return ("variables", "rms")

    def canonical_output(self, name, array, model, variant, wl):
        soa = (variant == "best" and model != "R-Stream") \
            or model == "Hand-Written CUDA"
        if name == "variables" and soa:
            nelr = wl.sizes["nelr"]
            return array.reshape(NVAR, nelr).T.reshape(-1)
        return array

    # -- ports ---------------------------------------------------------------
    def variants(self, model: str) -> tuple[str, ...]:
        if model in ("PGI Accelerator", "OpenACC", "HMPP", "OpenMPC"):
            return ("best", "naive")
        return ("best",)

    def port(self, model: str, variant: str = "best") -> PortSpec:
        iters = _ITER_PAPER
        # "best" ports apply the manual layout change (SoA) to the input
        # code, as the paper describes; "naive" keeps the interleaved
        # layout with its stride-NVAR accesses.
        soa = variant == "best"
        prog = _build(iters, soa=soa,
                      with_clauses=(model != "PGI Accelerator"))
        regions = tuple(r.name for r in prog.regions)
        data = DataRegionSpec(
            name="cfd_data", regions=regions,
            copyin=("areas", "normals", "elements_surrounding", "boundary",
                    "ff"),
            copyout=("variables", "rms"),
            create=("old_variables", "fluxes", "step_factors", "speed_tmp"))
        if model in ("PGI Accelerator", "OpenACC", "HMPP"):
            return PortSpec(
                model=model, program=prog,
                directive_lines=16,
                restructured_lines=18 if soa else 4,
                data_regions=(data,),
                notes=(f"variant={variant}", "SoA layout change in input"))
        if model == "OpenMPC":
            opts = RegionOptions(placements={
                "elements_surrounding": MemorySpace.TEXTURE,
                "normals": MemorySpace.TEXTURE,
                "ff": MemorySpace.CONSTANT})
            return PortSpec(
                model=model, program=prog, directive_lines=6,
                restructured_lines=18 if soa else 4,
                region_options={"flux": opts, "apply_bc": opts},
                notes=(f"variant={variant}",
                       "constant/texture caching of mesh data"))
        if model == "R-Stream":
            return PortSpec(
                model=model, program=_build(iters, soa=False),
                directive_lines=4, restructured_lines=14,
                notes=("indirection + helper calls block most regions",))
        if model == "Hand-Written CUDA":
            opts = RegionOptions(
                block_threads=192,
                placements={"elements_surrounding": MemorySpace.TEXTURE,
                            "normals": MemorySpace.TEXTURE,
                            "ff": MemorySpace.CONSTANT})
            return PortSpec(
                model=model, program=_build(iters, soa=True),
                directive_lines=0, restructured_lines=140,
                data_regions=(data,),
                region_options={name: opts for name in regions},
                notes=("Rodinia euler3d CUDA structure",))
        return self.derived_port(model, variant)

"""Fluent construction helpers for writing benchmark programs.

The thirteen benchmark sources use these helpers so their IR reads close
to the original C/OpenMP, e.g.::

    i, j = idx("i", "j")
    body = assign(aref("b", i, j),
                  0.25 * (aref("a", i - 1, j) + aref("a", i + 1, j)
                          + aref("a", i, j - 1) + aref("a", i, j + 1)))
    loop = pfor("j", 1, v("m") - 1, body)
    region = pfor("i", 1, v("n") - 1, loop, private=["j"])
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.expr import (ArrayRef, BinOp, Call, Cast, Const, Expr,
                           ExprLike, Ternary, UnOp, Var, as_expr, intrinsic,
                           maximum, minimum)
from repro.ir.stmt import (Assign, Barrier, Block, CallStmt, Critical, For,
                           If, LocalDecl, PointerArith, ReductionClause,
                           Return, Stmt, While, as_block)


def v(name: str) -> Var:
    """A scalar variable reference."""
    return Var(name)


def c(value: Union[int, float]) -> Const:
    """A numeric constant."""
    return Const(value)


def idx(*names: str) -> tuple[Var, ...]:
    """Several index variables at once: ``i, j = idx("i", "j")``."""
    return tuple(Var(n) for n in names)


def aref(name: str, *indices: ExprLike) -> ArrayRef:
    """An array reference ``name[indices...]``."""
    return ArrayRef(name, [as_expr(i) for i in indices])


def assign(target: Union[Var, ArrayRef], value: ExprLike,
           op: Optional[str] = None) -> Assign:
    """``target = value`` (or ``target op= value``)."""
    return Assign(target, value, op=op)


def accum(target: Union[Var, ArrayRef], value: ExprLike, op: str = "+") -> Assign:
    """``target op= value`` — the canonical reduction statement."""
    return Assign(target, value, op=op)


def sfor(var: str, lower: ExprLike, upper: ExprLike,
         body: Union[Stmt, Sequence[Stmt]], step: ExprLike = 1) -> For:
    """A *sequential* for loop."""
    return For(var, lower, upper, body, step=step, parallel=False)


def pfor(var: str, lower: ExprLike, upper: ExprLike,
         body: Union[Stmt, Sequence[Stmt]], step: ExprLike = 1,
         private: Sequence[str] = (),
         reductions: Sequence[ReductionClause] = (),
         collapse: int = 1) -> For:
    """An OpenMP work-sharing (``omp for``) loop."""
    return For(var, lower, upper, body, step=step, parallel=True,
               private=private, reductions=reductions, collapse=collapse)


def reduce_clause(op: str, var: str, is_array: bool = False) -> ReductionClause:
    """An OpenMP ``reduction(op: var)`` clause."""
    return ReductionClause(op, var, is_array=is_array)


def iff(cond: ExprLike, then_body: Union[Stmt, Sequence[Stmt]],
        else_body: Union[Stmt, Sequence[Stmt], None] = None) -> If:
    """An if/else statement."""
    return If(cond, then_body, else_body)


def wloop(cond: ExprLike, body: Union[Stmt, Sequence[Stmt]]) -> While:
    """A while loop."""
    return While(cond, body)


def critical(body: Union[Stmt, Sequence[Stmt]]) -> Critical:
    """An OpenMP critical section."""
    return Critical(body)


def barrier() -> Barrier:
    """An OpenMP barrier."""
    return Barrier()


def local(name: str, shape: Sequence[int] = (), dtype: str = "double",
          init: Optional[ExprLike] = None) -> LocalDecl:
    """Declare a thread-local scalar/array."""
    return LocalDecl(name, shape=shape, dtype=dtype, init=init)


def call(func: str, *args: ExprLike) -> CallStmt:
    """Call a user-defined function (statement form)."""
    return CallStmt(func, args)


def ret(value: Optional[ExprLike] = None) -> Return:
    """Return statement."""
    return Return(value)


def block(*stmts: Stmt) -> Block:
    """Group statements."""
    return Block(list(stmts))


def ternary(cond: ExprLike, if_true: ExprLike, if_false: ExprLike) -> Ternary:
    """The C conditional expression."""
    return Ternary(as_expr(cond), as_expr(if_true), as_expr(if_false))


def cast(dtype: str, value: ExprLike) -> Cast:
    """Explicit type conversion."""
    return Cast(dtype, as_expr(value))


def ptr_swap(a: str, b: str) -> PointerArith:
    """Pointer-swap of two buffers (rejected inside offloaded loops)."""
    return PointerArith("swap", (a, b))


__all__ = [
    "v", "c", "idx", "aref", "assign", "accum", "sfor", "pfor",
    "reduce_clause", "iff", "wloop", "critical", "barrier", "local",
    "call", "ret", "block", "ternary", "cast", "ptr_swap",
    "intrinsic", "minimum", "maximum",
]

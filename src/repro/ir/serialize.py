"""JSON (de)serialization of the IR.

Programs, regions, and kernels are plain data; this module gives them a
stable JSON form so external tooling can consume what the compilers see
(and so ports can be archived/diffed).  Round-tripping is exact:
``loads(dumps(x)) == x`` structurally, which the property-based tests
pin for randomly generated trees.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import IRError
from repro.ir.expr import (ArrayRef, BinOp, Call, Cast, Const, Expr,
                           Ternary, UnOp, Var)
from repro.ir.program import (ArrayDecl, Function, Param, ParallelRegion,
                              Program, ScalarDecl)
from repro.ir.stmt import (Assign, Barrier, Block, CallStmt, Critical, For,
                           If, LocalDecl, PointerArith, ReductionClause,
                           Return, Stmt, While)

_VERSION = 1


# -- expressions ---------------------------------------------------------

def expr_to_dict(expr: Expr) -> dict:
    if isinstance(expr, Const):
        kind = "int" if isinstance(expr.value, int) else "float"
        return {"k": "const", "dtype": kind, "value": expr.value}
    if isinstance(expr, Var):
        return {"k": "var", "name": expr.name}
    if isinstance(expr, BinOp):
        return {"k": "binop", "op": expr.op,
                "left": expr_to_dict(expr.left),
                "right": expr_to_dict(expr.right)}
    if isinstance(expr, UnOp):
        return {"k": "unop", "op": expr.op,
                "operand": expr_to_dict(expr.operand)}
    if isinstance(expr, Call):
        return {"k": "call", "func": expr.func,
                "args": [expr_to_dict(a) for a in expr.args]}
    if isinstance(expr, Ternary):
        return {"k": "ternary", "cond": expr_to_dict(expr.cond),
                "if_true": expr_to_dict(expr.if_true),
                "if_false": expr_to_dict(expr.if_false)}
    if isinstance(expr, Cast):
        return {"k": "cast", "dtype": expr.dtype,
                "operand": expr_to_dict(expr.operand)}
    if isinstance(expr, ArrayRef):
        return {"k": "aref", "name": expr.name,
                "indices": [expr_to_dict(i) for i in expr.indices]}
    raise IRError(f"cannot serialize expression {expr!r}")


def expr_from_dict(data: Mapping[str, Any]) -> Expr:
    kind = data["k"]
    if kind == "const":
        value = data["value"]
        return Const(int(value) if data["dtype"] == "int"
                     else float(value))
    if kind == "var":
        return Var(data["name"])
    if kind == "binop":
        return BinOp(data["op"], expr_from_dict(data["left"]),
                     expr_from_dict(data["right"]))
    if kind == "unop":
        return UnOp(data["op"], expr_from_dict(data["operand"]))
    if kind == "call":
        return Call(data["func"],
                    [expr_from_dict(a) for a in data["args"]])
    if kind == "ternary":
        return Ternary(expr_from_dict(data["cond"]),
                       expr_from_dict(data["if_true"]),
                       expr_from_dict(data["if_false"]))
    if kind == "cast":
        return Cast(data["dtype"], expr_from_dict(data["operand"]))
    if kind == "aref":
        return ArrayRef(data["name"],
                        [expr_from_dict(i) for i in data["indices"]])
    raise IRError(f"unknown expression kind {kind!r}")


# -- statements ------------------------------------------------------------

def stmt_to_dict(stmt: Stmt) -> dict:
    if isinstance(stmt, Block):
        return {"k": "block", "stmts": [stmt_to_dict(s)
                                        for s in stmt.stmts]}
    if isinstance(stmt, Assign):
        return {"k": "assign", "target": expr_to_dict(stmt.target),
                "value": expr_to_dict(stmt.value), "op": stmt.op}
    if isinstance(stmt, LocalDecl):
        return {"k": "local", "name": stmt.name,
                "shape": list(stmt.shape), "dtype": stmt.dtype,
                "init": expr_to_dict(stmt.init)
                if stmt.init is not None else None}
    if isinstance(stmt, For):
        return {"k": "for", "var": stmt.var,
                "lower": expr_to_dict(stmt.lower),
                "upper": expr_to_dict(stmt.upper),
                "step": expr_to_dict(stmt.step),
                "body": stmt_to_dict(stmt.body),
                "parallel": stmt.parallel,
                "private": list(stmt.private),
                "reductions": [{"op": r.op, "var": r.var,
                                "is_array": r.is_array}
                               for r in stmt.reductions],
                "collapse": stmt.collapse,
                "schedule": stmt.schedule}
    if isinstance(stmt, While):
        return {"k": "while", "cond": expr_to_dict(stmt.cond),
                "body": stmt_to_dict(stmt.body)}
    if isinstance(stmt, If):
        return {"k": "if", "cond": expr_to_dict(stmt.cond),
                "then": stmt_to_dict(stmt.then_body),
                "else": stmt_to_dict(stmt.else_body)
                if stmt.else_body is not None else None}
    if isinstance(stmt, Critical):
        return {"k": "critical", "body": stmt_to_dict(stmt.body)}
    if isinstance(stmt, Barrier):
        return {"k": "barrier"}
    if isinstance(stmt, CallStmt):
        return {"k": "callstmt", "func": stmt.func,
                "args": [expr_to_dict(a) for a in stmt.args]}
    if isinstance(stmt, Return):
        return {"k": "return", "value": expr_to_dict(stmt.value)
                if stmt.value is not None else None}
    if isinstance(stmt, PointerArith):
        return {"k": "ptr", "kind": stmt.kind,
                "operands": list(stmt.operands)}
    raise IRError(f"cannot serialize statement {stmt!r}")


def stmt_from_dict(data: Mapping[str, Any]) -> Stmt:
    kind = data["k"]
    if kind == "block":
        return Block([stmt_from_dict(s) for s in data["stmts"]])
    if kind == "assign":
        target = expr_from_dict(data["target"])
        assert isinstance(target, (Var, ArrayRef))
        return Assign(target, expr_from_dict(data["value"]),
                      op=data["op"])
    if kind == "local":
        return LocalDecl(data["name"], shape=tuple(data["shape"]),
                         dtype=data["dtype"],
                         init=expr_from_dict(data["init"])
                         if data["init"] is not None else None)
    if kind == "for":
        return For(data["var"], expr_from_dict(data["lower"]),
                   expr_from_dict(data["upper"]),
                   stmt_from_dict(data["body"]),
                   step=expr_from_dict(data["step"]),
                   parallel=data["parallel"],
                   private=tuple(data["private"]),
                   reductions=tuple(
                       ReductionClause(r["op"], r["var"], r["is_array"])
                       for r in data["reductions"]),
                   collapse=data["collapse"],
                   schedule=data["schedule"])
    if kind == "while":
        return While(expr_from_dict(data["cond"]),
                     stmt_from_dict(data["body"]))
    if kind == "if":
        return If(expr_from_dict(data["cond"]),
                  stmt_from_dict(data["then"]),
                  stmt_from_dict(data["else"])
                  if data["else"] is not None else None)
    if kind == "critical":
        return Critical(stmt_from_dict(data["body"]))
    if kind == "barrier":
        return Barrier()
    if kind == "callstmt":
        return CallStmt(data["func"],
                        [expr_from_dict(a) for a in data["args"]])
    if kind == "return":
        return Return(expr_from_dict(data["value"])
                      if data["value"] is not None else None)
    if kind == "ptr":
        return PointerArith(data["kind"], tuple(data["operands"]))
    raise IRError(f"unknown statement kind {kind!r}")


# -- programs --------------------------------------------------------------

def program_to_dict(program: Program) -> dict:
    return {
        "version": _VERSION,
        "name": program.name,
        "domain": program.domain,
        "driver_lines": program.driver_lines,
        "arrays": [{
            "name": a.name, "shape": list(a.shape), "dtype": a.dtype,
            "intent": a.intent, "contiguous": a.contiguous,
            "monotone_content": a.monotone_content,
        } for a in program.arrays.values()],
        "scalars": [{"name": s.name, "dtype": s.dtype,
                     "intent": s.intent}
                    for s in program.scalars.values()],
        "functions": [{
            "name": f.name,
            "params": [{"name": p.name, "is_array": p.is_array,
                        "dtype": p.dtype} for p in f.params],
            "body": stmt_to_dict(f.body),
            "inlinable": f.inlinable,
        } for f in program.functions.values()],
        "regions": [{
            "name": r.name,
            "body": stmt_to_dict(r.body),
            "private": list(r.private),
            "affine_hint": r.affine_hint,
            "invocations": r.invocations,
        } for r in program.regions],
    }


def program_from_dict(data: Mapping[str, Any]) -> Program:
    if data.get("version") != _VERSION:
        raise IRError(f"unsupported IR serialization version "
                      f"{data.get('version')!r}")
    return Program(
        data["name"],
        arrays=[ArrayDecl(a["name"], tuple(a["shape"]), a["dtype"],
                          a["intent"], a["contiguous"],
                          a["monotone_content"])
                for a in data["arrays"]],
        scalars=[ScalarDecl(s["name"], s["dtype"], s["intent"])
                 for s in data["scalars"]],
        regions=[ParallelRegion(r["name"], stmt_from_dict(r["body"]),
                                private=tuple(r["private"]),
                                affine_hint=r["affine_hint"],
                                invocations=r["invocations"])
                 for r in data["regions"]],
        functions=[Function(f["name"],
                            [Param(p["name"], p["is_array"], p["dtype"])
                             for p in f["params"]],
                            stmt_from_dict(f["body"]),
                            inlinable=f["inlinable"])
                   for f in data["functions"]],
        domain=data["domain"], driver_lines=data["driver_lines"])


def dumps(program: Program, indent: int | None = 2) -> str:
    """Serialize a program to JSON text."""
    return json.dumps(program_to_dict(program), indent=indent)


def loads(text: str) -> Program:
    """Deserialize a program from JSON text."""
    return program_from_dict(json.loads(text))

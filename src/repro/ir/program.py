"""Program-level IR: arrays, functions, parallel regions, whole programs.

A :class:`Program` corresponds to one of the paper's thirteen OpenMP input
applications.  It declares its global arrays and scalars, its user-defined
functions, and an ordered list of :class:`ParallelRegion` objects — the
``#pragma omp parallel`` regions that the directive compilers attempt to
translate to GPU kernels.  Host-side control flow between regions (outer
convergence loops, input setup) lives in the benchmark drivers, which call
the compiled regions through :class:`repro.models.base.CompiledProgram`.

Array shapes are symbolic (names of size scalars) so the same program can
run at any problem size; shapes are resolved against the benchmark's
runtime bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import IRError, IRTypeError
from repro.ir.expr import Expr
from repro.ir.stmt import Block, For, ReductionClause, Stmt, as_block

#: dtype spellings accepted in declarations, mapped to NumPy dtypes.
DTYPES: Mapping[str, np.dtype] = {
    "double": np.dtype(np.float64),
    "float": np.dtype(np.float32),
    "int": np.dtype(np.int64),
}

ShapeDim = Union[int, str]


def numpy_dtype(name: str) -> np.dtype:
    """Resolve a declaration dtype spelling to a NumPy dtype."""
    try:
        return DTYPES[name]
    except KeyError:
        raise IRTypeError(f"unknown dtype {name!r}; known: {sorted(DTYPES)}") from None


@dataclass(frozen=True)
class ArrayDecl:
    """A program-level array: name, symbolic shape, dtype, and intent.

    ``intent`` is one of ``"in"`` / ``"out"`` / ``"inout"`` / ``"temp"``
    and feeds the data-transfer planners: ``in`` arrays must be copied to
    the device before first use, ``out``/``inout`` copied back.

    ``contiguous`` records whether the host allocation is one continuous
    block — OpenACC requires contiguous data in data clauses, and OpenMPC
    handles multi-dimensional arrays only when contiguous (Sections
    III-B2 / III-D2).
    """

    name: str
    shape: tuple[ShapeDim, ...]
    dtype: str = "double"
    intent: str = "inout"
    contiguous: bool = True
    #: the array holds a near-identity index map (Rodinia's iN[i]=i-1
    #: style clamping arrays): subscripts routed through it preserve
    #: coalescing.  Compilers discover this from the init code; we carry
    #: it as a declaration fact.
    monotone_content: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise IRTypeError("ArrayDecl needs a name")
        if self.intent not in ("in", "out", "inout", "temp"):
            raise IRTypeError(f"bad intent {self.intent!r} for array {self.name!r}")
        numpy_dtype(self.dtype)  # validate
        if len(self.shape) == 0:
            raise IRTypeError(f"array {self.name!r} needs at least one dimension")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def resolve_shape(self, sizes: Mapping[str, int]) -> tuple[int, ...]:
        """Resolve symbolic dimensions against runtime size bindings."""
        dims: list[int] = []
        for dim in self.shape:
            if isinstance(dim, int):
                dims.append(dim)
            else:
                try:
                    dims.append(int(sizes[dim]))
                except KeyError:
                    raise IRError(
                        f"array {self.name!r}: unbound size symbol {dim!r}"
                    ) from None
        return tuple(dims)

    def nbytes(self, sizes: Mapping[str, int]) -> int:
        """Total byte size at the given problem-size bindings."""
        n = 1
        for dim in self.resolve_shape(sizes):
            n *= dim
        return n * numpy_dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ScalarDecl:
    """A program-level scalar (problem size, physics constant, ...)."""

    name: str
    dtype: str = "double"
    intent: str = "in"

    def __post_init__(self) -> None:
        if not self.name:
            raise IRTypeError("ScalarDecl needs a name")
        numpy_dtype(self.dtype)


@dataclass(frozen=True)
class Param:
    """A formal parameter of a user function (array or scalar)."""

    name: str
    is_array: bool = False
    dtype: str = "double"


class Function:
    """A user-defined function that parallel-region code may call.

    Function calls inside offloaded regions are a key applicability
    differentiator (Section VI-A item 5): OpenMPC supports them through
    interprocedural analysis and procedure cloning; the other models need
    the callee to be simple enough to inline.
    """

    __slots__ = ("name", "params", "body", "inlinable")

    def __init__(self, name: str, params: Sequence[Param],
                 body: Union[Stmt, Sequence[Stmt]], inlinable: bool = True) -> None:
        if not name:
            raise IRTypeError("Function needs a name")
        self.name = name
        self.params = tuple(params)
        self.body = as_block(body)
        #: Whether a non-interprocedural compiler could inline this callee
        #: automatically (single basic block, no nested calls, bounded
        #: loops).  Benchmarks set this to reflect the paper's porting
        #: experience; the feature scanner cross-checks it.
        self.inlinable = bool(inlinable)

    def __repr__(self) -> str:
        return f"Function({self.name}/{len(self.params)})"


class ParallelRegion:
    """One OpenMP parallel region — the unit of Table II's coverage.

    Attributes
    ----------
    name:
        Unique (within the program) region identifier, e.g. ``"sprvv"``.
    body:
        The region body.  Work-sharing loops are ``For(parallel=True)``
        statements; anything else inside is redundantly executed by host
        threads in OpenMP semantics and must be handled by region
        splitting (OpenMPC) or rejected (other models).
    private:
        Region-level private variables.
    affine_hint:
        Benchmarks may mark regions whose array subscripts are affine; the
        R-Stream front end *verifies* this with the affine analysis rather
        than trusting it (a mismatch is a test failure).
    arrays_read / arrays_written:
        Optional explicit access summaries.  When omitted they are derived
        from the body by the access analysis.
    invocations:
        How many times the host driver executes this region per benchmark
        run (outer iteration count); used by the data-transfer planners to
        weigh redundant-transfer elimination.
    """

    __slots__ = ("name", "body", "private", "affine_hint", "invocations",
                 "_arrays_read", "_arrays_written")

    def __init__(self, name: str, body: Union[Stmt, Sequence[Stmt]],
                 private: Sequence[str] = (), affine_hint: bool = False,
                 invocations: int = 1,
                 arrays_read: Optional[Sequence[str]] = None,
                 arrays_written: Optional[Sequence[str]] = None) -> None:
        if not name:
            raise IRTypeError("ParallelRegion needs a name")
        self.name = name
        self.body = as_block(body)
        self.private = tuple(private)
        self.affine_hint = bool(affine_hint)
        self.invocations = int(invocations)
        self._arrays_read = tuple(arrays_read) if arrays_read is not None else None
        self._arrays_written = tuple(arrays_written) if arrays_written is not None else None
        if self.invocations < 1:
            raise IRError(f"region {name!r}: invocations must be >= 1")

    def worksharing_loops(self) -> list[For]:
        """The outermost ``omp for`` loops directly inside this region."""
        found: list[For] = []

        def scan(stmt: Stmt) -> None:
            if isinstance(stmt, For) and stmt.parallel:
                found.append(stmt)
                return  # nested parallel loops belong to this work-share
            for child in stmt.child_stmts():
                scan(child)

        scan(self.body)
        return found

    def __repr__(self) -> str:
        return f"ParallelRegion({self.name})"


class Program:
    """A whole OpenMP input application.

    ``regions`` are ordered as the host driver invokes them; duplicate
    region names are rejected because coverage accounting keys on them.
    """

    __slots__ = ("name", "arrays", "scalars", "functions", "regions",
                 "domain", "driver_lines")

    def __init__(self, name: str, arrays: Sequence[ArrayDecl],
                 scalars: Sequence[ScalarDecl],
                 regions: Sequence[ParallelRegion],
                 functions: Sequence[Function] = (),
                 domain: str = "", driver_lines: int = 0) -> None:
        if not name:
            raise IRTypeError("Program needs a name")
        self.name = name
        self.arrays = {a.name: a for a in arrays}
        self.scalars = {s.name: s for s in scalars}
        self.functions = {f.name: f for f in functions}
        if len(self.arrays) != len(arrays):
            raise IRError(f"program {name!r}: duplicate array declarations")
        names = [r.name for r in regions]
        if len(set(names)) != len(names):
            raise IRError(f"program {name!r}: duplicate region names")
        self.regions = tuple(regions)
        #: Application domain label (Medical Imaging, Bioinformatics, ...).
        self.domain = domain
        #: Source lines of the original program outside the computational
        #: regions (allocation, I/O, timing, verification drivers) — the
        #: Table II percentages are normalized against the *whole* input
        #: program, so this belongs in the denominator.
        self.driver_lines = int(driver_lines)

    def region(self, name: str) -> ParallelRegion:
        """Look up a parallel region by name."""
        for r in self.regions:
            if r.name == name:
                return r
        raise IRError(f"program {self.name!r} has no region {name!r}")

    def array(self, name: str) -> ArrayDecl:
        """Look up an array declaration by name."""
        try:
            return self.arrays[name]
        except KeyError:
            raise IRError(f"program {self.name!r} has no array {name!r}") from None

    def iter_regions(self) -> Iterator[ParallelRegion]:
        return iter(self.regions)

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def serial_line_count(self) -> int:
        """Approximate source-line count of the computational code.

        The denominator of the Table II normalized code-size increase:
        region bodies plus function bodies plus one declaration line per
        array/scalar.
        """
        n = len(self.arrays) + len(self.scalars) + self.driver_lines
        for region in self.regions:
            n += 1 + region.body.line_count()
        for func in self.functions.values():
            n += 1 + func.body.line_count()
        return n

    def __repr__(self) -> str:
        return f"Program({self.name}, {self.num_regions} regions)"

"""Static per-kernel locality analysis over the affine machinery.

The cache replay in :mod:`repro.gpusim.cache` measures locality by
executing a kernel; this module *predicts* the same quantities from the
kernel's affine access functions, the static-predicts/dynamic-audits
discipline the coalescing model already follows
(:mod:`repro.gpusim.trace`).  For every global array reference the
analyzer resolves the flattened element index to an affine form over
the thread and sequential-loop indices (concrete workload bindings make
extents and parametric coefficients numeric), then derives:

* **reuse pairs** — every reference pair classified as temporal/spatial
  x self/group reuse, with the loop that carries the reuse and an
  estimated reuse distance in cache lines;
* **per-loop working sets** — distinct bytes one iteration of each
  sequential loop touches, from trip counts and coefficient spans, with
  fits-in-L1/L2 verdicts;
* **per-array L1/L2 miss-ratio predictions** — compulsory misses are
  the distinct-line footprint; re-touches hit a level iff the carrying
  reuse distance fits inside that level's line capacity.

The predictions deliberately mirror the simulator's replay discipline
(per-event ``(warp, line)`` dedup, event-ordered streams) so the two
stay comparable; ``tests/test_reuse_static.py`` cross-validates them on
the suite kernels within :data:`STATIC_AGREEMENT_TOLERANCE`.

References that go through index arrays (CSR gathers) or sit under
data-dependent loops cannot be resolved statically; their predictions
fall back to the device's ``indirect_locality`` heuristic and the whole
kernel is flagged ``exact=False`` — the same lower-bound marker the
dynamic trace carries for such kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.gpusim.coalescing import transactions_per_warp
from repro.gpusim.device import TESLA_M2090, DeviceSpec
from repro.ir.analysis.access import (AccessPattern, RefClass,
                                      DEFAULT_SEQ_TRIPS, _const_value,
                                      _strip_monotone, classify_ref)
from repro.ir.analysis.affine import AffineForm, affine_form
from repro.ir.analysis.ranges import (SymRange, bindings_env, estimate_trips,
                                      loop_range)
from repro.ir.expr import ArrayRef, BinOp, Cast, Const, Expr, UnOp, Var
from repro.ir.stmt import (Assign, Block, Critical, For, If, LocalDecl,
                           Stmt, While)

__all__ = ["ReusePair", "LoopWorkingSet", "ArrayPrediction", "KernelReuse",
           "analyze_kernel_reuse", "STATIC_AGREEMENT_TOLERANCE"]

#: Documented tolerance for static-vs-simulated L1/L2 miss-ratio
#: agreement on regular (``exact=True``) kernels: the static model
#: ignores conflict misses, partial warps and divergence masking, so
#: per-kernel aggregate predictions are compared with an absolute
#: miss-ratio band of this width (see ``tests/test_reuse_static.py``).
STATIC_AGREEMENT_TOLERANCE = 0.25


def _render(e: Expr) -> str:
    """Compact single-line rendering for witnesses."""
    if isinstance(e, Const):
        v = e.value
        return str(int(v)) if isinstance(v, float) and v.is_integer() else str(v)
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Cast):
        return _render(e.operand)
    if isinstance(e, UnOp):
        return f"{e.op}{_render(e.operand)}"
    if isinstance(e, BinOp):
        return f"({_render(e.left)} {e.op} {_render(e.right)})"
    if isinstance(e, ArrayRef):
        return e.name + "".join(f"[{_render(i)}]" for i in e.indices)
    return type(e).__name__


@dataclass(frozen=True)
class ReusePair:
    """One classified reuse relation between two references."""

    array: str
    kind: str        #: "temporal" | "spatial"
    scope: str       #: "self" | "group"
    src: str         #: rendered source reference
    dst: str         #: rendered reusing reference (== src for self)
    loop: str        #: carrying loop variable ("" for loop-independent)
    distance_lines: float  #: estimated reuse distance, in cache lines

    def to_dict(self) -> dict:
        return {"array": self.array, "kind": self.kind, "scope": self.scope,
                "src": self.src, "dst": self.dst, "loop": self.loop,
                "distance_lines": round(self.distance_lines, 2)}


@dataclass(frozen=True)
class LoopWorkingSet:
    """Distinct bytes one iteration of a sequential loop touches."""

    loop: str
    trips: float
    bytes_per_iteration: float
    fits_l1: bool
    fits_l2: bool

    def to_dict(self) -> dict:
        return {"loop": self.loop, "trips": round(self.trips, 2),
                "bytes_per_iteration": round(self.bytes_per_iteration, 1),
                "fits_l1": self.fits_l1, "fits_l2": self.fits_l2}


@dataclass
class ArrayPrediction:
    """Predicted cache behaviour of one array's access stream."""

    array: str
    accesses: float = 0.0         #: predicted L1-level line accesses
    footprint_lines: float = 0.0  #: distinct lines (compulsory misses)
    #: distinct lines touched per event, summed — the part of the access
    #: stream that is not an always-hit within-event boundary repeat
    line_accesses: float = 0.0
    reuse_distance_lines: float = float("inf")
    #: fraction of L1 sets the dominant lane stride can reach (1.0 =
    #: conflict-free; a power-of-two line stride aliases into
    #: ``1/gcd`` of the sets and shrinks the usable capacity)
    l1_set_fraction: float = 1.0
    l1_misses: float = 0.0
    l2_accesses: float = 0.0
    l2_misses: float = 0.0
    exact: bool = True            #: False for indirect/data-dependent refs

    @property
    def l1_miss_ratio(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_ratio(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    def to_dict(self) -> dict:
        dist = self.reuse_distance_lines
        return {"array": self.array,
                "accesses": round(self.accesses, 1),
                "footprint_lines": round(self.footprint_lines, 1),
                "reuse_distance_lines": (round(dist, 1)
                                         if math.isfinite(dist) else None),
                "l1_miss_ratio": round(self.l1_miss_ratio, 6),
                "l2_miss_ratio": round(self.l2_miss_ratio, 6),
                "l1_set_fraction": round(self.l1_set_fraction, 4),
                "exact": self.exact}


@dataclass
class KernelReuse:
    """The static locality report for one kernel."""

    kernel: str
    exact: bool
    warps: int
    pairs: list[ReusePair] = field(default_factory=list)
    working_sets: list[LoopWorkingSet] = field(default_factory=list)
    arrays: dict[str, ArrayPrediction] = field(default_factory=dict)

    @property
    def l1_miss_ratio(self) -> float:
        acc = sum(p.accesses for p in self.arrays.values())
        miss = sum(p.l1_misses for p in self.arrays.values())
        return miss / acc if acc else 0.0

    @property
    def l2_miss_ratio(self) -> float:
        acc = sum(p.l2_accesses for p in self.arrays.values())
        miss = sum(p.l2_misses for p in self.arrays.values())
        return miss / acc if acc else 0.0

    def to_dict(self) -> dict:
        return {"kernel": self.kernel, "exact": self.exact,
                "warps": self.warps,
                "l1_miss_ratio": round(self.l1_miss_ratio, 6),
                "l2_miss_ratio": round(self.l2_miss_ratio, 6),
                "pairs": [p.to_dict() for p in self.pairs],
                "working_sets": [w.to_dict() for w in self.working_sets],
                "arrays": [self.arrays[a].to_dict()
                           for a in sorted(self.arrays)]}


# ---------------------------------------------------------------------------
# Reference sites: the walk
# ---------------------------------------------------------------------------

@dataclass
class _Site:
    """One global-array reference with its static context."""

    order: int
    array: str
    label: str
    is_store: bool
    weight: float                      #: events per thread-iteration space
    loops: tuple[tuple[str, float, float], ...]  #: (var, trips, step), seq
    coeffs: dict[str, float]           #: flat element-index coefficients
    const: float
    affine: bool
    refclass: RefClass


def _resolve_form(form: AffineForm, var_set: set[str],
                  bindings: Mapping[str, float]
                  ) -> Optional[tuple[dict[str, float], float]]:
    """Flatten parametric coefficients to numbers via the bindings."""
    coeffs: dict[str, float] = {}
    const = float(form.const)
    for name, cv in form.coeffs.items():
        parts = name.split("*")
        idx = [p for p in parts if p in var_set]
        params = [p for p in parts if p not in var_set]
        scale = float(cv)
        for p in params:
            val = bindings.get(p)
            if val is None:
                return None
            scale *= float(val)
        if len(idx) == 0:
            const += scale
        elif len(idx) == 1:
            coeffs[idx[0]] = coeffs.get(idx[0], 0.0) + scale
        else:
            return None  # product of two iteration variables
    return coeffs, const


def _flat_form(ref: ArrayRef, extents: Sequence[int], var_set: set[str],
               bindings: Mapping[str, float]
               ) -> Optional[tuple[dict[str, float], float]]:
    """Row-major flattened element index as numeric affine coefficients."""
    if len(extents) < len(ref.indices):
        return None
    coeffs: dict[str, float] = {}
    const = 0.0
    for d, index in enumerate(ref.indices):
        form = affine_form(index, var_set)
        if form is None:
            return None
        resolved = _resolve_form(form, var_set, bindings)
        if resolved is None:
            return None
        dim_coeffs, dim_const = resolved
        stride = 1.0
        for ext in extents[d + 1:len(ref.indices)]:
            stride *= ext
        for name, cv in dim_coeffs.items():
            coeffs[name] = coeffs.get(name, 0.0) + cv * stride
        const += dim_const * stride
    return coeffs, const


def _collect_sites(kernel, bindings: Mapping[str, float],
                   array_extents: Mapping[str, Sequence[int]],
                   body: Optional[Stmt] = None
                   ) -> tuple[list["_Site"], bool,
                              list[tuple[str, float, float]],
                              dict[str, tuple[float, float]]]:
    """Walk the body mirroring ``summarize_accesses``.

    Returns ``(sites, data_dependent?, seq loops, var extents)``.
    ``body`` overrides ``kernel.body`` (the call-inlined view).
    """
    thread_vars = list(kernel.thread_vars)
    tset = set(thread_vars)
    monotone = set(kernel.monotone_carriers)
    indirect_carriers = set(kernel.indirect_carriers)
    overrides = dict(kernel.pattern_overrides)
    local_arrays: set[str] = set()
    sites: list[_Site] = []
    seq_loops: list[tuple[str, float, float]] = []
    loop_stack: list[tuple[str, float, float]] = []  # seq loops only
    range_env: dict[str, SymRange] = bindings_env(bindings)
    irregular_vars: set[str] = set()
    data_dependent = False
    var_extents: dict[str, tuple[float, float]] = {}  # var -> (trips, step)
    var_lower: dict[str, float] = {}  # var -> resolved loop lower bound

    for loop, ext in zip(kernel.grid_loops(),
                         kernel.grid_extents(bindings)):
        step = _const_value(loop.step, bindings) or 1.0
        var_extents[loop.var] = (float(ext), float(step))
        lo = _const_value(loop.lower, bindings)
        if lo is not None:
            var_lower[loop.var] = float(lo)

    def classify(node: ArrayRef, is_store: bool,
                 index_vars: set[str]) -> Optional[RefClass]:
        if node.name in local_arrays:
            return None  # private arrays never reach the traced stream
        override = overrides.get(node.name)
        if override is not None:
            return RefClass(node.name, override,
                            stride=(1 if override is AccessPattern.COALESCED
                                    else 0),
                            is_store=is_store)
        if index_vars & irregular_vars:
            return RefClass(node.name, AccessPattern.INDIRECT, stride=0,
                            is_store=is_store)
        return classify_ref(node, thread_vars,
                            dim_extents=array_extents.get(node.name),
                            is_store=is_store,
                            indirect_carriers=indirect_carriers,
                            monotone_carriers=monotone)

    def add_site(node: ArrayRef, is_store: bool, weight: float) -> None:
        stripped = _strip_monotone(node, monotone) if monotone else node
        index_vars: set[str] = set()
        for index in stripped.indices:
            index_vars |= index.free_vars()
        cls = classify(node, is_store, index_vars)
        if cls is None:
            return
        extents = array_extents.get(node.name)
        var_set = tset | {v for v, _, _ in loop_stack}
        flat = None
        if extents is not None and not (index_vars & irregular_vars):
            flat = _flat_form(stripped, list(extents), var_set, bindings)
        if flat is None or cls.pattern is AccessPattern.INDIRECT:
            sites.append(_Site(order=len(sites), array=node.name,
                               label=_render(node), is_store=is_store,
                               weight=weight, loops=tuple(loop_stack),
                               coeffs={}, const=0.0, affine=False,
                               refclass=cls))
            return
        coeffs, const = flat
        sites.append(_Site(order=len(sites), array=node.name,
                           label=_render(node), is_store=is_store,
                           weight=weight, loops=tuple(loop_stack),
                           coeffs=coeffs, const=const, affine=True,
                           refclass=cls))

    def record(expr: Expr, weight: float,
               store_target: Optional[ArrayRef]) -> None:
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                add_site(node, is_store=(store_target is not None
                                         and node is store_target),
                         weight=weight)

    def scan(stmt: Stmt, weight: float) -> None:
        nonlocal data_dependent
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                scan(s, weight)
        elif isinstance(stmt, LocalDecl):
            if stmt.shape:
                local_arrays.add(stmt.name)
            if stmt.init is not None:
                record(stmt.init, weight, None)
        elif isinstance(stmt, Assign):
            record(stmt.value, weight, None)
            if isinstance(stmt.target, ArrayRef):
                # NOTE: an augmented assign reads the target too, but the
                # executor applies it as one fused update, so the traced
                # stream (and hence the replay this analysis mirrors)
                # sees a single store event; counting the read here would
                # skew the predicted miss *ratio*'s denominator
                add_site(stmt.target, True, weight)
                for index in stmt.target.indices:
                    record(index, weight, None)
        elif isinstance(stmt, For):
            _scan_for(stmt, weight)
        elif isinstance(stmt, While):
            data_dependent = True
            record(stmt.cond, weight * DEFAULT_SEQ_TRIPS, None)
            scan(stmt.body, weight * DEFAULT_SEQ_TRIPS)
        elif isinstance(stmt, If):
            record(stmt.cond, weight, None)
            scan(stmt.then_body, weight * 0.5)
            if stmt.else_body is not None:
                scan(stmt.else_body, weight * 0.5)
        elif isinstance(stmt, Critical):
            scan(stmt.body, weight)
        else:
            for expr in stmt.exprs():
                record(expr, weight, None)

    def _scan_for(stmt: For, weight: float) -> None:
        nonlocal data_dependent
        saved = range_env.get(stmt.var)
        range_env[stmt.var] = loop_range(stmt, range_env)
        try:
            if stmt.var in tset:
                scan(stmt.body, weight)
                return
            lo = _const_value(stmt.lower, bindings)
            hi = _const_value(stmt.upper, bindings)
            step = _const_value(stmt.step, bindings) or 1.0
            if lo is not None and hi is not None and step:
                trips = max(0.0, math.ceil((hi - lo) / step))
            else:
                est = estimate_trips(stmt.lower, stmt.upper, stmt.step,
                                     range_env)
                trips = est if est is not None else DEFAULT_SEQ_TRIPS
            bound_vars = stmt.lower.free_vars() | stmt.upper.free_vars()
            was_irregular = stmt.var in irregular_vars
            if bound_vars & (tset | irregular_vars) or any(
                    isinstance(n, ArrayRef)
                    for b in (stmt.lower, stmt.upper) for n in b.walk()):
                irregular_vars.add(stmt.var)
                data_dependent = True
            record(stmt.lower, weight, None)
            record(stmt.upper, weight, None)
            entry = (stmt.var, float(trips), float(step))
            var_extents[stmt.var] = (float(trips), float(step))
            if lo is not None:
                var_lower[stmt.var] = float(lo)
            seq_loops.append(entry)
            loop_stack.append(entry)
            try:
                scan(stmt.body, weight * trips)
            finally:
                loop_stack.pop()
            if not was_irregular:
                irregular_vars.discard(stmt.var)
        finally:
            if saved is None:
                range_env.pop(stmt.var, None)
            else:
                range_env[stmt.var] = saved

    scan(body if body is not None else kernel.body, 1.0)
    return sites, data_dependent, seq_loops, var_extents, var_lower


# ---------------------------------------------------------------------------
# Footprints and working sets
# ---------------------------------------------------------------------------

def _footprint_lines(site: _Site, varying: set[str],
                     var_extents: Mapping[str, tuple[float, float]],
                     elem: int, line_bytes: int,
                     cap_lines: Optional[float] = None) -> float:
    """Distinct lines the site touches while ``varying`` indices sweep.

    Three upper bounds, the smallest taken: the iteration-point count
    (large-stride traversals), the dense bounding-box span, and — for
    tiled accesses whose rows are short relative to the row stride —
    the run decomposition: one contiguous run per iteration of every
    non-fastest index, each run as long as the fastest index sweeps.
    """
    span_elems = 0.0
    points = 1.0
    runs = 1.0
    min_stride: Optional[tuple[float, float, float]] = None  # |cv*step|
    for var, cv in site.coeffs.items():
        if var not in varying or cv == 0:
            continue
        trips, step = var_extents.get(var, (1.0, 1.0))
        span_elems += abs(cv) * step * max(0.0, trips - 1.0)
        points *= max(1.0, trips)
        runs *= max(1.0, trips)
        stride = abs(cv) * step
        if min_stride is None or stride < min_stride[0]:
            min_stride = (stride, trips, abs(cv) * step)
    span_lines = span_elems * elem / line_bytes + 1.0
    lines = min(points, span_lines)
    if min_stride is not None:
        stride, trips, _ = min_stride
        run_lines = stride * max(0.0, trips - 1.0) * elem / line_bytes + 1.0
        lines = min(lines, (runs / max(1.0, trips)) * run_lines)
    if cap_lines is not None:
        lines = min(lines, cap_lines)
    return max(1.0, lines)


def _per_event_lines(site: _Site, tset: set[str],
                     var_extents: Mapping[str, tuple[float, float]],
                     elem: int, line_bytes: int) -> float:
    """Distinct lines one event (all threads, one iteration) touches."""
    return _footprint_lines(site, tset, var_extents, elem, line_bytes)


def _set_fraction(site: _Site, fastest: Optional[str], elem: int,
                  line_bytes: int, num_sets: int) -> float:
    """Fraction of cache sets the warp-lane stride can reach.

    Lanes ``s`` lines apart only ever index sets that are multiples of
    ``gcd(s, num_sets)`` apart — the classic power-of-two aliasing of
    diagonal/wavefront traversals.  1.0 for contiguous or non-affine
    accesses (no provable aliasing).
    """
    if not site.affine or fastest is None:
        return 1.0
    line_stride = abs(site.coeffs.get(fastest, 0.0)) * elem / line_bytes
    stride = int(round(line_stride))
    if stride < 2 or abs(line_stride - stride) > 0.05:
        return 1.0
    return 1.0 / math.gcd(stride, num_sets)


def _entries_per_warp(site: _Site, txns: float,
                      thread_vars: Sequence[str],
                      var_extents: Mapping[str, tuple[float, float]],
                      var_lower: Mapping[str, float],
                      elem: int, line_bytes: int, warp: int) -> float:
    """Expected ``(warp, line)`` stream entries one warp contributes.

    The priced transaction count assumes aligned warps; a contiguous
    warp access whose start is *not* line-aligned straddles one extra
    line, and that boundary line is shared with the adjacent warp (an
    always-hit repeat in the replay).  Expected extra entries for an
    unaligned stride-1 access: ``1 - elem/line``.  Alignment is provable
    when the fastest thread index has unit coefficient, warps never
    straddle a slower-index step (extent divisible by the warp width),
    every other coefficient is a line multiple, and the base offset —
    the constant term plus every loop's lower bound times its
    coefficient — is a line multiple too.
    """
    if site.refclass.pattern is not AccessPattern.COALESCED \
            or not site.affine or not thread_vars:
        return txns
    fastest = thread_vars[-1]
    ext_f, step_f = var_extents.get(fastest, (1.0, 1.0))
    # warps only straddle a slower-index step when there IS one: a 1-D
    # grid keeps lanes consecutive in the fastest index regardless of
    # its extent, and a multi-dimensional grid whose address is
    # *contiguous* across the wrap (each slower index advances exactly
    # one full extent of the next faster one — e.g. ``A[i][j]`` over a
    # full (rows, cols) grid) produces a single contiguous lane stream
    contiguous = all(
        site.coeffs.get(slow, 0.0)
        == site.coeffs.get(fast, 0.0) * var_extents.get(fast,
                                                        (1.0, 1.0))[0]
        for slow, fast in zip(thread_vars, thread_vars[1:]))
    no_straddle = (len(thread_vars) == 1 or ext_f % warp == 0
                   or contiguous)
    base: Optional[float] = site.const
    for v, cv in site.coeffs.items():
        if cv == 0.0:
            continue
        lo = var_lower.get(v)
        if lo is None:
            base = None  # unresolved lower bound: alignment unprovable
            break
        base += cv * lo
    aligned = (no_straddle and step_f == 1.0
               and abs(site.coeffs.get(fastest, 0.0)) == 1.0
               and base is not None
               and (base * elem) % line_bytes == 0
               and all((cv * elem) % line_bytes == 0
                       for v, cv in site.coeffs.items() if v != fastest))
    if aligned:
        return txns
    return txns + (1.0 - elem / line_bytes)


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------

def analyze_kernel_reuse(kernel, bindings: Mapping[str, float],
                         array_extents: Mapping[str, Sequence[int]],
                         spec: DeviceSpec = TESLA_M2090,
                         functions: Optional[Mapping[str, object]] = None
                         ) -> KernelReuse:
    """Predict the cache behaviour of one kernel launch statically.

    ``bindings`` and ``array_extents`` are the concrete workload values
    (the same ones :meth:`Kernel.describe` prices), so trip counts,
    parametric strides and footprints all resolve to numbers.

    ``functions`` (name → :class:`~repro.ir.program.Function`) lets the
    analyzer see through device-function calls the way the executor
    does (OpenMPC is the one model whose kernels keep ``CallStmt``s);
    without it, called-function accesses are invisible and such kernels
    come back empty.
    """
    line_bytes = spec.transaction_bytes
    elem = kernel.elem_bytes()
    l1_lines = max(1, spec.l1_bytes // line_bytes)
    l2_lines = max(1, spec.l2_bytes // line_bytes)
    l1_sets = max(1, spec.l1_bytes // (line_bytes * spec.l1_assoc))
    l2_sets = max(1, spec.l2_bytes // (line_bytes * spec.l2_assoc))
    thread_vars = list(kernel.thread_vars)
    fastest_tv = thread_vars[-1] if thread_vars else None
    tset = set(thread_vars)

    body = kernel.body
    if functions:
        from repro.ir.transforms.inline import inline_calls
        try:
            body, _ = inline_calls(body, functions=functions,
                                   require_inlinable=False)
        except Exception:
            body = kernel.body  # unknown callee: analyze what's visible

    sites, data_dependent, seq_loops, var_extents, var_lower = \
        _collect_sites(kernel, bindings, array_extents, body=body)
    total_threads = kernel.total_threads(bindings)
    warps = max(1, -(-total_threads // spec.warp_size))
    # lane-proportional warp count: a trailing partial warp issues
    # proportionally fewer line touches, so access counts scale with
    # total lanes, not with the rounded-up warp count
    warps_f = max(total_threads / spec.warp_size, 1e-9)

    report = KernelReuse(kernel=kernel.name,
                         exact=not data_dependent, warps=warps)

    # -- per-loop working sets -------------------------------------------
    ws_bytes: dict[str, float] = {}
    for var, trips, _step in seq_loops:
        per_array: dict[str, float] = {}
        for site in sites:
            stack_vars = [v for v, _, _ in site.loops]
            if var not in stack_vars:
                continue
            inner = set(stack_vars[stack_vars.index(var) + 1:])
            varying = tset | inner
            lines = _footprint_lines(site, varying, var_extents, elem,
                                     line_bytes)
            per_array[site.array] = max(per_array.get(site.array, 0.0),
                                        lines)
        total = sum(per_array.values()) * line_bytes
        ws_bytes[var] = total
        report.working_sets.append(LoopWorkingSet(
            loop=var, trips=dict((v, t) for v, t, _ in seq_loops)[var],
            bytes_per_iteration=total,
            fits_l1=total <= spec.l1_bytes,
            fits_l2=total <= spec.l2_bytes))

    # -- reuse pairs -------------------------------------------------------
    def add_pair(array: str, kind: str, scope: str, src: str, dst: str,
                 loop: str, distance: float) -> None:
        report.pairs.append(ReusePair(array=array, kind=kind, scope=scope,
                                      src=src, dst=dst, loop=loop,
                                      distance_lines=distance))

    candidates: dict[str, list[float]] = {}
    affine_sites = [s for s in sites if s.affine]
    event_lines = {s.order: _per_event_lines(s, tset, var_extents, elem,
                                             line_bytes)
                   for s in sites}
    for site in affine_sites:
        # self reuse carried by each enclosing sequential loop
        for var, trips, step in site.loops:
            if trips <= 1.0:
                continue
            cv = site.coeffs.get(var, 0.0)
            dist = ws_bytes.get(var, 0.0) / line_bytes
            if cv == 0.0:
                add_pair(site.array, "temporal", "self", site.label,
                         site.label, var, dist)
                candidates.setdefault(site.array, []).append(dist)
            elif abs(cv * step) * elem < line_bytes:
                add_pair(site.array, "spatial", "self", site.label,
                         site.label, var, dist)
                candidates.setdefault(site.array, []).append(dist)
        # self reuse *within* one event: a thread index with zero
        # coefficient means whole groups of warps re-touch each line.
        # If the fastest index drops out the repeats are warp-adjacent
        # in the replay's (warp, line) order; if only a slower index
        # drops out, the repeats are one per-event footprint apart.
        if thread_vars:
            zero_tvs = [v for v in thread_vars
                        if site.coeffs.get(v, 0.0) == 0.0
                        and var_extents.get(v, (1.0, 1.0))[0] > 1.0]
            if zero_tvs:
                if site.coeffs.get(thread_vars[-1], 0.0) == 0.0:
                    dist = 2.0
                else:
                    dist = event_lines[site.order]
                add_pair(site.array, "temporal", "self", site.label,
                         site.label, "", dist)
                candidates.setdefault(site.array, []).append(dist)

    # group reuse between distinct references to the same array
    by_array: dict[str, list[_Site]] = {}
    for site in affine_sites:
        by_array.setdefault(site.array, []).append(site)
    for array, group in by_array.items():
        for i, s1 in enumerate(group):
            for s2 in group[i + 1:]:
                if s1.coeffs != s2.coeffs:
                    continue
                delta = abs(s1.const - s2.const)
                if delta == 0.0:
                    kind = "temporal"
                elif delta * elem < line_bytes:
                    kind = "spatial"
                else:
                    continue
                lo, hi = sorted((s1.order, s2.order))
                # the replay issues every warp of an event before the
                # next event starts, so a line touched at position p of
                # the source event is re-touched after the *rest* of
                # that event plus everything in between — about one full
                # per-event footprint, not one line
                between = sum(event_lines.get(s.order, 0.0) for s in sites
                              if lo < s.order < hi)
                dist = (between + event_lines.get(lo, 1.0)
                        + delta * elem / line_bytes)
                common = [v for v, _, _ in s1.loops
                          if v in {u for u, _, _ in s2.loops}]
                add_pair(array, kind, "group", s1.label, s2.label,
                         common[-1] if common else "", dist)
                candidates.setdefault(array, []).append(dist)

    # -- per-array miss predictions ----------------------------------------
    all_vars = tset | {v for v, _, _ in seq_loops}
    for site in sites:
        pred = report.arrays.setdefault(site.array,
                                        ArrayPrediction(array=site.array))
        txns = transactions_per_warp(site.refclass, elem, spec)
        entries = _entries_per_warp(site, txns, thread_vars, var_extents,
                                    var_lower, elem, line_bytes,
                                    spec.warp_size)
        # a uniform reference costs one entry per *issued* warp, partial
        # or not; lane-scaling references cost proportionally to lanes,
        # floored at one stream entry per executed event
        w_site = (float(warps)
                  if site.refclass.pattern is AccessPattern.UNIFORM
                  else warps_f)
        ev_entries = max(entries * w_site, 1.0)
        pred.accesses += ev_entries * site.weight
        if not site.affine:
            pred.exact = False
            report.exact = False
            pred.line_accesses += ev_entries * site.weight
            continue
        # per event only the distinct lines can miss; boundary repeats
        # between adjacent warps always hit
        per_event = min(ev_entries, event_lines[site.order])
        pred.line_accesses += per_event * site.weight
        pred.l1_set_fraction = min(
            pred.l1_set_fraction,
            _set_fraction(site, fastest_tv, elem, line_bytes, l1_sets))
        extents = array_extents.get(site.array, ())
        cap = None
        if extents:
            cap = max(1.0, math.prod(extents) * elem / line_bytes)
        lines = _footprint_lines(site, all_vars, var_extents, elem,
                                 line_bytes, cap_lines=cap)
        pred.footprint_lines = max(pred.footprint_lines, lines)

    for array, pred in report.arrays.items():
        dist = min(candidates.get(array, [float("inf")]))
        pred.reuse_distance_lines = dist
        if not pred.exact:
            # indirect gathers: L1 is hopeless, L2 keeps the device's
            # assumed fraction of data-dependent locality
            pred.footprint_lines = pred.accesses
            pred.l1_misses = pred.accesses
            pred.l2_accesses = pred.l1_misses
            pred.l2_misses = pred.l2_accesses * (1.0 -
                                                 spec.indirect_locality)
            continue
        # set aliasing shrinks the capacity the reuse distance competes
        # for: a stride reaching 1/g of the sets effectively has a
        # cache 1/g the size (same rule at both levels).  The capacity
        # itself is sets*(assoc+1), not sets*assoc: LRU evicts on the
        # count of *other* same-set lines inside the reuse window, and
        # for the near-consecutive line windows affine kernels produce
        # the reused line occupies one of the window's own set slots
        frac2 = min((_set_fraction(s, fastest_tv, elem, line_bytes,
                                   l2_sets)
                     for s in sites if s.array == array and s.affine),
                    default=1.0)
        eff_l1 = l1_sets * (spec.l1_assoc + 1) * pred.l1_set_fraction
        eff_l2 = l2_sets * (spec.l2_assoc + 1) * frac2
        compulsory = min(pred.line_accesses, pred.footprint_lines)
        retouch = max(0.0, pred.line_accesses - pred.footprint_lines)
        pred.l1_misses = compulsory + (0.0 if dist <= eff_l1 else retouch)
        pred.l2_accesses = pred.l1_misses
        retouch2 = max(0.0, pred.l2_accesses - compulsory)
        pred.l2_misses = compulsory + (0.0 if dist <= eff_l2
                                       else retouch2)
    return report

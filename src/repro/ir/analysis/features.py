"""Region feature scanning — the raw facts behind per-model applicability.

Each directive compiler (Section III) rejects regions based on a handful
of structural features.  :func:`scan_region` gathers them all in one pass
so the compilers' acceptance logic stays declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.analysis.affine import region_is_affine
from repro.ir.analysis.reductions import (critical_is_reduction,
                                          detect_reductions)
from repro.ir.expr import ArrayRef
from repro.ir.program import ParallelRegion, Program
from repro.ir.stmt import (Assign, Block, CallStmt, Critical, For, If,
                           LocalDecl, PointerArith, Stmt, While)
from repro.ir.visitors import (contains_barrier, contains_call,
                               contains_critical, contains_pointer_arith,
                               loop_nest_depth, written_arrays)


@dataclass
class RegionFeatures:
    """Structural facts about one parallel region."""

    name: str
    worksharing_loops: int = 0
    max_nest_depth: int = 0
    has_call: bool = False
    called_functions: tuple[str, ...] = ()
    calls_all_inlinable: bool = True
    has_critical: bool = False
    criticals_are_reductions: bool = True
    has_barrier: bool = False
    has_pointer_arith: bool = False
    has_while: bool = False
    has_private_arrays: bool = False
    private_array_names: tuple[str, ...] = ()
    scalar_reductions: int = 0
    array_reductions: int = 0
    complex_reductions: int = 0
    explicit_reduction_clauses: int = 0
    explicit_array_reduction_clauses: int = 0
    is_affine: bool = False
    affine_violations: tuple[str, ...] = ()
    stmts_outside_worksharing: bool = False
    arrays_referenced: frozenset[str] = frozenset()
    arrays_written: frozenset[str] = frozenset()


def _has_stmts_outside_worksharing(body: Block) -> bool:
    """Region code not inside any ``omp for`` loop (redundant host work).

    PGI Accelerator "cannot parallelize general structured blocks"
    (Section V, the EP story) — such regions need restructuring.
    Scalar/array declarations do not count.
    """
    for stmt in body.stmts:
        if isinstance(stmt, For) and stmt.parallel:
            continue
        if isinstance(stmt, LocalDecl):
            continue
        if isinstance(stmt, Block):
            if _has_stmts_outside_worksharing(stmt):
                return True
            continue
        return True
    return False


def scan_region(region: ParallelRegion,
                program: Optional[Program] = None) -> RegionFeatures:
    """Collect all acceptance-relevant features of ``region``."""
    body = region.body
    feats = RegionFeatures(name=region.name)

    ws = region.worksharing_loops()
    feats.worksharing_loops = len(ws)
    feats.max_nest_depth = loop_nest_depth(body)
    feats.has_call = contains_call(body)
    feats.has_critical = contains_critical(body)
    feats.has_barrier = contains_barrier(body)
    feats.has_pointer_arith = contains_pointer_arith(body)
    feats.has_while = any(isinstance(s, While) for s in body.walk())
    feats.stmts_outside_worksharing = _has_stmts_outside_worksharing(body)

    called: list[str] = []
    for stmt in body.walk():
        if isinstance(stmt, CallStmt):
            called.append(stmt.func)
    feats.called_functions = tuple(called)
    if program is not None:
        feats.calls_all_inlinable = all(
            name in program.functions and program.functions[name].inlinable
            for name in called)
    else:
        feats.calls_all_inlinable = not called

    if feats.has_critical:
        feats.criticals_are_reductions = all(
            critical_is_reduction(s) for s in body.walk()
            if isinstance(s, Critical))

    # Private arrays: region- or loop-level private names that are
    # declared as local arrays inside the body.
    local_array_names = {s.name for s in body.walk()
                         if isinstance(s, LocalDecl) and s.shape}
    private_names = set(region.private)
    for loop in body.walk():
        if isinstance(loop, For):
            private_names.update(loop.private)
    pa = tuple(sorted(local_array_names | {
        n for n in private_names if n in local_array_names}))
    feats.private_array_names = tuple(sorted(local_array_names))
    feats.has_private_arrays = bool(local_array_names)

    parallel_vars = tuple(l.var for l in ws)
    patterns = detect_reductions(body, parallel_vars)
    feats.scalar_reductions = sum(1 for p in patterns if not p.is_array)
    feats.array_reductions = sum(1 for p in patterns if p.is_array)
    feats.complex_reductions = sum(1 for p in patterns if not p.simple)
    for loop in ws:
        for clause in loop.reductions:
            feats.explicit_reduction_clauses += 1
            if clause.is_array:
                feats.explicit_array_reduction_clauses += 1

    report = region_is_affine(region)
    feats.is_affine = report.affine
    feats.affine_violations = tuple(report.violations)

    refs = {node.name for stmt in body.walk() for expr in stmt.exprs()
            for node in expr.walk() if isinstance(node, ArrayRef)}
    feats.arrays_referenced = frozenset(refs - local_array_names)
    feats.arrays_written = frozenset(written_arrays(body) - local_array_names)
    return feats

"""Multi-dimensional and MIV subscript dependence testing.

The baseline test in :mod:`repro.ir.analysis.deps` treats every subscript
dimension in isolation and bails to "conservatively dependent" whenever a
dimension is not affine in the tested loop variable.  That is faithful to
the array-name-level analyses the paper's compilers rely on (Section
III-D2) — but it reports *spurious* loop-carried dependences for code the
suite knows to be parallel:

* manually collapsed 2-D stencils (HOTSPOT's "flat" style) whose
  subscripts are the ``t // cols`` / ``t % cols`` index-recovery pair;
* coupled subscripts (NW's anti-diagonal ``items[t+1][d-t+1]``) where
  each dimension alone admits a dependence but the dimensions demand
  *contradictory* iteration distances;
* symbolically linearized arrays (LUD's ``a[i*n + k]``) where the loop
  index carries a symbolic stride.

This module upgrades the pairwise test:

* :func:`delinearize` recovers the multi-dimensional view of a
  ``(e // K, e % K)`` subscript pair (the quotient/remainder encode an
  injective map of ``e``, so the pair tests exactly like ``e``);
* :func:`dim_constraint` classifies one subscript dimension into a
  constraint on the iteration distance ``d = i' - i`` (independent /
  exact distance / collides-for-any-d / unknown), handling symbolic
  strides with the standard symbolic-SIV rule (equal symbolic parts and
  equal constants ⇒ distance 0);
* :func:`test_ref_pair` intersects the per-dimension constraints: any
  provably-independent dimension, or two dimensions demanding different
  distances, disproves the dependence; a consistent nonzero distance
  proves it carried.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.ir.analysis.affine import AffineForm, affine_form
from repro.ir.expr import ArrayRef, BinOp, Expr

#: constraint kinds on the iteration distance of a potential collision
INDEPENDENT = "independent"   # the dimension disproves any collision
DISTANCE = "distance"         # collision requires d == value
ANY = "any"                   # the dimension collides for every d
UNKNOWN = "unknown"           # the dimension constrains nothing provable


@dataclass(frozen=True)
class DimConstraint:
    """What one subscript dimension says about the iteration distance."""

    kind: str
    distance: Optional[int] = None


@dataclass(frozen=True)
class PairVerdict:
    """Combined verdict for one (write, other) reference pair.

    Exactly one of ``independent`` / ``carried`` / ``unknown`` is set,
    except the loop-independent case (collision only at distance 0)
    which reports ``independent=True`` — such a dependence does not
    forbid parallel execution of the tested loop.
    """

    independent: bool = False
    carried: bool = False
    unknown: bool = False
    distance: Optional[int] = None


def delinearize(indices: Sequence[Expr]) -> tuple[Expr, ...]:
    """Merge ``(e // K, e % K)`` dimension pairs into the single index ``e``.

    The map ``x >= 0  ->  (x // K, x % K)`` is injective, so two
    references through such a pair collide exactly when their numerators
    collide — recovering the flat index of a manually collapsed loop
    (HOTSPOT's ``temp[t // cols][t % cols]``).  Both the divisor and the
    numerator must match structurally between the two dimensions.
    """
    out: list[Expr] = []
    i = 0
    while i < len(indices):
        cur = indices[i]
        if (i + 1 < len(indices)
                and isinstance(cur, BinOp) and cur.op == "//"):
            nxt = indices[i + 1]
            if (isinstance(nxt, BinOp) and nxt.op == "%"
                    and cur.left.key() == nxt.left.key()
                    and cur.right.key() == nxt.right.key()):
                out.append(cur.left)
                i += 2
                continue
        out.append(cur)
        i += 1
    return tuple(out)


def _split_coeffs(form: AffineForm, var: str,
                  ) -> tuple[float, dict[str, float], dict[str, float]]:
    """(direct coeff of var, symbolic-stride coeffs of var, the rest).

    :func:`repro.ir.analysis.affine.affine_form` encodes a parameter
    multiplying the index (``i * n``) as the composite coefficient name
    ``"i*n"`` — a *symbolic stride* on ``i``.
    """
    direct = form.coefficient(var)
    symbolic: dict[str, float] = {}
    others: dict[str, float] = {}
    for name, coeff in form.coeffs.items():
        if name == var:
            continue
        if "*" in name and var in name.split("*"):
            symbolic[name] = coeff
        else:
            others[name] = coeff
    return direct, symbolic, others


def dim_constraint(fa: AffineForm, fb: AffineForm, var: str) -> DimConstraint:
    """Constrain the iteration distance at which ``fa(i) == fb(i + d)``.

    ``fa`` is the subscript of the first reference at iteration ``i``,
    ``fb`` that of the second at iteration ``i' = i + d``; variables
    other than ``var`` are loop-invariant symbols for the purpose of this
    test (inner-loop indices take equal values on both sides, which is
    conservative: an inner index difference shows up as UNKNOWN through
    the differing symbolic parts, never as a false independence).
    """
    ca, sym_a, other_a = _split_coeffs(fa, var)
    cb, sym_b, other_b = _split_coeffs(fb, var)
    if other_a != other_b or sym_a != sym_b:
        return DimConstraint(UNKNOWN)
    diff = fb.const - fa.const
    if sym_a:
        # Symbolic SIV: the stride of var involves a runtime parameter.
        # Equal forms collide only in the same iteration (distance 0);
        # a constant offset against a symbolic stride is unresolvable.
        if diff == 0 and ca == cb:
            return DimConstraint(DISTANCE, 0)
        return DimConstraint(UNKNOWN)
    if ca == cb:
        if ca == 0:
            # ZIV: iteration-invariant addresses — distinct constants can
            # never meet; identical ones meet in every iteration pair.
            if diff != 0:
                return DimConstraint(INDEPENDENT)
            return DimConstraint(ANY)
        # strong SIV: d = diff / ca must be integral
        if diff % ca != 0:
            return DimConstraint(INDEPENDENT)
        return DimConstraint(DISTANCE, int(diff // ca))
    if ca == 0 or cb == 0:
        return DimConstraint(UNKNOWN)  # weak-zero SIV: single crossing
    # weak SIV / MIV: GCD test on the two strides
    g = math.gcd(int(abs(ca)), int(abs(cb)))
    if g and diff % g != 0:
        return DimConstraint(INDEPENDENT)
    return DimConstraint(UNKNOWN)


def test_ref_pair(a: ArrayRef, b: ArrayRef, var: str,
                  coupled: bool = True) -> PairVerdict:
    """Can ``a`` at iteration ``i`` alias ``b`` at iteration ``i' != i``?

    Intersects the per-dimension distance constraints (after
    delinearization).  Rules, in order:

    * any INDEPENDENT dimension disproves the whole pair;
    * two dimensions demanding *different* exact distances are
      contradictory — independent (the coupled-subscript case; only
      with ``coupled=True``, else such pairs stay unknown);
    * a consistent exact distance 0 means the references can only meet
      within one iteration — no carried dependence;
    * a consistent nonzero distance is a carried dependence (proven when
      every other dimension agrees, unprovable-but-suspect when some
      dimension is unknown);
    * all-ANY dimensions are the fixed-slot (reduction accumulator)
      case: carried with no finite distance;
    * otherwise unknown.
    """
    ia, ib = delinearize(a.indices), delinearize(b.indices)
    if len(ia) != len(ib):
        return PairVerdict(unknown=True)
    constraints: list[DimConstraint] = []
    for ea, eb in zip(ia, ib):
        fa = affine_form(ea, [var])
        fb = affine_form(eb, [var])
        if fa is None or fb is None:
            constraints.append(DimConstraint(UNKNOWN))
            continue
        constraints.append(dim_constraint(fa, fb, var))
    kinds = {c.kind for c in constraints}
    if INDEPENDENT in kinds:
        return PairVerdict(independent=True)
    distances = {c.distance for c in constraints if c.kind == DISTANCE}
    if len(distances) > 1:
        if coupled:
            return PairVerdict(independent=True)  # contradictory requirements
        return PairVerdict(unknown=True)
    if distances:
        d = distances.pop()
        if d == 0:
            # collision restricted to a single iteration: loop independent
            return PairVerdict(independent=True)
        if UNKNOWN in kinds:
            return PairVerdict(unknown=True)
        return PairVerdict(carried=True, distance=d)
    if UNKNOWN in kinds:
        return PairVerdict(unknown=True)
    # every dimension is ANY: the same address is hit in all iterations
    return PairVerdict(carried=True)


def write_may_self_collide(ref: ArrayRef, var: str) -> bool:
    """Is a lone write a potential cross-iteration scatter collision?

    A write whose (delinearized) subscripts are affine in ``var`` maps
    each iteration to a distinct, analyzable address set; anything
    data-dependent (``a[idx[i]]``) may collide with itself.
    """
    return any(affine_form(ix, [var]) is None
               for ix in delinearize(ref.indices))

"""Upward-exposed-variable analysis for region splitting.

OpenMPC splits every parallel region at each explicit/implicit
synchronization point (Section III-D); the split is *incorrect* when a
private variable defined before the split is used after it ("upward
exposed private variables").  This module computes, for a proposed split
of a statement list, the set of scalars that are written in the prefix and
read in the suffix — the values OpenMPC must either re-materialize or
report to the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ir.expr import ArrayRef, Var
from repro.ir.stmt import (Assign, Block, Critical, For, If, LocalDecl,
                           Stmt, While)


def scalar_reads(stmt: Stmt) -> set[str]:
    """Scalar variable names read anywhere under ``stmt``.

    Loop induction variables defined by the loop itself are excluded.
    """
    reads: set[str] = set()
    bound: set[str] = set()

    def scan(s: Stmt) -> None:
        if isinstance(s, For):
            bound.add(s.var)
        for expr in s.exprs():
            for node in expr.walk():
                if isinstance(node, Var):
                    reads.add(node.name)
        if isinstance(s, Assign) and isinstance(s.target, Var):
            # plain writes do not read their target; augmented ones do
            if s.op is None:
                reads.discard(s.target.name)  # best effort (ordering)
        for child in s.child_stmts():
            scan(child)

    scan(stmt)
    return reads - bound


def scalar_writes(stmt: Stmt) -> set[str]:
    """Scalar variable names written anywhere under ``stmt``."""
    writes: set[str] = set()
    for s in stmt.walk():
        if isinstance(s, Assign) and isinstance(s.target, Var):
            writes.add(s.target.name)
        if isinstance(s, LocalDecl) and not s.shape:
            writes.add(s.name)
    return writes


@dataclass(frozen=True)
class SplitReport:
    """Result of analysing one region split point."""

    upward_exposed: frozenset[str]

    @property
    def safe(self) -> bool:
        return not self.upward_exposed


def analyze_split(prefix: Sequence[Stmt], suffix: Sequence[Stmt],
                  private: Sequence[str]) -> SplitReport:
    """Which *private* scalars defined in ``prefix`` are live into ``suffix``?

    Shared scalars survive a split through global memory; privates do not
    (each kernel launch gets fresh thread-private storage), so privates
    that are upward exposed break the split.
    """
    written: set[str] = set()
    for s in prefix:
        written |= scalar_writes(s)
    read: set[str] = set()
    for s in suffix:
        read |= scalar_reads(s)
    exposed = written & read & set(private)
    return SplitReport(frozenset(exposed))

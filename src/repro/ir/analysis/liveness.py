"""Upward-exposed-variable analysis for region splitting.

OpenMPC splits every parallel region at each explicit/implicit
synchronization point (Section III-D); the split is *incorrect* when a
private variable defined before the split is used after it ("upward
exposed private variables").  This module computes, for a proposed split
of a statement list, the set of scalars that are written in the prefix and
read in the suffix — the values OpenMPC must either re-materialize or
report to the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.ir.expr import ArrayRef, Const, Var
from repro.ir.stmt import (Assign, Block, Critical, For, If, LocalDecl,
                           Stmt, While)


def scalar_reads(stmt: Stmt) -> set[str]:
    """Scalar variable names read anywhere under ``stmt``.

    Loop induction variables defined by the loop itself are excluded.
    """
    reads: set[str] = set()
    bound: set[str] = set()

    def scan(s: Stmt) -> None:
        if isinstance(s, For):
            bound.add(s.var)
        for expr in s.exprs():
            for node in expr.walk():
                if isinstance(node, Var):
                    reads.add(node.name)
        if isinstance(s, Assign) and isinstance(s.target, Var):
            # plain writes do not read their target; augmented ones do
            if s.op is None:
                reads.discard(s.target.name)  # best effort (ordering)
        for child in s.child_stmts():
            scan(child)

    scan(stmt)
    return reads - bound


def scalar_writes(stmt: Stmt) -> set[str]:
    """Scalar variable names written anywhere under ``stmt``."""
    writes: set[str] = set()
    for s in stmt.walk():
        if isinstance(s, Assign) and isinstance(s.target, Var):
            writes.add(s.target.name)
        if isinstance(s, LocalDecl) and not s.shape:
            writes.add(s.name)
    return writes


def _dim_matches(upper, dim) -> bool:
    """Does a loop's exclusive upper bound span a declared dimension?"""
    if isinstance(dim, str):
        return isinstance(upper, Var) and upper.name == dim
    return isinstance(upper, Const) and upper.value == dim


def _covers_full_extent(target: ArrayRef, loops: Mapping[str, For],
                        arrays: Optional[Mapping]) -> bool:
    """Does ``a[i, j, ...]`` under the given unguarded loops write every
    element of the declared array?

    True only when each subscript is exactly the index of a distinct
    enclosing unguarded loop running ``0 .. dim`` with step 1 over the
    matching declared dimension.  Without declarations (``arrays`` is
    None, or the name is undeclared — e.g. a callee's formal parameter)
    we keep the historical name-granularity answer: any unguarded plain
    store counts as a kill.
    """
    if arrays is None:
        return True
    decl = arrays.get(target.name)
    if decl is None:
        return True
    if len(target.indices) != len(decl.shape):
        return False
    seen: set[str] = set()
    for idx, dim in zip(target.indices, decl.shape):
        if not isinstance(idx, Var) or idx.name in seen:
            return False
        seen.add(idx.name)
        loop = loops.get(idx.name)
        if loop is None:
            return False
        if not (isinstance(loop.lower, Const) and loop.lower.value == 0):
            return False
        if not (isinstance(loop.step, Const) and loop.step.value == 1):
            return False
        if not _dim_matches(loop.upper, dim):
            return False
    return True


def _array_flow(stmt: Stmt, functions: Optional[Mapping] = None,
                include_augmented_targets: bool = True,
                arrays: Optional[Mapping] = None,
                ) -> tuple[set[str], set[str]]:
    """(upward-exposed reads, unconditional kills) of arrays in ``stmt``."""
    from repro.ir.stmt import CallStmt

    functions = functions or {}
    exposed: set[str] = set()
    killed: set[str] = set()
    local: set[str] = set()

    def note_read(name: str) -> None:
        if name not in killed and name not in local:
            exposed.add(name)

    def note_reads(exprs) -> None:
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, ArrayRef):
                    note_read(node.name)

    def scan(s: Stmt, guarded: bool, loops: Mapping[str, For]) -> None:
        if isinstance(s, LocalDecl):
            if s.shape:
                local.add(s.name)
            note_reads([s.init] if s.init is not None else [])
            return
        if isinstance(s, Assign):
            if isinstance(s.target, ArrayRef):
                # subscripts and the RHS read first; an augmented
                # assignment also reads the target element itself
                note_reads(list(s.target.indices))
                note_reads([s.value])
                if s.op is not None and s.target.name not in local:
                    if include_augmented_targets:
                        note_read(s.target.name)
                elif (s.op is None and not guarded
                      and _covers_full_extent(s.target, loops, arrays)):
                    killed.add(s.target.name)
            else:
                note_reads([s.value])
            return
        if isinstance(s, CallStmt):
            func = functions.get(s.func) if functions else None
            if func is None:
                note_reads(s.args)  # unknown callee: assume it reads
                return
            param_map = {p.name: a.name
                         for p, a in zip(func.params, s.args)
                         if p.is_array and isinstance(a, Var)}
            # the callee's stores target its formal parameters, which
            # have no declarations here — its kills stay name-granular
            sub_exposed, sub_killed = _array_flow(
                func.body, functions,
                include_augmented_targets=include_augmented_targets)
            for name in sub_exposed:
                note_read(param_map.get(name, name))
            if not guarded:
                killed.update(param_map.get(n, n) for n in sub_killed)
            return
        inner_guarded = guarded or isinstance(s, (If, While))
        note_reads(s.exprs())
        inner_loops = loops
        if isinstance(s, For) and not guarded:
            inner_loops = dict(loops)
            inner_loops[s.var] = s
        for child in s.child_stmts():
            scan(child, inner_guarded, inner_loops)

    scan(stmt, guarded=False, loops={})
    return exposed, killed


def array_upward_exposed_reads(stmt: Stmt,
                               functions: Optional[Mapping] = None,
                               include_augmented_targets: bool = True,
                               arrays: Optional[Mapping] = None,
                               ) -> set[str]:
    """Arrays whose incoming contents ``stmt`` may read.

    Name-granularity forward walk in statement order: a read counts as
    upward-exposed unless the whole array was already *killed* — and the
    only kill we trust at name granularity is an unconditional plain
    assignment to the array (guarded writes under ``If``/``While`` may
    leave elements untouched, and an element store kills only that
    element, but per-name analysis — faithful to the paper's compilers,
    III-D2 — treats the first unguarded plain store as defining the
    array's region-local contents).  Iteration-local (``LocalDecl``)
    arrays are excluded; calls are followed through ``functions``
    (name → :class:`~repro.ir.program.Function`) when provided.

    Passing ``arrays`` (name → :class:`~repro.ir.program.ArrayDecl`)
    tightens the kill condition to *full-extent* stores only: a plain
    store kills the array just when every subscript is the index of a
    distinct enclosing unguarded loop running ``0 .. dim`` with step 1
    over the matching declared dimension.  This is the fix the backward
    live-device-data analysis demanded: JACOBI's copyback writes only
    the ``1 .. n-1`` interior of ``a``, so boundary elements stay
    upward-exposed — whereas SPMUL's ``y[i] = 0`` over the full
    ``0 .. n`` legitimately kills ``y`` and keeps its dead-copyin
    verdict.

    This decides whether a ``copyin`` actually feeds anything: JACOBI's
    stencil reads ``a`` before writing ``b`` (exposed), while an
    initialization like ``y[i] = 0`` kills ``y`` before a later
    ``y[i] += ...`` accumulation (not exposed).  With
    ``include_augmented_targets=False`` the read a ``+=``-style target
    performs is ignored — isolating *plain* consumers of incoming data
    from reduction-accumulator slots, whose seed the reduction machinery
    (clause lowering or host combine) supplies out of band.
    """
    exposed, _killed = _array_flow(
        stmt, functions,
        include_augmented_targets=include_augmented_targets,
        arrays=arrays)
    return exposed


@dataclass(frozen=True)
class SplitReport:
    """Result of analysing one region split point."""

    upward_exposed: frozenset[str]

    @property
    def safe(self) -> bool:
        return not self.upward_exposed


def analyze_split(prefix: Sequence[Stmt], suffix: Sequence[Stmt],
                  private: Sequence[str]) -> SplitReport:
    """Which *private* scalars defined in ``prefix`` are live into ``suffix``?

    Shared scalars survive a split through global memory; privates do not
    (each kernel launch gets fresh thread-private storage), so privates
    that are upward exposed break the split.
    """
    written: set[str] = set()
    for s in prefix:
        written |= scalar_writes(s)
    read: set[str] = set()
    for s in suffix:
        read |= scalar_reads(s)
    exposed = written & read & set(private)
    return SplitReport(frozenset(exposed))

"""Reduction-pattern detection.

The paper distinguishes three reduction situations (Sections III and V):

* **explicit clauses** — OpenMP/OpenACC ``reduction(op: var)``; OpenMPC
  additionally accepts *array* variables in the clause;
* **implicit scalar reductions** — PGI Accelerator has no reduction clause
  and relies on the compiler spotting ``sum += expr`` patterns; complex
  patterns defeat the detector ("the compiler either fails to detect or
  generates wrong output codes");
* **critical-section reductions** — OpenMPC recognizes array reductions
  written as ``omp critical`` blocks of ``q[j] += ...`` updates (the EP
  and KMEANS porting story) and converts them to two-level GPU reductions.

:func:`detect_reductions` implements the pattern matcher; its
``complexity`` score feeds the PGI implicit-detection limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.expr import ArrayRef, Expr, Var
from repro.ir.stmt import (Assign, Block, Critical, For, If, LocalDecl,
                           Stmt, While)
from repro.ir.visitors import iter_stmts


@dataclass(frozen=True)
class ReductionPattern:
    """One detected reduction.

    ``complexity`` counts the obstacles a pattern-matching compiler faces:
    +1 per enclosing conditional, +1 per enclosing sequential loop beyond
    the first, +1 when the reduced value itself reads the target, +2 when
    the target is an array element with a thread-dependent subscript.
    """

    var: str
    op: str
    is_array: bool
    in_critical: bool
    complexity: int
    stmt: Assign

    @property
    def simple(self) -> bool:
        """Simple enough for implicit detection (PGI-style)."""
        return self.complexity <= 1 and not self.is_array


def _target_name(target: Expr) -> Optional[str]:
    if isinstance(target, Var):
        return target.name
    if isinstance(target, ArrayRef):
        return target.name
    return None


def detect_reductions(body: Stmt, parallel_vars: tuple[str, ...] = ()) -> list[ReductionPattern]:
    """Find ``x op= expr`` updates that form cross-iteration reductions.

    A candidate is a reduction when the accumulated target is loop-carried
    across the *parallel* iterations: a scalar target, or an array element
    whose subscript does not include any parallel index (otherwise each
    thread owns its element and no reduction is needed).
    """
    patterns: list[ReductionPattern] = []
    pset = set(parallel_vars)
    private_names: set[str] = set()

    def scan(stmt: Stmt, depth_loops: int, depth_ifs: int,
             in_critical: bool, loop_vars: frozenset[str]) -> None:
        if isinstance(stmt, LocalDecl):
            private_names.add(stmt.name)
            return
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                scan(s, depth_loops, depth_ifs, in_critical, loop_vars)
        elif isinstance(stmt, For):
            extra = 0 if stmt.parallel else 1
            scan(stmt.body, depth_loops + extra, depth_ifs, in_critical,
                 loop_vars | {stmt.var})
        elif isinstance(stmt, While):
            scan(stmt.body, depth_loops + 1, depth_ifs, in_critical,
                 loop_vars)
        elif isinstance(stmt, If):
            scan(stmt.then_body, depth_loops, depth_ifs + 1, in_critical,
                 loop_vars)
            if stmt.else_body is not None:
                scan(stmt.else_body, depth_loops, depth_ifs + 1,
                     in_critical, loop_vars)
        elif isinstance(stmt, Critical):
            scan(stmt.body, depth_loops, depth_ifs, True, loop_vars)
        elif isinstance(stmt, Assign) and stmt.op is not None:
            name = _target_name(stmt.target)
            if name is None or name in private_names:
                return  # thread-private accumulator: not a reduction
            # An array element whose subscript is fixed for the whole
            # region (constants or region parameters — no loop variable)
            # is a scalar accumulator stored in memory; only a subscript
            # that varies with a loop index makes it an *array* reduction.
            # A subscript that is an affine function of the parallel index
            # gives each thread its own element (no reduction), but a
            # *data-dependent* subscript (histogramming through a gather)
            # can collide across threads and is an array reduction.
            is_array = False
            if isinstance(stmt.target, ArrayRef):
                idx_vars: set[str] = set()
                has_gather = False
                for index in stmt.target.indices:
                    idx_vars |= index.free_vars()
                    if any(isinstance(node, ArrayRef)
                           for node in index.walk()):
                        has_gather = True
                if (idx_vars & pset) and not has_gather:
                    return  # thread-owned element: no reduction needed
                is_array = has_gather or bool(idx_vars & loop_vars)
            complexity = depth_ifs + max(0, depth_loops - 1)
            if name in stmt.value.array_names() or name in stmt.value.free_vars():
                complexity += 1
            if is_array:
                complexity += 2
            patterns.append(ReductionPattern(
                var=name, op=stmt.op, is_array=is_array,
                in_critical=in_critical, complexity=complexity, stmt=stmt))

    scan(body, 0, 0, False, frozenset())
    return patterns


def critical_is_reduction(crit: Critical) -> bool:
    """Is a critical section's body *purely* a reduction update set?

    This is the OpenMPC acceptance test: every statement inside must be an
    augmented assignment (or a local declaration feeding one); anything
    else makes the critical section untranslatable by every model.
    """
    for stmt in crit.body.stmts:
        if isinstance(stmt, Assign):
            if stmt.op is None:
                return False
        elif isinstance(stmt, LocalDecl):
            continue
        elif isinstance(stmt, For):
            # A loop of augmented updates (array reduction) is fine.
            if not all(isinstance(s, Assign) and s.op is not None
                       for s in stmt.body.stmts):
                return False
        else:
            return False
    return True


def has_unsupported_critical(body: Stmt) -> bool:
    """Any critical section that is *not* a pure reduction pattern?"""
    return any(isinstance(s, Critical) and not critical_is_reduction(s)
               for s in iter_stmts(body))

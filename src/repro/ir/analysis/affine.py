"""Affine-expression analysis and the extended-static-control check.

R-Stream's polyhedral front end (Section III-E) accepts only *extended
static control programs*: ``for`` loops whose bounds are integer affine
functions of enclosing loop indices and parameters, over arrays whose
subscripts are affine in the same terms.  This module implements

* :func:`affine_form` — decompose an expression into
  ``const + Σ coeff_i · var_i`` when possible,
* :func:`is_affine_in` — boolean convenience wrapper,
* :func:`region_is_affine` — the whole-region ESCoP test used both by the
  R-Stream compiler for mappability and by the test-suite to validate the
  benchmarks' ``affine_hint`` flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.ir.expr import (ArrayRef, BinOp, Call, Cast, Const, Expr,
                           Ternary, UnOp, Var)
from repro.ir.program import ParallelRegion
from repro.ir.stmt import (Assign, Barrier, Block, CallStmt, Critical, For,
                           If, LocalDecl, PointerArith, Return, Stmt, While)


@dataclass(frozen=True)
class AffineForm:
    """``const + Σ coeffs[name] * name`` with integer-valued coefficients.

    Coefficients may be floats if the source used float literals, but the
    polyhedral test additionally requires them to be integral.
    """

    coeffs: Mapping[str, float]
    const: float

    def coefficient(self, name: str) -> float:
        return self.coeffs.get(name, 0.0)

    def is_integral(self) -> bool:
        return (float(self.const).is_integer()
                and all(float(c).is_integer() for c in self.coeffs.values()))

    def depends_on(self, names: Iterable[str]) -> bool:
        return any(self.coefficient(n) != 0 for n in names)


def _combine(a: AffineForm, b: AffineForm, sign: float) -> AffineForm:
    coeffs = dict(a.coeffs)
    for name, cb in b.coeffs.items():
        coeffs[name] = coeffs.get(name, 0.0) + sign * cb
    coeffs = {n: cv for n, cv in coeffs.items() if cv != 0}
    return AffineForm(coeffs, a.const + sign * b.const)


def affine_form(expr: Expr, index_vars: Iterable[str]) -> Optional[AffineForm]:
    """Decompose ``expr`` as affine in ``index_vars``.

    Variables *not* in ``index_vars`` are treated as symbolic parameters:
    they are allowed only where they keep the expression affine in the
    index variables (added, or multiplying a constant — a parameter
    multiplying an index variable, like ``i * n``, is still affine *in i*
    with a symbolic coefficient; we record it with the pseudo-name
    ``"i*n"`` so stride analyses can see the dependence but the polyhedral
    check can still accept it, matching R-Stream's parametric affine
    support).

    Returns ``None`` if the expression is non-affine (products of two
    index variables, division by an index variable, indirect array
    references, intrinsic calls, ternaries).
    """
    index_set = set(index_vars)

    def walk(e: Expr) -> Optional[AffineForm]:
        if isinstance(e, Const):
            return AffineForm({}, float(e.value))
        if isinstance(e, Var):
            return AffineForm({e.name: 1.0}, 0.0)
        if isinstance(e, Cast):
            return walk(e.operand)
        if isinstance(e, UnOp):
            if e.op == "-":
                inner = walk(e.operand)
                if inner is None:
                    return None
                return AffineForm({n: -cv for n, cv in inner.coeffs.items()},
                                  -inner.const)
            return None
        if isinstance(e, BinOp):
            if e.op in ("+", "-"):
                left, right = walk(e.left), walk(e.right)
                if left is None or right is None:
                    return None
                return _combine(left, right, 1.0 if e.op == "+" else -1.0)
            if e.op == "*":
                left, right = walk(e.left), walk(e.right)
                if left is None or right is None:
                    return None
                # one side must be free of index variables
                lvars = {n for n in left.coeffs if n in index_set}
                rvars = {n for n in right.coeffs if n in index_set}
                if lvars and rvars:
                    return None  # i * j: not affine
                if not lvars and not left.coeffs:
                    # pure constant * affine
                    k = left.const
                    return AffineForm({n: k * cv for n, cv in right.coeffs.items()},
                                      k * right.const)
                if not rvars and not right.coeffs:
                    k = right.const
                    return AffineForm({n: k * cv for n, cv in left.coeffs.items()},
                                      k * left.const)
                # parameter * index (e.g. i * n): parametric-affine.
                if not lvars:
                    param_side, idx_side = left, right
                else:
                    param_side, idx_side = right, left
                # encode symbolic coefficients as composite names.
                param_names = "*".join(sorted(param_side.coeffs)) or "1"
                coeffs: dict[str, float] = {}
                for n, cv in idx_side.coeffs.items():
                    key = n if param_names == "1" else f"{n}*{param_names}"
                    coeffs[key] = coeffs.get(key, 0.0) + cv
                if param_side.const:
                    for n, cv in idx_side.coeffs.items():
                        coeffs[n] = coeffs.get(n, 0.0) + cv * param_side.const
                if idx_side.const:
                    for n in param_side.coeffs:
                        coeffs[n] = coeffs.get(n, 0.0) + idx_side.const * param_side.coeffs[n]
                return AffineForm(coeffs, param_side.const * idx_side.const)
            if e.op in ("/", "//"):
                left, right = walk(e.left), walk(e.right)
                if left is None or right is None:
                    return None
                if right.coeffs:
                    return None  # division by a variable: not affine
                if right.const == 0:
                    return None
                k = 1.0 / right.const
                if e.op == "//":
                    # integer division of an index expression is not affine
                    # unless the numerator has no index variables.
                    if any(n in index_set or "*" in n for n in left.coeffs):
                        return None
                return AffineForm({n: k * cv for n, cv in left.coeffs.items()},
                                  k * left.const)
            if e.op == "%":
                return None
            if e.op in ("min", "max"):
                # Quasi-affine; the polyhedral model supports min/max in
                # bounds, so accept when both sides are affine and report
                # the union of dependencies with the more conservative
                # side's coefficients (used only for dependence pruning).
                left, right = walk(e.left), walk(e.right)
                if left is None or right is None:
                    return None
                coeffs = dict(left.coeffs)
                for n, cv in right.coeffs.items():
                    coeffs.setdefault(n, cv)
                return AffineForm(coeffs, max(left.const, right.const))
            return None
        # ArrayRef (indirect), Call, Ternary: not affine.
        return None

    return walk(expr)


def is_affine_in(expr: Expr, index_vars: Iterable[str]) -> bool:
    """True when ``expr`` is (parametric-)affine in the index variables."""
    return affine_form(expr, index_vars) is not None


@dataclass
class AffineReport:
    """Outcome of the whole-region static-control check."""

    affine: bool
    violations: list[str] = field(default_factory=list)

    def add(self, message: str) -> None:
        self.affine = False
        self.violations.append(message)


def region_is_affine(region: ParallelRegion) -> AffineReport:
    """Extended-static-control test for a parallel region.

    Checks, statement by statement, that:

    * loops are ``for`` loops with affine bounds and unit or constant step,
    * there are no ``while`` loops, critical sections, user calls,
      barriers, or pointer arithmetic,
    * every array subscript is affine in the enclosing loop indices,
    * conditionals (if present) have affine conditions (static control).
    """
    report = AffineReport(affine=True)
    #: local scalars whose defining expression is NOT affine in the loop
    #: indices — subscripts through them are data-dependent (the check a
    #: naive implementation misses: ``kx = e % n; tw[kx] = ...``)
    nonaffine_locals: set[str] = set()

    def value_is_affine(expr: Expr, loop_vars: tuple[str, ...]) -> bool:
        if expr.free_vars() & nonaffine_locals:
            return False
        return is_affine_in(expr, loop_vars)

    def track_scalar_def(name: str, value: Optional[Expr],
                         loop_vars: tuple[str, ...]) -> None:
        if value is None or not value_is_affine(value, loop_vars):
            nonaffine_locals.add(name)
        else:
            nonaffine_locals.discard(name)

    def scan(stmt: Stmt, loop_vars: tuple[str, ...]) -> None:
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                scan(s, loop_vars)
            return
        if isinstance(stmt, For):
            if not is_affine_in(stmt.lower, loop_vars):
                report.add(f"loop {stmt.var}: non-affine lower bound {stmt.lower!r}")
            if not is_affine_in(stmt.upper, loop_vars):
                report.add(f"loop {stmt.var}: non-affine upper bound {stmt.upper!r}")
            if not isinstance(stmt.step, Const):
                report.add(f"loop {stmt.var}: non-constant step {stmt.step!r}")
            scan(stmt.body, loop_vars + (stmt.var,))
            return
        if isinstance(stmt, While):
            report.add(f"while loop: {stmt.cond!r}")
            scan(stmt.body, loop_vars)
            return
        if isinstance(stmt, If):
            cond_ok = all(
                is_affine_in(part, loop_vars)
                for part in _comparison_sides(stmt.cond)
            )
            if not cond_ok:
                report.add(f"non-affine conditional {stmt.cond!r}")
            scan(stmt.then_body, loop_vars)
            if stmt.else_body is not None:
                scan(stmt.else_body, loop_vars)
            return
        if isinstance(stmt, Critical):
            report.add("critical section")
            return
        if isinstance(stmt, CallStmt):
            report.add(f"user function call {stmt.func!r}")
            return
        if isinstance(stmt, PointerArith):
            report.add(f"pointer arithmetic {stmt!r}")
            return
        if isinstance(stmt, Barrier):
            report.add("explicit barrier")
            return
        if isinstance(stmt, (Assign, LocalDecl, Return)):
            if isinstance(stmt, LocalDecl) and not stmt.shape:
                track_scalar_def(stmt.name, stmt.init, loop_vars)
            if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
                track_scalar_def(stmt.target.name, stmt.value, loop_vars)
            for expr in stmt.exprs():
                for node in expr.walk():
                    if isinstance(node, ArrayRef):
                        for index in node.indices:
                            if index.free_vars() & nonaffine_locals:
                                report.add(
                                    f"subscript {index!r} in {node!r} uses "
                                    "a data-dependent local")
                                continue
                            form = affine_form(index, loop_vars)
                            if form is None:
                                report.add(
                                    f"non-affine subscript {index!r} in {node!r}")
                            elif _has_symbolic_linearization(form, loop_vars):
                                # subscripts like i*n + j — a multi-dim
                                # array manually linearized with a
                                # *symbolic* stride.  Recovering the
                                # multi-dimensional view (delinearization)
                                # is beyond the mapper; constant-stride
                                # linearizations (i*5 + c) are fine.
                                report.add(
                                    f"symbolically linearized subscript "
                                    f"{index!r} in {node!r}")
                            elif _contains_minmax(index):
                                # quasi-affine access functions (boundary
                                # clamps like MIN(i+1, n-1)) are beyond
                                # the supported access-function class
                                report.add(
                                    f"quasi-affine (min/max) subscript "
                                    f"{index!r} in {node!r}")
                    elif isinstance(node, Ternary):
                        report.add(f"data-dependent select {node!r}")
            return
        report.add(f"unhandled construct {stmt!r}")

    scan(region.body, ())
    return report


def _has_symbolic_linearization(form: AffineForm,
                                loop_vars: Iterable[str]) -> bool:
    """Does the affine form multiply a loop index by a symbolic parameter?

    Such coefficients appear as composite names (``"i*n"``) produced by
    :func:`affine_form` for parametric-affine products.
    """
    lv = set(loop_vars)
    for name in form.coeffs:
        if "*" in name:
            parts = name.split("*")
            if any(p in lv for p in parts):
                return True
    return False


def _contains_minmax(expr: Expr) -> bool:
    from repro.ir.expr import BinOp

    return any(isinstance(node, BinOp) and node.op in ("min", "max")
               for node in expr.walk())


def _comparison_sides(cond: Expr) -> list[Expr]:
    """Split a (possibly compound) comparison into its scalar sides."""
    if isinstance(cond, BinOp) and cond.op in ("&&", "||"):
        return _comparison_sides(cond.left) + _comparison_sides(cond.right)
    if isinstance(cond, BinOp) and cond.op in ("<", "<=", ">", ">=", "==", "!="):
        return [cond.left, cond.right]
    return [cond]

"""Static analyses over the loop-nest IR."""

from repro.ir.analysis.access import (AccessPattern, AccessSummary, RefClass,
                                      classify_ref, summarize_accesses)
from repro.ir.analysis.affine import (AffineForm, AffineReport, affine_form,
                                      is_affine_in, region_is_affine)
from repro.ir.analysis.deps import (Dependence, loop_carried_dependences,
                                    parallelization_safe)
from repro.ir.analysis.features import RegionFeatures, scan_region
from repro.ir.analysis.liveness import SplitReport, analyze_split
from repro.ir.analysis.metrics import WorkEstimate, body_work, expr_flops
from repro.ir.analysis.reductions import (ReductionPattern,
                                          critical_is_reduction,
                                          detect_reductions,
                                          has_unsupported_critical)

__all__ = [
    "AccessPattern", "AccessSummary", "RefClass", "classify_ref",
    "summarize_accesses",
    "AffineForm", "AffineReport", "affine_form", "is_affine_in",
    "region_is_affine",
    "Dependence", "loop_carried_dependences", "parallelization_safe",
    "RegionFeatures", "scan_region",
    "SplitReport", "analyze_split",
    "WorkEstimate", "body_work", "expr_flops",
    "ReductionPattern", "critical_is_reduction", "detect_reductions",
    "has_unsupported_critical",
]

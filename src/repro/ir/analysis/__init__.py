"""Static analyses over the loop-nest IR."""

from repro.ir.analysis.access import (AccessPattern, AccessSummary, RefClass,
                                      classify_ref, summarize_accesses)
from repro.ir.analysis.affine import (AffineForm, AffineReport, affine_form,
                                      is_affine_in, region_is_affine)
from repro.ir.analysis.deps import (Dependence, loop_carried_dependences,
                                    parallelization_safe)
from repro.ir.analysis.features import RegionFeatures, scan_region
from repro.ir.analysis.liveness import (SplitReport, analyze_split,
                                        array_upward_exposed_reads)
from repro.ir.analysis.metrics import WorkEstimate, body_work, expr_flops
from repro.ir.analysis.miv import (DimConstraint, PairVerdict, delinearize,
                                   dim_constraint, test_ref_pair,
                                   write_may_self_collide)
from repro.ir.analysis.reductions import (ReductionPattern,
                                          critical_is_reduction,
                                          detect_reductions,
                                          has_unsupported_critical)

__all__ = [
    "AccessPattern", "AccessSummary", "RefClass", "classify_ref",
    "summarize_accesses",
    "AffineForm", "AffineReport", "affine_form", "is_affine_in",
    "region_is_affine",
    "Dependence", "loop_carried_dependences", "parallelization_safe",
    "RegionFeatures", "scan_region",
    "SplitReport", "analyze_split", "array_upward_exposed_reads",
    "WorkEstimate", "body_work", "expr_flops",
    "DimConstraint", "PairVerdict", "delinearize", "dim_constraint",
    "test_ref_pair", "write_may_self_collide",
    "ReductionPattern", "critical_is_reduction", "detect_reductions",
    "has_unsupported_critical",
]

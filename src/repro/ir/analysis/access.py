"""Memory-access-pattern classification.

This analysis answers the question at the heart of Section V: *given a
parallelization (which loop indices become GPU thread indices), how does
each array reference hit global memory?*  Four classes:

``COALESCED``
    consecutive threads touch consecutive elements (thread index appears
    with coefficient 1 in the fastest-varying subscript) — one or two
    128-byte transactions per warp.
``STRIDED``
    the thread index appears with a constant stride > 1, or in a slower
    subscript dimension (stride = product of trailing extents) — up to 32
    transactions per warp.
``INDIRECT``
    the subscript goes through another array (``x[col[k]]``) — data-
    dependent gather/scatter, modeled as near-worst-case transactions.
``UNIFORM``
    the address does not depend on the thread index — one transaction,
    broadcast, and a prime candidate for constant/texture memory.

The classification is *static* and feeds both the coalescing cost model
(:mod:`repro.gpusim.coalescing`) and the optimization reasoning in the
model compilers (parallel loop-swap exists precisely to turn STRIDED into
COALESCED).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.ir.analysis.affine import affine_form
from repro.ir.analysis.ranges import (SymRange, bindings_env, estimate_trips,
                                      loop_range)
from repro.ir.expr import ArrayRef, Const, Expr, Var
from repro.ir.stmt import (Assign, Block, Critical, For, If, LocalDecl,
                           Stmt, While)


class AccessPattern(enum.Enum):
    """How a warp's threads spread over memory for one reference."""

    COALESCED = "coalesced"
    STRIDED = "strided"
    INDIRECT = "indirect"
    UNIFORM = "uniform"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Stride value used when the thread index appears in a non-fastest
#: subscript dimension of symbolic extent (row stride of a big matrix):
#: effectively fully uncoalesced.
SYMBOLIC_LARGE_STRIDE = 1 << 20


@dataclass(frozen=True)
class RefClass:
    """Classification of a single array reference."""

    array: str
    pattern: AccessPattern
    stride: int = 1
    is_store: bool = False
    #: True when every thread reads the same address *and* the data is
    #: read-only in the kernel — eligible for constant/texture placement.
    read_only_uniform: bool = False


def _depends_on(expr: Expr, names: set[str],
                indirect_carriers: set[str]) -> tuple[bool, bool]:
    """(depends on thread vars?, via an indirect array load?)."""
    direct = False
    indirect = False
    for node in expr.walk():
        if isinstance(node, Var) and node.name in names:
            direct = True
        if isinstance(node, ArrayRef):
            # The inner ref's own indices may depend on thread vars, or the
            # array itself may hold thread-dependent values (frontier
            # queues); either way the outer address is data-dependent.
            sub_direct, _ = _depends_on_many(node.indices, names,
                                             indirect_carriers)
            if sub_direct or node.name in indirect_carriers:
                indirect = True
    return direct, indirect


def _depends_on_many(exprs: Iterable[Expr], names: set[str],
                     indirect_carriers: set[str]) -> tuple[bool, bool]:
    direct = indirect = False
    for e in exprs:
        d, ind = _depends_on(e, names, indirect_carriers)
        direct |= d
        indirect |= ind
    return direct, indirect


def _approx_warp_deriv(expr: Expr, fastest: str) -> Optional[float]:
    """Approximate d(expr)/d(fastest) across one warp's lanes.

    Handles the division/modulo index recovery of collapsed loops:
    ``e % K`` differentiates like ``e`` (lanes stay within one K-block),
    ``e // K`` like ``e``/K — with an unknown (symbolic) K assumed to be
    at least a warp wide, so the quotient is lane-invariant.  Returns
    ``None`` when the derivative is genuinely unknown (products of two
    lane-dependent factors, lane-dependent divisors, gathers).
    """
    from repro.ir.expr import BinOp, Cast, UnOp

    if isinstance(expr, Const):
        return 0.0
    if isinstance(expr, Var):
        return 1.0 if expr.name == fastest else 0.0
    if isinstance(expr, Cast):
        return _approx_warp_deriv(expr.operand, fastest)
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = _approx_warp_deriv(expr.operand, fastest)
        return -inner if inner is not None else None
    if isinstance(expr, ArrayRef):
        # a gather: unknown derivative unless lane-invariant
        sub = [_approx_warp_deriv(i, fastest) for i in expr.indices]
        if all(s == 0.0 for s in sub):
            return 0.0
        return None
    if isinstance(expr, BinOp):
        dl = _approx_warp_deriv(expr.left, fastest)
        dr = _approx_warp_deriv(expr.right, fastest)
        if expr.op in ("+", "-"):
            if dl is None or dr is None:
                return None
            return dl + dr if expr.op == "+" else dl - dr
        if expr.op == "*":
            if dl is None or dr is None:
                return None
            if dl != 0.0 and dr != 0.0:
                return None  # bilinear in the lane index
            if dl == 0.0 and dr == 0.0:
                return 0.0
            if dr == 0.0:
                scale = _const_scale(expr.right)
                return dl * scale if scale is not None else None
            scale = _const_scale(expr.left)
            return dr * scale if scale is not None else None
        if expr.op in ("//", "/"):
            if dl is None:
                return None
            if dr != 0.0:
                return None  # lane-dependent divisor
            if isinstance(expr.right, Const) and expr.right.value != 0:
                return dl / float(expr.right.value)
            # symbolic divisor: assume >= warp width
            return 0.0 if dl is not None else None
        if expr.op == "%":
            if dl is None or dr != 0.0:
                return None
            return dl  # within one modulus block the lanes are contiguous
        if expr.op in ("min", "max"):
            if dl is None or dr is None:
                return None
            return max(abs(dl), abs(dr))
    return None


def _const_scale(expr: Expr) -> Optional[float]:
    """Numeric value of a lane-invariant factor, when statically known."""
    if isinstance(expr, Const):
        return float(expr.value)
    return None


def _strip_monotone(ref: ArrayRef, monotone: set[str]) -> ArrayRef:
    """Approximate 1-D monotone index arrays by the identity map.

    ``J[iN[i]][jW[j]]`` classifies like ``J[i][j]`` (the clamping arrays
    hold i±1-style values), while the loads *of* iN/jW are still recorded
    separately by the caller.
    """
    from repro.ir.visitors import ExprTransformer

    class _Stripper(ExprTransformer):
        def visit_ArrayRef(self, e: ArrayRef):
            indices = tuple(self.visit(i) for i in e.indices)
            if e.name in monotone and len(indices) == 1:
                return indices[0]
            if all(a is b for a, b in zip(indices, e.indices)):
                return e
            return ArrayRef(e.name, indices)

    stripped = tuple(_Stripper().visit(i) for i in ref.indices)
    if all(a is b for a, b in zip(stripped, ref.indices)):
        return ref
    return ArrayRef(ref.name, stripped)


def classify_ref(ref: ArrayRef, thread_vars: Sequence[str],
                 dim_extents: Optional[Sequence[Optional[int]]] = None,
                 is_store: bool = False,
                 indirect_carriers: Iterable[str] = (),
                 monotone_carriers: Iterable[str] = ()) -> RefClass:
    """Classify one array reference against the parallelized indices.

    Parameters
    ----------
    thread_vars:
        Loop indices mapped to GPU threads, ordered outermost-first; the
        *last* one maps to ``threadIdx.x`` (fastest varying across a warp).
    dim_extents:
        Known extents of the array's dimensions (``None`` for symbolic);
        used to compute the element stride of non-fastest subscripts.
    indirect_carriers:
        Names of scalar-valued index arrays whose *content* depends on the
        thread index even though their subscript may not (e.g. a frontier
        queue); references through them are indirect.
    """
    monotone = set(monotone_carriers)
    if monotone:
        ref = _strip_monotone(ref, monotone)
    tset = set(thread_vars)
    fastest = thread_vars[-1] if thread_vars else None

    # Indirect check first: a subscript that reads another array whose
    # address depends on the *lane* index (the fastest thread variable)
    # is data-dependent across the warp.  Subscript arrays indexed only
    # by slower (block) dimensions — Rodinia's iN[i]/jW[j] clamping
    # arrays — do not break coalescing: every lane reads the same entry.
    carrier_set = set(indirect_carriers)
    lane_set = {fastest} if fastest is not None else set()
    _, any_indirect = _depends_on_many(ref.indices, lane_set, carrier_set)
    if any_indirect:
        return RefClass(ref.name, AccessPattern.INDIRECT, stride=0,
                        is_store=is_store)

    direct, _ = _depends_on_many(ref.indices, tset, carrier_set)
    if not direct:
        return RefClass(ref.name, AccessPattern.UNIFORM, stride=0,
                        is_store=is_store,
                        read_only_uniform=not is_store)

    if fastest is None:
        return RefClass(ref.name, AccessPattern.UNIFORM, stride=0,
                        is_store=is_store)

    # Compute element stride w.r.t. the fastest thread index.  Row-major:
    # flat = Σ idx_d · Π_{d'>d} extent_{d'}.
    ndim = ref.ndim
    extents: list[Optional[int]] = list(dim_extents) if dim_extents else [None] * ndim
    if len(extents) < ndim:
        extents = extents + [None] * (ndim - len(extents))

    total_stride = 0.0
    symbolic = False
    for d, index in enumerate(ref.indices):
        form = affine_form(index, [fastest])
        if form is None:
            # Non-affine in the fastest var.  Division/modulo chains from
            # manually collapsed loops (``t // cols``, ``t % cols``) have
            # a well-defined within-warp derivative: estimate it, since
            # the physical access is often perfectly coalesced.
            deriv = _approx_warp_deriv(index, fastest)
            if deriv is None:
                return RefClass(ref.name, AccessPattern.STRIDED,
                                stride=SYMBOLIC_LARGE_STRIDE,
                                is_store=is_store)
            if abs(deriv) < 1.0 / 16.0:
                continue  # effectively constant across the warp
            dim_stride = 1.0
            for ext in extents[d + 1:]:
                if ext is None:
                    symbolic = True
                    dim_stride = float(SYMBOLIC_LARGE_STRIDE)
                    break
                dim_stride *= ext
            total_stride += abs(deriv) * dim_stride
            continue
        coeff = form.coefficient(fastest)
        sym_coeff = any("*" in name and fastest in name.split("*")
                        for name in form.coeffs)
        if coeff == 0 and not sym_coeff:
            continue
        # stride of this dimension = product of trailing extents
        dim_stride = 1.0
        for e in extents[d + 1:]:
            if e is None:
                symbolic = True
                dim_stride = float(SYMBOLIC_LARGE_STRIDE)
                break
            dim_stride *= e
        if sym_coeff:
            symbolic = True
            total_stride += float(SYMBOLIC_LARGE_STRIDE)
        else:
            total_stride += abs(coeff) * dim_stride

    if total_stride == 0:
        # fastest var cancelled out (e.g. A[i - i]); other thread vars may
        # still appear — those vary per block, not per warp lane.
        return RefClass(ref.name, AccessPattern.UNIFORM, stride=0,
                        is_store=is_store)
    stride = int(min(total_stride, SYMBOLIC_LARGE_STRIDE))
    if stride == 1 and not symbolic:
        return RefClass(ref.name, AccessPattern.COALESCED, stride=1,
                        is_store=is_store)
    return RefClass(ref.name, AccessPattern.STRIDED, stride=stride,
                    is_store=is_store)


@dataclass
class AccessSummary:
    """Aggregated per-kernel access descriptors for the timing model."""

    #: (RefClass, executions-per-thread) pairs.
    refs: list[tuple[RefClass, float]] = field(default_factory=list)

    def total_per_thread(self) -> float:
        return sum(count for _, count in self.refs)

    def loads(self) -> list[tuple[RefClass, float]]:
        return [(r, n) for r, n in self.refs if not r.is_store]

    def stores(self) -> list[tuple[RefClass, float]]:
        return [(r, n) for r, n in self.refs if r.is_store]

    def arrays(self) -> set[str]:
        return {r.array for r, _ in self.refs}


def _const_value(expr: Expr, bindings: Mapping[str, float]) -> Optional[float]:
    """Best-effort numeric evaluation of a bound expression."""
    from repro.ir.expr import BinOp, Cast, UnOp

    if isinstance(expr, Const):
        return float(expr.value)
    if isinstance(expr, Var):
        val = bindings.get(expr.name)
        return float(val) if val is not None else None
    if isinstance(expr, Cast):
        return _const_value(expr.operand, bindings)
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = _const_value(expr.operand, bindings)
        return -inner if inner is not None else None
    if isinstance(expr, BinOp):
        left = _const_value(expr.left, bindings)
        right = _const_value(expr.right, bindings)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left / right if right else None
            if expr.op == "//":
                return float(int(left // right)) if right else None
            if expr.op == "%":
                return float(left % right) if right else None
            if expr.op == "min":
                return min(left, right)
            if expr.op == "max":
                return max(left, right)
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
    return None


DEFAULT_SEQ_TRIPS = 16.0
"""Assumed trip count for sequential loops with unresolvable bounds
(e.g. CSR row loops); roughly the average nonzeros-per-row of the
evaluation inputs."""


def summarize_accesses(body: Stmt, thread_vars: Sequence[str],
                       array_extents: Mapping[str, Sequence[Optional[int]]],
                       bindings: Optional[Mapping[str, float]] = None,
                       indirect_carriers: Iterable[str] = (),
                       monotone_carriers: Iterable[str] = (),
                       classify_against: str = "thread",
                       local_patterns: Optional[Mapping[str, AccessPattern]] = None,
                       pattern_overrides: Optional[Mapping[str, AccessPattern]] = None,
                       ) -> AccessSummary:
    """Walk a kernel body, producing weighted access descriptors.

    Each reference is weighted by the product of enclosing *sequential*
    loop trip counts (loops named in ``thread_vars`` are the thread grid,
    weight 1 per thread) and a 0.5 factor per enclosing data-dependent
    conditional (divergence averaging).

    ``classify_against`` selects the index the pattern is judged by:
    ``"thread"`` (GPU warp lanes spread over ``thread_vars[-1]``) or
    ``"innermost"`` (a serial CPU walker: locality relative to the
    innermost enclosing loop index — used by the host cost model).

    ``local_patterns`` assigns patterns to thread-private local arrays
    (array-expansion orientation: row-wise expansion is strided,
    column-wise coalesced; absent arrays are register-allocated, free).
    ``pattern_overrides`` forces a pattern for named global arrays — the
    hook the compilers use to record transformation effects (e.g.
    OpenMPC's loop collapsing turning indirect CSR traffic coalesced).
    """
    bindings = dict(bindings or {})
    local_patterns = dict(local_patterns or {})
    pattern_overrides = dict(pattern_overrides or {})
    summary = AccessSummary()
    local_arrays: set[str] = set()
    tset = set(thread_vars)
    loop_stack: list[str] = []
    #: symbolic value ranges of bound scalars and enclosing loop
    #: iterators — the trip-count estimator's environment.
    range_env: dict[str, SymRange] = bindings_env(bindings)
    #: sequential loop indices whose bounds depend on the thread index
    #: (CSR row loops, frontier scans): addresses indexed by them are
    #: data-dependent across the warp — effectively indirect accesses.
    irregular_vars: set[str] = set()

    def classify(node: ArrayRef, is_store: bool) -> Optional[RefClass]:
        if node.name in local_arrays:
            pattern = local_patterns.get(node.name)
            if pattern is None:
                return None  # register-resident: no memory traffic
            stride = SYMBOLIC_LARGE_STRIDE if pattern is AccessPattern.STRIDED else 1
            return RefClass(node.name, pattern, stride=stride,
                            is_store=is_store)
        override = pattern_overrides.get(node.name)
        if override is not None:
            stride = SYMBOLIC_LARGE_STRIDE if override is AccessPattern.STRIDED else (
                1 if override is AccessPattern.COALESCED else 0)
            return RefClass(node.name, override, stride=stride,
                            is_store=is_store)
        index_vars: set[str] = set()
        for index in node.indices:
            index_vars |= index.free_vars()
        if index_vars & irregular_vars:
            return RefClass(node.name, AccessPattern.INDIRECT, stride=0,
                            is_store=is_store)
        if classify_against == "innermost":
            # pick the innermost enclosing loop index the ref depends on
            against: list[str] = []
            for var in reversed(loop_stack):
                if var in index_vars:
                    against = [var]
                    break
            if not against:
                return RefClass(node.name, AccessPattern.UNIFORM, stride=0,
                                is_store=is_store,
                                read_only_uniform=not is_store)
        else:
            against = list(thread_vars)
        return classify_ref(node, against,
                            dim_extents=array_extents.get(node.name),
                            is_store=is_store,
                            indirect_carriers=indirect_carriers,
                            monotone_carriers=monotone_carriers)

    def record(expr: Expr, weight: float, store_target: Optional[ArrayRef]) -> None:
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                cls = classify(
                    node,
                    is_store=(store_target is not None and node is store_target),
                )
                if cls is not None:
                    summary.refs.append((cls, weight))

    def scan(stmt: Stmt, weight: float) -> None:
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                scan(s, weight)
        elif isinstance(stmt, LocalDecl):
            if stmt.shape:
                local_arrays.add(stmt.name)
            if stmt.init is not None:
                record(stmt.init, weight, None)
        elif isinstance(stmt, Assign):
            record(stmt.value, weight, None)
            if isinstance(stmt.target, ArrayRef):
                # store (plus a load when augmented)
                cls = classify(stmt.target, is_store=True)
                if cls is not None:
                    summary.refs.append((cls, weight))
                    if stmt.op is not None:
                        load_cls = RefClass(cls.array, cls.pattern, cls.stride,
                                            is_store=False)
                        summary.refs.append((load_cls, weight))
                # index expressions read whatever arrays they traverse
                for index in stmt.target.indices:
                    record(index, weight, None)
        elif isinstance(stmt, For):
            loop_stack.append(stmt.var)
            try:
                _scan_for(stmt, weight)
            finally:
                loop_stack.pop()
        elif isinstance(stmt, While):
            record(stmt.cond, weight * DEFAULT_SEQ_TRIPS, None)
            scan(stmt.body, weight * DEFAULT_SEQ_TRIPS)
        elif isinstance(stmt, If):
            record(stmt.cond, weight, None)
            scan(stmt.then_body, weight * 0.5)
            if stmt.else_body is not None:
                scan(stmt.else_body, weight * 0.5)
        elif isinstance(stmt, Critical):
            scan(stmt.body, weight)
        else:
            for expr in stmt.exprs():
                record(expr, weight, None)

    def _scan_for(stmt: For, weight: float) -> None:
        saved = range_env.get(stmt.var)
        range_env[stmt.var] = loop_range(stmt, range_env)
        try:
            if stmt.var in thread_vars:
                scan(stmt.body, weight)
                return
            lo = _const_value(stmt.lower, bindings)
            hi = _const_value(stmt.upper, bindings)
            step = _const_value(stmt.step, bindings) or 1.0
            if lo is not None and hi is not None and step:
                trips = max(0.0, math.ceil((hi - lo) / step))
            else:
                # value-range estimate (triangular/clamped bounds) before
                # falling back to the legacy flat guess
                est = estimate_trips(stmt.lower, stmt.upper, stmt.step,
                                     range_env)
                trips = est if est is not None else DEFAULT_SEQ_TRIPS
            # Bounds that depend on the thread index (directly or through
            # an array lookup like row_ptr[i]) make this an irregular
            # loop: its index produces data-dependent addresses across
            # the warp.
            bound_vars = (stmt.lower.free_vars() | stmt.upper.free_vars())
            was_irregular = stmt.var in irregular_vars
            if bound_vars & (tset | irregular_vars):
                irregular_vars.add(stmt.var)
            record(stmt.lower, weight, None)
            record(stmt.upper, weight, None)
            scan(stmt.body, weight * trips)
            if not was_irregular:
                irregular_vars.discard(stmt.var)
        finally:
            if saved is None:
                range_env.pop(stmt.var, None)
            else:
                range_env[stmt.var] = saved

    scan(body, 1.0)
    return summary

"""Interval / value-range abstract interpretation over the loop-nest IR.

The domain is an interval whose endpoints are *symbolic affine forms*
(:class:`~repro.ir.analysis.affine.AffineForm`), so ranges stay exact
across parametric bounds: the iterator of ``for i in [1, n-1)`` has the
range ``[1, n-2]``, and comparisons such as ``n-2 <= n-1`` discharge by
looking at the constant term of the difference.  Three consumers:

* the translation validator (:mod:`repro.tv`) uses :func:`guard_implied`
  to discharge kernel guards against the iteration domain;
* the ``BNDS-*`` lint family proves out-of-bounds subscripts and empty
  (negative-trip) loops;
* :func:`estimate_trips` replaces the simulator's ad-hoc
  ``DEFAULT_SEQ_TRIPS`` guess for sequential loops whose bounds resolve
  to a finite *range* even when they do not resolve to a point
  (triangular nests, clamped bounds).

An endpoint of ``None`` means unbounded on that side.  All comparisons
are three-valued: ``True`` / ``False`` only when provable, else ``None``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Union

from repro.ir.analysis.affine import AffineForm
from repro.ir.expr import (ArrayRef, BinOp, Call, Cast, Const, Expr,
                           Ternary, UnOp, Var)
from repro.ir.stmt import For

# ---------------------------------------------------------------------------
# Affine-form arithmetic (endpoints)
# ---------------------------------------------------------------------------

def af_const(value: float) -> AffineForm:
    return AffineForm({}, float(value))


def af_var(name: str) -> AffineForm:
    return AffineForm({name: 1.0}, 0.0)


def af_add(a: AffineForm, b: AffineForm) -> AffineForm:
    coeffs = dict(a.coeffs)
    for name, cv in b.coeffs.items():
        coeffs[name] = coeffs.get(name, 0.0) + cv
    return AffineForm({n: c for n, c in coeffs.items() if c != 0},
                      a.const + b.const)


def af_neg(a: AffineForm) -> AffineForm:
    return AffineForm({n: -c for n, c in a.coeffs.items()}, -a.const)


def af_sub(a: AffineForm, b: AffineForm) -> AffineForm:
    return af_add(a, af_neg(b))


def af_scale(a: AffineForm, k: float) -> AffineForm:
    if k == 0:
        return af_const(0.0)
    return AffineForm({n: k * c for n, c in a.coeffs.items()}, k * a.const)


def af_is_const(a: AffineForm) -> bool:
    return not a.coeffs


def af_le(a: Optional[AffineForm], b: Optional[AffineForm],
          assume_min: Optional[Mapping[str, float]] = None,
          default_min: float = -math.inf) -> Optional[bool]:
    """Is ``a <= b`` provable, assuming each symbol ``p >= min(p)``?

    With no assumptions (the default) the comparison is decidable only
    when the symbolic parts cancel.  Passing ``default_min`` (e.g. 1.0
    for "size parameters are at least one") widens what is provable.
    Returns ``None`` when undecidable.
    """
    if a is None or b is None:
        return None
    d = af_sub(b, a)  # prove d >= 0 (True) or d < 0 (False)
    lows = assume_min or {}

    def low(name: str) -> float:
        return lows.get(name, default_min)

    if all(c > 0 for c in d.coeffs.values()) or not d.coeffs:
        dmin = d.const + sum(c * low(n) for n, c in d.coeffs.items())
        if not math.isinf(dmin) and dmin >= 0:
            return True
    if all(c < 0 for c in d.coeffs.values()) and d.coeffs:
        dmax = d.const + sum(c * low(n) for n, c in d.coeffs.items())
        if not math.isinf(dmax) and dmax < 0:
            return False
    if not d.coeffs:
        return d.const >= 0
    return None


# ---------------------------------------------------------------------------
# The symbolic interval
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SymRange:
    """``[lo, hi]`` with affine endpoints; ``None`` = unbounded."""

    lo: Optional[AffineForm]
    hi: Optional[AffineForm]

    @staticmethod
    def top() -> "SymRange":
        return SymRange(None, None)

    @staticmethod
    def point(form: AffineForm) -> "SymRange":
        return SymRange(form, form)

    @staticmethod
    def of_const(value: float) -> "SymRange":
        return SymRange.point(af_const(value))

    def is_point(self) -> bool:
        return (self.lo is not None and self.hi is not None
                and self.lo == self.hi)

    def const_bounds(self) -> tuple[float, float]:
        """Numeric ``(lo, hi)`` with ±inf for unbounded/symbolic ends."""
        lo = (self.lo.const if self.lo is not None and af_is_const(self.lo)
              else -math.inf)
        hi = (self.hi.const if self.hi is not None and af_is_const(self.hi)
              else math.inf)
        return lo, hi

    def join(self, other: "SymRange") -> "SymRange":
        lo = self.lo if (self.lo is not None and other.lo is not None
                         and af_le(self.lo, other.lo) is True) else (
            other.lo if (self.lo is not None and other.lo is not None
                         and af_le(other.lo, self.lo) is True) else None)
        hi = self.hi if (self.hi is not None and other.hi is not None
                         and af_le(other.hi, self.hi) is True) else (
            other.hi if (self.hi is not None and other.hi is not None
                         and af_le(self.hi, other.hi) is True) else None)
        return SymRange(lo, hi)


def _add(a: SymRange, b: SymRange) -> SymRange:
    lo = af_add(a.lo, b.lo) if a.lo is not None and b.lo is not None else None
    hi = af_add(a.hi, b.hi) if a.hi is not None and b.hi is not None else None
    return SymRange(lo, hi)


def _neg(a: SymRange) -> SymRange:
    return SymRange(af_neg(a.hi) if a.hi is not None else None,
                    af_neg(a.lo) if a.lo is not None else None)


def _scale(a: SymRange, k: float) -> SymRange:
    if k == 0:
        return SymRange.of_const(0.0)
    scaled = SymRange(af_scale(a.lo, k) if a.lo is not None else None,
                      af_scale(a.hi, k) if a.hi is not None else None)
    return scaled if k > 0 else SymRange(scaled.hi, scaled.lo)


def eval_range(expr: Expr, env: Mapping[str, SymRange]) -> SymRange:
    """Abstractly evaluate ``expr`` under variable ranges.

    Variables absent from ``env`` are *symbolic parameters*: their range
    is the exact point ``[v, v]``.  Array loads, data-dependent selects
    and most intrinsics evaluate to top.
    """
    if isinstance(expr, Const):
        return SymRange.of_const(float(expr.value))
    if isinstance(expr, Var):
        rng = env.get(expr.name)
        return rng if rng is not None else SymRange.point(af_var(expr.name))
    if isinstance(expr, Cast):
        return eval_range(expr.operand, env)
    if isinstance(expr, UnOp):
        if expr.op == "-":
            return _neg(eval_range(expr.operand, env))
        if expr.op == "!":
            return SymRange(af_const(0.0), af_const(1.0))
        return SymRange.top()
    if isinstance(expr, Ternary):
        return eval_range(expr.if_true, env).join(
            eval_range(expr.if_false, env))
    if isinstance(expr, Call):
        if expr.func == "fabs":
            inner = eval_range(expr.args[0], env)
            lo_nonneg = (inner.lo is not None
                         and af_le(af_const(0.0), inner.lo) is True)
            if lo_nonneg:
                return inner
            return SymRange(af_const(0.0), None)
        if expr.func in ("floor", "ceil", "round"):
            inner = eval_range(expr.args[0], env)
            # widen by one to absorb the rounding either way
            lo = af_add(inner.lo, af_const(-1.0)) if inner.lo is not None else None
            hi = af_add(inner.hi, af_const(1.0)) if inner.hi is not None else None
            return SymRange(lo, hi)
        return SymRange.top()
    if isinstance(expr, BinOp):
        op = expr.op
        if op in ("+", "-"):
            left, right = eval_range(expr.left, env), eval_range(expr.right, env)
            return _add(left, right if op == "+" else _neg(right))
        if op == "*":
            left, right = eval_range(expr.left, env), eval_range(expr.right, env)
            if left.is_point() and af_is_const(left.lo):
                return _scale(right, left.lo.const)
            if right.is_point() and af_is_const(right.lo):
                return _scale(left, right.lo.const)
            return SymRange.top()
        if op in ("/", "//"):
            left, right = eval_range(expr.left, env), eval_range(expr.right, env)
            if right.is_point() and af_is_const(right.lo) and right.lo.const > 0:
                k = right.lo.const
                scaled = _scale(left, 1.0 / k)
                if op == "//":
                    # floor division: widen the low end by (k-1)/k
                    lo = (af_add(scaled.lo, af_const(-(k - 1) / k))
                          if scaled.lo is not None else None)
                    return SymRange(lo, scaled.hi)
                return scaled
            return SymRange.top()
        if op == "%":
            right = eval_range(expr.right, env)
            if right.is_point() and af_is_const(right.lo) and right.lo.const > 0:
                return SymRange(af_const(0.0), af_const(right.lo.const - 1.0))
            return SymRange.top()
        if op in ("min", "max"):
            left, right = eval_range(expr.left, env), eval_range(expr.right, env)
            if op == "min":
                # any upper bound of either side bounds the min above;
                # a lower bound must hold for both sides.
                if left.hi is not None and right.hi is not None:
                    cmp = af_le(left.hi, right.hi)
                    hi = left.hi if cmp is True else (
                        right.hi if cmp is False else left.hi)
                else:
                    hi = left.hi if left.hi is not None else right.hi
                if left.lo is not None and right.lo is not None:
                    cmp = af_le(left.lo, right.lo)
                    lo = left.lo if cmp is True else (
                        right.lo if cmp is False else None)
                else:
                    lo = None
                return SymRange(lo, hi)
            if left.lo is not None and right.lo is not None:
                cmp = af_le(left.lo, right.lo)
                lo = right.lo if cmp is True else (
                    left.lo if cmp is False else left.lo)
            else:
                lo = left.lo if left.lo is not None else right.lo
            if left.hi is not None and right.hi is not None:
                cmp = af_le(left.hi, right.hi)
                hi = right.hi if cmp is True else (
                    left.hi if cmp is False else None)
            else:
                hi = None
            return SymRange(lo, hi)
        if op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
            return SymRange(af_const(0.0), af_const(1.0))
        return SymRange.top()
    # ArrayRef and anything else: data-dependent.
    return SymRange.top()


# ---------------------------------------------------------------------------
# Loop ranges and trip counts
# ---------------------------------------------------------------------------

def loop_range(loop: For, env: Mapping[str, SymRange]) -> SymRange:
    """Range of a loop's iterator: ``[lower, upper-1]`` (positive step)."""
    lower = eval_range(loop.lower, env)
    upper = eval_range(loop.upper, env)
    hi = af_add(upper.hi, af_const(-1.0)) if upper.hi is not None else None
    return SymRange(lower.lo, hi)


def bindings_env(bindings: Mapping[str, float]) -> dict[str, SymRange]:
    """An evaluation environment pinning scalars to point ranges."""
    return {name: SymRange.of_const(float(value))
            for name, value in bindings.items()}


def trip_range(lower: Expr, upper: Expr, step: Expr,
               env: Mapping[str, SymRange]) -> Optional[tuple[float, float]]:
    """Numeric ``(min_trips, max_trips)`` when both ends are finite."""
    step_rng = eval_range(step, env)
    if not (step_rng.is_point() and af_is_const(step_rng.lo)):
        return None
    step_val = step_rng.lo.const
    if step_val <= 0:
        return None
    span = _add(eval_range(upper, env), _neg(eval_range(lower, env)))
    lo, hi = span.const_bounds()
    if math.isinf(lo) or math.isinf(hi):
        return None
    return (max(0.0, math.ceil(lo / step_val)),
            max(0.0, math.ceil(hi / step_val)))


def estimate_trips(lower: Expr, upper: Expr, step: Expr,
                   env: Mapping[str, SymRange]) -> Optional[float]:
    """Best-effort trip count from the value-range analysis.

    Exact when the trip range is a single value; the range midpoint
    otherwise (a triangular loop ``for j in [i, n)`` under ``i in
    [0, n)`` averages to n/2 trips, which is the true mean).  ``None``
    when the range analysis cannot bound the span — callers fall back
    to their legacy guess.
    """
    rng = trip_range(lower, upper, step, env)
    if rng is None:
        return None
    lo, hi = rng
    return lo if lo == hi else (lo + hi) / 2.0


# ---------------------------------------------------------------------------
# Guards: three-valued comparison and narrowing
# ---------------------------------------------------------------------------

_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
_CMP_OPS = frozenset(_NEGATED)


def compare(op: str, left: Expr, right: Expr,
            env: Mapping[str, SymRange],
            assume_min: Optional[Mapping[str, float]] = None,
            default_min: float = -math.inf) -> Optional[bool]:
    """Decide ``left op right`` under the ranges, or ``None``."""
    a = eval_range(left, env)
    b = eval_range(right, env)

    def le(x: Optional[AffineForm], y: Optional[AffineForm]) -> Optional[bool]:
        return af_le(x, y, assume_min, default_min)

    def lt(x: Optional[AffineForm], y: Optional[AffineForm]) -> Optional[bool]:
        # strict: x <= y - 1 suffices for the integer-valued bound
        # expressions this analysis sees; fall back to !(y <= x).
        if x is None or y is None:
            return None
        if le(x, af_add(y, af_const(-1.0))) is True:
            return True
        if le(y, x) is True:
            return False
        return None

    if op == "<":
        out = lt(a.hi, b.lo)
        if out is not None:
            return out
        if le(b.hi, a.lo) is True:
            return False
        return None
    if op == "<=":
        if le(a.hi, b.lo) is True:
            return True
        if lt(b.hi, a.lo) is True:
            return False
        return None
    if op == ">":
        return compare("<", right, left, env, assume_min, default_min)
    if op == ">=":
        return compare("<=", right, left, env, assume_min, default_min)
    if op == "==":
        if (a.is_point() and b.is_point() and a.lo == b.lo):
            return True
        if compare("<", left, right, env, assume_min, default_min) is True:
            return False
        if compare(">", left, right, env, assume_min, default_min) is True:
            return False
        return None
    if op == "!=":
        eq = compare("==", left, right, env, assume_min, default_min)
        return None if eq is None else not eq
    return None


def guard_implied(cond: Expr, env: Mapping[str, SymRange],
                  polarity: bool = True,
                  assume_min: Optional[Mapping[str, float]] = None,
                  default_min: float = -math.inf) -> bool:
    """True when ``cond`` (or its negation, ``polarity=False``) is
    provably satisfied by every point of ``env`` — the guard-discharge
    query the translation validator asks about kernel guards."""
    if isinstance(cond, UnOp) and cond.op == "!":
        return guard_implied(cond.operand, env, not polarity,
                             assume_min, default_min)
    if isinstance(cond, BinOp):
        if cond.op == "&&":
            if polarity:
                return (guard_implied(cond.left, env, True, assume_min, default_min)
                        and guard_implied(cond.right, env, True, assume_min, default_min))
            return (guard_implied(cond.left, env, False, assume_min, default_min)
                    or guard_implied(cond.right, env, False, assume_min, default_min))
        if cond.op == "||":
            if polarity:
                return (guard_implied(cond.left, env, True, assume_min, default_min)
                        or guard_implied(cond.right, env, True, assume_min, default_min))
            return (guard_implied(cond.left, env, False, assume_min, default_min)
                    and guard_implied(cond.right, env, False, assume_min, default_min))
        if cond.op in _CMP_OPS:
            op = cond.op if polarity else _NEGATED[cond.op]
            return compare(op, cond.left, cond.right, env,
                           assume_min, default_min) is True
    return False


def narrow(cond: Expr, env: Mapping[str, SymRange],
           polarity: bool = True) -> dict[str, SymRange]:
    """Refine ``env`` with the knowledge that ``cond`` holds (or fails).

    Handles comparisons with a bare variable on either side, plus the
    boolean connectives: under ``polarity`` the conjuncts of ``&&`` both
    narrow; a disjunction narrows as the join of its branches.
    """
    out = dict(env)

    def clamp_hi(name: str, bound: Optional[AffineForm]) -> None:
        if bound is None:
            return
        cur = out.get(name, SymRange.point(af_var(name)))
        if cur.hi is None or af_le(bound, cur.hi) is True:
            out[name] = SymRange(cur.lo, bound)

    def clamp_lo(name: str, bound: Optional[AffineForm]) -> None:
        if bound is None:
            return
        cur = out.get(name, SymRange.point(af_var(name)))
        if cur.lo is None or af_le(cur.lo, bound) is True:
            out[name] = SymRange(bound, cur.hi)

    if isinstance(cond, UnOp) and cond.op == "!":
        return narrow(cond.operand, env, not polarity)
    if isinstance(cond, BinOp) and cond.op in ("&&", "||"):
        conj = (cond.op == "&&") == polarity
        if conj and cond.op == "&&":
            return narrow(cond.right, narrow(cond.left, env, polarity), polarity)
        if conj and cond.op == "||":
            # !(a || b): both negations hold
            return narrow(cond.right, narrow(cond.left, env, polarity), polarity)
        # disjunctive information: join the two narrowings
        a = narrow(cond.left, env, polarity)
        b = narrow(cond.right, env, polarity)
        joined = dict(env)
        for name in set(a) | set(b):
            ra = a.get(name, env.get(name, SymRange.point(af_var(name))))
            rb = b.get(name, env.get(name, SymRange.point(af_var(name))))
            joined[name] = ra.join(rb)
        return joined
    if not (isinstance(cond, BinOp) and cond.op in _CMP_OPS):
        return out
    op = cond.op if polarity else _NEGATED[cond.op]
    left, right = cond.left, cond.right
    # normalize so a bare Var faces an evaluable side
    if isinstance(right, Var) and not isinstance(left, Var):
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
              "==": "==", "!=": "!="}[op]
    if not isinstance(left, Var):
        return out
    rng = eval_range(right, env)
    name = left.name
    if op == "<":
        clamp_hi(name, af_add(rng.hi, af_const(-1.0)) if rng.hi is not None else None)
    elif op == "<=":
        clamp_hi(name, rng.hi)
    elif op == ">":
        clamp_lo(name, af_add(rng.lo, af_const(1.0)) if rng.lo is not None else None)
    elif op == ">=":
        clamp_lo(name, rng.lo)
    elif op == "==":
        clamp_lo(name, rng.lo)
        clamp_hi(name, rng.hi)
    elif op == "!=":
        # excluding a point value tightens the range only at its edges
        if rng.lo is not None and rng.lo == rng.hi:
            cur = out.get(name, SymRange.point(af_var(name)))
            if cur.lo is not None and af_le(cur.lo, rng.lo) is True \
                    and af_le(rng.lo, cur.lo) is True:
                out[name] = SymRange(af_add(cur.lo, af_const(1.0)), cur.hi)
            elif cur.hi is not None and af_le(cur.hi, rng.hi) is True \
                    and af_le(rng.hi, cur.hi) is True:
                out[name] = SymRange(cur.lo, af_add(cur.hi, af_const(-1.0)))
    return out


#: ``Union`` re-export kept for annotation compatibility in consumers.
RangeEnv = Mapping[str, SymRange]

"""Generic lattice-based iterative dataflow framework.

The classic worklist fixpoint solver, packaged for the small
region-sequence CFGs the transfer analyses run on (tens of nodes, not
thousands).  Three pieces:

* :class:`Cfg` — nodes in program order plus directed edges.  Nodes are
  any hashable values; the first node is the entry, nodes without
  successors are the exits.  Back edges (host driver loops re-entering
  offload regions — the Jacobi/CG sweep pattern) are ordinary edges.
* :class:`Analysis` — the problem statement: direction, a confluence
  operator ``join`` with its ``identity``, the ``boundary`` value
  holding at the entry (forward) or the exits (backward), and a
  monotone ``transfer`` function per node.
* :func:`solve` — the worklist iteration.  For a monotone transfer over
  a finite-height lattice it terminates at the unique least fixpoint,
  independent of visit order (``tests/test_property_based.py`` pins
  both properties on random CFGs).

Both *may* problems (join = union, identity = the empty set) and *must*
problems (join = intersection / pointwise meet, identity = the lattice
top) fit: the identity is whatever value ``join`` ignores, which is
exactly the optimistic initial assumption for unvisited predecessors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping, Optional, Sequence

from repro.errors import ReproError

Node = Hashable
State = Any

FORWARD = "forward"
BACKWARD = "backward"


class DataflowError(ReproError):
    """A malformed CFG/analysis, or a diverging (non-monotone) transfer."""


@dataclass(frozen=True)
class Cfg:
    """A control-flow graph over hashable nodes.

    ``nodes`` is the canonical (program) order; ``edges`` are directed
    ``(src, dst)`` pairs.  Successor/predecessor maps are derived once
    at construction.
    """

    nodes: tuple
    edges: tuple = ()
    succs: Mapping[Node, tuple] = field(init=False, repr=False)
    preds: Mapping[Node, tuple] = field(init=False, repr=False)

    def __init__(self, nodes: Sequence[Node],
                 edges: Iterable[tuple[Node, Node]] = ()) -> None:
        nodes = tuple(nodes)
        edges = tuple(edges)
        if not nodes:
            raise DataflowError("a CFG needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise DataflowError("CFG nodes must be unique")
        known = set(nodes)
        succs: dict[Node, list] = {n: [] for n in nodes}
        preds: dict[Node, list] = {n: [] for n in nodes}
        for src, dst in edges:
            if src not in known or dst not in known:
                raise DataflowError(f"edge ({src!r}, {dst!r}) references "
                                    "an unknown node")
            succs[src].append(dst)
            preds[dst].append(src)
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "succs",
                           {n: tuple(s) for n, s in succs.items()})
        object.__setattr__(self, "preds",
                           {n: tuple(p) for n, p in preds.items()})

    @property
    def entry(self) -> Node:
        return self.nodes[0]

    @property
    def exits(self) -> tuple:
        """Nodes without successors (the last node if every node has one)."""
        outs = tuple(n for n in self.nodes if not self.succs[n])
        return outs or (self.nodes[-1],)


@dataclass(frozen=True)
class Analysis:
    """One dataflow problem over a :class:`Cfg`.

    ``join`` must be commutative/associative/idempotent with ``identity``
    as its neutral element, and ``transfer`` monotone w.r.t. the order
    ``join`` induces — then :func:`solve` reaches the unique fixpoint.
    """

    direction: str  # FORWARD | BACKWARD
    join: Callable[[State, State], State]
    identity: State
    boundary: State
    transfer: Callable[[Node, State], State]
    #: state equality (fixpoint detection); ``==`` covers dict/frozenset
    equals: Callable[[State, State], bool] = lambda a, b: a == b

    def __post_init__(self) -> None:
        if self.direction not in (FORWARD, BACKWARD):
            raise DataflowError(f"bad direction {self.direction!r}; "
                                f"expected {FORWARD!r} or {BACKWARD!r}")


@dataclass
class Solution:
    """The fixpoint: per-node states on entry/exit of each node.

    ``in_states``/``out_states`` are in *flow* order — for a backward
    problem ``in_states[n]`` is the state *after* the node (where flow
    enters it) and ``out_states[n]`` the state before it.
    """

    in_states: dict
    out_states: dict
    iterations: int

    def before(self, node: Node, direction: str = FORWARD) -> State:
        """The state holding at the node's *program-order* start."""
        return (self.in_states if direction == FORWARD
                else self.out_states)[node]

    def after(self, node: Node, direction: str = FORWARD) -> State:
        """The state holding at the node's *program-order* end."""
        return (self.out_states if direction == FORWARD
                else self.in_states)[node]


def solve(cfg: Cfg, analysis: Analysis,
          order: Optional[Sequence[Node]] = None,
          max_steps: Optional[int] = None) -> Solution:
    """Run the worklist iteration to its fixpoint.

    ``order`` seeds the worklist (default: CFG node order); for a
    monotone transfer the result is the same for every permutation.
    ``max_steps`` bounds the iteration (default ``64 * |nodes|^2 + 64``)
    so a non-monotone transfer raises instead of spinning.
    """
    forward = analysis.direction == FORWARD
    flow_preds = cfg.preds if forward else cfg.succs
    flow_succs = cfg.succs if forward else cfg.preds
    starts = {cfg.entry} if forward else set(cfg.exits)

    seed = list(order) if order is not None else list(cfg.nodes)
    if set(seed) != set(cfg.nodes):
        raise DataflowError("worklist order must be a permutation of "
                            "the CFG's nodes")

    in_states: dict = {n: analysis.identity for n in cfg.nodes}
    out_states: dict = {}
    worklist: deque = deque(seed)
    queued = set(seed)
    limit = max_steps if max_steps is not None \
        else 64 * len(cfg.nodes) ** 2 + 64
    steps = 0
    while worklist:
        steps += 1
        if steps > limit:
            raise DataflowError(
                f"no fixpoint after {limit} steps — non-monotone transfer "
                "or unbounded lattice?")
        node = worklist.popleft()
        queued.discard(node)
        acc = analysis.boundary if node in starts else analysis.identity
        for pred in flow_preds[node]:
            if pred in out_states:
                acc = analysis.join(acc, out_states[pred])
        in_states[node] = acc
        new_out = analysis.transfer(node, acc)
        old_out = out_states.get(node, _MISSING)
        if old_out is _MISSING or not analysis.equals(new_out, old_out):
            out_states[node] = new_out
            for succ in flow_succs[node]:
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    # unreachable nodes never transferred: give them identity out-states
    for node in cfg.nodes:
        out_states.setdefault(node, analysis.identity)
    return Solution(in_states=in_states, out_states=out_states,
                    iterations=steps)


_MISSING = object()


# ---------------------------------------------------------------------------
# Common lattice helpers
# ---------------------------------------------------------------------------

def union_join(a: frozenset, b: frozenset) -> frozenset:
    """Confluence of *may* problems (reaching, liveness)."""
    return a | b


def intersect_join(a: frozenset, b: frozenset) -> frozenset:
    """Confluence of set-valued *must* problems (identity = universe)."""
    return a & b


def may_analysis(direction: str,
                 transfer: Callable[[Node, frozenset], frozenset],
                 boundary: frozenset = frozenset()) -> Analysis:
    """A set-union problem: empty identity, union confluence."""
    return Analysis(direction=direction, join=union_join,
                    identity=frozenset(), boundary=frozenset(boundary),
                    transfer=transfer)


def pointwise_meet(a: Mapping, b: Mapping) -> dict:
    """Per-key meet of two flag-tuple maps (missing key = top).

    The coherence state machine's confluence: a flag is certain only if
    it holds on *every* incoming path, so tuples meet componentwise by
    logical AND.  Keys absent from one side keep the other side's value
    (absence = the optimistic identity).
    """
    out = dict(a)
    for key, flags in b.items():
        mine = out.get(key)
        if mine is None:
            out[key] = flags
        else:
            out[key] = tuple(x and y for x, y in zip(mine, flags))
    return out

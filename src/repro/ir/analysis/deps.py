"""Lightweight dependence testing for transformation legality.

The model compilers use this to decide whether loop interchange, collapse,
and parallelization-as-written are safe.  The pairwise subscript test
lives in :mod:`repro.ir.analysis.miv`: per-dimension ZIV/SIV/GCD
constraints (with delinearization of ``e // K`` / ``e % K`` pairs and
symbolic strides) intersected across dimensions.  Anything the test
cannot resolve remains conservatively dependent with ``carried_by=None``
— faithful to the array-name analyses the paper's compilers fall back on
(Section III-D2) — but provably-independent stencils (JACOBI, HOTSPOT)
and coupled wavefront subscripts (NW) no longer report spurious
loop-carried dependences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.ir.analysis.miv import test_ref_pair, write_may_self_collide
from repro.ir.expr import ArrayRef
from repro.ir.stmt import Assign, For, LocalDecl, Stmt
from repro.ir.visitors import iter_stmts


@dataclass(frozen=True)
class Dependence:
    """A (possibly spurious) loop-carried dependence on ``array``."""

    array: str
    kind: str  # "flow", "anti", "output"
    carried_by: Optional[str]  # loop variable, or None when unproven
    distance: Optional[int] = None  # constant distance when known


def _local_array_names(body: Stmt) -> set[str]:
    """Arrays declared per-iteration inside the body (thread-private)."""
    return {stmt.name for stmt in iter_stmts(body)
            if isinstance(stmt, LocalDecl) and stmt.shape}


def _gather_refs(body: Stmt,
                 skip: Iterable[str] = (),
                 ) -> tuple[list[ArrayRef], list[ArrayRef]]:
    """(reads, writes) array references in a loop body.

    References to arrays in ``skip`` (privatized or iteration-local) are
    excluded: each iteration owns its copy, so they carry nothing.
    """
    skip_names = set(skip) | _local_array_names(body)
    reads: list[ArrayRef] = []
    writes: list[ArrayRef] = []

    def keep(refs: Iterable[ArrayRef]) -> list[ArrayRef]:
        return [r for r in refs if r.name not in skip_names]

    for stmt in iter_stmts(body):
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, ArrayRef):
                writes.extend(keep([stmt.target]))
                if stmt.op is not None:
                    # a structurally equal but distinct node, so the
                    # read/write pair is not skipped as self-comparison
                    reads.extend(keep([ArrayRef(stmt.target.name,
                                                stmt.target.indices)]))
                for index in stmt.target.indices:
                    reads.extend(keep(n for n in index.walk()
                                      if isinstance(n, ArrayRef)))
            reads.extend(keep(n for n in stmt.value.walk()
                              if isinstance(n, ArrayRef)))
        else:
            for expr in stmt.exprs():
                reads.extend(keep(n for n in expr.walk()
                                  if isinstance(n, ArrayRef)))
    return reads, writes


def loop_carried_dependences(loop: For,
                             private: Iterable[str] = (),
                             coupled: bool = True) -> list[Dependence]:
    """Dependences carried by ``loop`` that forbid parallel execution.

    ``private`` names arrays privatized by an enclosing directive clause;
    they (and iteration-local :class:`LocalDecl` arrays) are excluded.
    A write ``A[i] = f(...)`` against a read ``A[i + d]`` with ``d != 0``
    is a carried dependence; with ``coupled=True`` multi-dimensional
    subscripts that demand contradictory per-dimension distances are
    proven independent (the wavefront case).  ``coupled=False`` keeps
    the dimensions-in-isolation behaviour the paper's compilers exhibit.
    """
    reads, writes = _gather_refs(loop.body, skip=private)
    deps: list[Dependence] = []
    var = loop.var

    def test_pair(w: ArrayRef, other: ArrayRef, kind: str) -> None:
        if w.name != other.name:
            return
        if w.ndim != other.ndim:
            deps.append(Dependence(w.name, kind, None))
            return
        verdict = test_ref_pair(w, other, var, coupled=coupled)
        if verdict.independent:
            return
        if verdict.carried:
            deps.append(Dependence(w.name, kind, var, verdict.distance))
        else:
            deps.append(Dependence(w.name, kind, None))

    for w in writes:
        # a write through a data-dependent subscript may collide with
        # itself across iterations (scatter with unknown injectivity)
        if write_may_self_collide(w, var):
            deps.append(Dependence(w.name, "output", None))
        for r in reads:
            if r is w:
                continue
            test_pair(w, r, "flow")
        for w2 in writes:
            if w2 is w:
                continue
            # identical subscripts from the same statement are fine
            test_pair(w, w2, "output")
    # Deduplicate
    seen: set[tuple] = set()
    unique: list[Dependence] = []
    for d in deps:
        key = (d.array, d.kind, d.carried_by, d.distance)
        if key not in seen:
            seen.add(key)
            unique.append(d)
    return unique


def parallelization_safe(loop: For, coupled: bool = True) -> bool:
    """Is executing the loop's iterations concurrently provably safe?

    The benchmarks' parallel loops are already annotated by the original
    OpenMP programmer; this check is what R-Stream's *automatic*
    parallelizer must establish on its own (with ``coupled=False``: the
    paper's R-Stream could not untangle NW's coupled anti-diagonal
    subscripts, cf. Table II).
    """
    return not any(d.carried_by == loop.var or d.carried_by is None
                   for d in loop_carried_dependences(loop, loop.private,
                                                     coupled=coupled))

"""Lightweight dependence testing for transformation legality.

The model compilers use this to decide whether loop interchange, collapse,
and parallelization-as-written are safe.  The test is deliberately simple
(the paper's compilers also rely on conservative array-name analyses,
cf. Section III-D2):

* two references to the same array *may* conflict when at least one is a
  write;
* for affine single-index pairs we run a ZIV/SIV test (constant-distance
  or GCD) to disprove the conflict;
* anything non-affine is conservatively dependent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ir.analysis.affine import AffineForm, affine_form
from repro.ir.expr import ArrayRef, Expr
from repro.ir.stmt import Assign, For, Stmt
from repro.ir.visitors import iter_stmts


@dataclass(frozen=True)
class Dependence:
    """A (possibly spurious) loop-carried dependence on ``array``."""

    array: str
    kind: str  # "flow", "anti", "output"
    carried_by: Optional[str]  # loop variable, or None when unproven
    distance: Optional[int] = None  # constant distance when known


def _gather_refs(body: Stmt) -> tuple[list[ArrayRef], list[ArrayRef]]:
    """(reads, writes) array references in a loop body."""
    reads: list[ArrayRef] = []
    writes: list[ArrayRef] = []
    for stmt in iter_stmts(body):
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, ArrayRef):
                writes.append(stmt.target)
                if stmt.op is not None:
                    # a structurally equal but distinct node, so the
                    # read/write pair is not skipped as self-comparison
                    reads.append(ArrayRef(stmt.target.name,
                                          stmt.target.indices))
                for index in stmt.target.indices:
                    reads.extend(n for n in index.walk()
                                 if isinstance(n, ArrayRef))
            reads.extend(n for n in stmt.value.walk()
                         if isinstance(n, ArrayRef))
        else:
            for expr in stmt.exprs():
                reads.extend(n for n in expr.walk()
                             if isinstance(n, ArrayRef))
    return reads, writes


def _siv_independent(a: AffineForm, b: AffineForm, var: str) -> Optional[bool]:
    """Single-index-variable test: can ``a(i) == b(i')`` for i != i'?

    Returns True when provably independent across iterations, False when
    provably dependent, None when unknown.
    """
    ca, cb = a.coefficient(var), b.coefficient(var)
    other_a = {n: v for n, v in a.coeffs.items() if n != var}
    other_b = {n: v for n, v in b.coeffs.items() if n != var}
    if other_a != other_b:
        return None  # symbolic parts differ: unknown
    if ca == cb:
        if ca == 0:
            # ZIV: the subscript pair is iteration-invariant — different
            # constants prove independence; identical addresses touched
            # every iteration are a (carried) conflict.
            if a.const != b.const:
                return True
            return False
        # strong SIV: distance = (b.const - a.const) / ca
        diff = b.const - a.const
        if diff % ca != 0:
            return True
        return (diff // ca) == 0 or None  # distance 0 => loop independent
    if ca == 0 or cb == 0:
        return None
    # weak SIV via GCD test
    g = math.gcd(int(abs(ca)), int(abs(cb)))
    if g and (b.const - a.const) % g != 0:
        return True
    return None


def loop_carried_dependences(loop: For) -> list[Dependence]:
    """Dependences carried by ``loop`` that forbid parallel execution.

    Augmented assignments to targets *not* indexed by the loop variable
    are reductions, not counted here (the reduction analysis handles
    them).  A write ``A[i] = f(...)`` against a read ``A[i + d]`` with
    ``d != 0`` is a carried dependence.
    """
    reads, writes = _gather_refs(loop.body)
    deps: list[Dependence] = []
    var = loop.var

    def test_pair(w: ArrayRef, other: ArrayRef, kind: str) -> None:
        if w.name != other.name:
            return
        if w.ndim != other.ndim:
            deps.append(Dependence(w.name, kind, None))
            return
        all_indep = False
        any_unknown = False
        carried = False
        distance: Optional[int] = None
        for iw, io in zip(w.indices, other.indices):
            fw = affine_form(iw, [var])
            fo = affine_form(io, [var])
            if fw is None or fo is None:
                any_unknown = True
                continue
            verdict = _siv_independent(fw, fo, var)
            if verdict is True:
                all_indep = True
                break
            cw, co = fw.coefficient(var), fo.coefficient(var)
            if verdict is False and cw == 0 and co == 0:
                # same fixed address hit every iteration (reduction slot
                # or scalar-in-array): carried conflict
                carried = True
            if cw == co and cw != 0:
                d = int((fo.const - fw.const) / cw) if cw else 0
                if d != 0:
                    carried = True
                    distance = d
            elif cw != co:
                any_unknown = True
        if all_indep:
            return
        if carried:
            deps.append(Dependence(w.name, kind, var, distance))
        elif any_unknown:
            deps.append(Dependence(w.name, kind, None))

    for w in writes:
        # a write through a data-dependent subscript may collide with
        # itself across iterations (scatter with unknown injectivity)
        if any(affine_form(ix, [var]) is None for ix in w.indices):
            deps.append(Dependence(w.name, "output", None))
        for r in reads:
            if r is w:
                continue
            test_pair(w, r, "flow")
        for w2 in writes:
            if w2 is w:
                continue
            # identical subscripts from the same statement are fine
            test_pair(w, w2, "output")
    # Deduplicate
    seen: set[tuple] = set()
    unique: list[Dependence] = []
    for d in deps:
        key = (d.array, d.kind, d.carried_by, d.distance)
        if key not in seen:
            seen.add(key)
            unique.append(d)
    return unique


def parallelization_safe(loop: For) -> bool:
    """Is executing the loop's iterations concurrently provably safe?

    The benchmarks' parallel loops are already annotated by the original
    OpenMP programmer; this check is what R-Stream's *automatic*
    parallelizer must establish on its own.
    """
    return not any(d.carried_by == loop.var or d.carried_by is None
                   for d in loop_carried_dependences(loop))

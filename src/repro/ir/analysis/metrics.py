"""Operation-count metrics: flops and intrinsic costs per iteration.

Feeds the compute side of the kernel timing model.  Counting is static:
per-thread flop counts are the expression-tree op counts weighted by the
same sequential-trip/divergence factors the access summary uses, so the
two sides of the ``max(compute, memory)`` roofline are consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.ir.analysis.access import DEFAULT_SEQ_TRIPS, _const_value
from repro.ir.analysis.ranges import (SymRange, bindings_env, estimate_trips,
                                      loop_range)
from repro.ir.expr import (INTRINSIC_FLOP_COST, ArrayRef, BinOp, Call, Cast,
                           Const, Expr, Ternary, UnOp, Var)
from repro.ir.stmt import (Assign, Block, Critical, For, If, LocalDecl,
                           Stmt, While)

#: Relative cost of each scalar binary operation (double precision).
BINOP_FLOP_COST: Mapping[str, float] = {
    "+": 1, "-": 1, "*": 1, "/": 4, "//": 4, "%": 4,
    "min": 1, "max": 1,
    "<": 0.5, "<=": 0.5, ">": 0.5, ">=": 0.5, "==": 0.5, "!=": 0.5,
    "&&": 0.5, "||": 0.5, "&": 0.5, "|": 0.5, "^": 0.5, "<<": 0.5, ">>": 0.5,
}


def expr_flops(expr: Expr) -> float:
    """Weighted floating-point-operation count of one expression tree.

    Address arithmetic inside array subscripts is charged at a quarter
    rate (integer units overlap with memory latency on Fermi).
    """
    return _expr_flops_clean(expr)


def _expr_flops_clean(expr: Expr, in_subscript: bool = False) -> float:
    scale = 0.25 if in_subscript else 1.0
    if isinstance(expr, (Const, Var)):
        return 0.0
    if isinstance(expr, BinOp):
        own = BINOP_FLOP_COST.get(expr.op, 1.0) * scale
        return (own + _expr_flops_clean(expr.left, in_subscript)
                + _expr_flops_clean(expr.right, in_subscript))
    if isinstance(expr, UnOp):
        return 0.5 * scale + _expr_flops_clean(expr.operand, in_subscript)
    if isinstance(expr, Call):
        own = INTRINSIC_FLOP_COST.get(expr.func, 8) * scale
        return own + sum(_expr_flops_clean(a, in_subscript) for a in expr.args)
    if isinstance(expr, Ternary):
        return (1.0 * scale
                + _expr_flops_clean(expr.cond, in_subscript)
                + _expr_flops_clean(expr.if_true, in_subscript)
                + _expr_flops_clean(expr.if_false, in_subscript))
    if isinstance(expr, Cast):
        return _expr_flops_clean(expr.operand, in_subscript)
    if isinstance(expr, ArrayRef):
        return sum(_expr_flops_clean(i, True) for i in expr.indices)
    return 0.0


@dataclass
class WorkEstimate:
    """Per-thread work of a kernel body."""

    flops: float = 0.0
    #: worst-case fraction of warp-divergent work, in [0, 1].
    divergence: float = 0.0
    #: number of distinct conditionals encountered.
    branches: int = 0


def body_work(body: Stmt, thread_vars: Sequence[str],
              bindings: Optional[Mapping[str, float]] = None) -> WorkEstimate:
    """Estimate per-thread flops and divergence for a kernel body."""
    bindings = dict(bindings or {})
    est = WorkEstimate()
    range_env: dict[str, SymRange] = bindings_env(bindings)

    def scan(stmt: Stmt, weight: float, divergent: bool) -> None:
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                scan(s, weight, divergent)
        elif isinstance(stmt, Assign):
            flops = _expr_flops_clean(stmt.value)
            if isinstance(stmt.target, ArrayRef):
                flops += sum(_expr_flops_clean(i, True)
                             for i in stmt.target.indices)
            if stmt.op is not None:
                flops += BINOP_FLOP_COST.get(stmt.op, 1.0)
            est.flops += flops * weight
            if divergent:
                est.divergence = min(1.0, est.divergence + 0.05)
        elif isinstance(stmt, LocalDecl):
            if stmt.init is not None:
                est.flops += _expr_flops_clean(stmt.init) * weight
        elif isinstance(stmt, For):
            est.flops += (_expr_flops_clean(stmt.lower)
                          + _expr_flops_clean(stmt.upper)) * weight
            saved = range_env.get(stmt.var)
            range_env[stmt.var] = loop_range(stmt, range_env)
            try:
                if stmt.var in thread_vars:
                    scan(stmt.body, weight, divergent)
                else:
                    lo = _const_value(stmt.lower, bindings)
                    hi = _const_value(stmt.upper, bindings)
                    step = _const_value(stmt.step, bindings) or 1.0
                    if lo is not None and hi is not None and step:
                        trips = max(0.0, math.ceil((hi - lo) / step))
                    else:
                        ranged = estimate_trips(stmt.lower, stmt.upper,
                                                stmt.step, range_env)
                        trips = (ranged if ranged is not None
                                 else DEFAULT_SEQ_TRIPS)
                        # data-dependent trip counts diverge across the warp
                        est.divergence = min(1.0, est.divergence + 0.25)
                    est.flops += trips * weight  # loop bookkeeping
                    scan(stmt.body, weight * trips, divergent)
            finally:
                if saved is None:
                    range_env.pop(stmt.var, None)
                else:
                    range_env[stmt.var] = saved
        elif isinstance(stmt, While):
            est.divergence = min(1.0, est.divergence + 0.3)
            est.flops += _expr_flops_clean(stmt.cond) * weight * DEFAULT_SEQ_TRIPS
            scan(stmt.body, weight * DEFAULT_SEQ_TRIPS, True)
        elif isinstance(stmt, If):
            est.branches += 1
            est.flops += _expr_flops_clean(stmt.cond) * weight
            cond_thread_dep = bool(stmt.cond.free_vars() & set(thread_vars)
                                   or stmt.cond.array_names())
            if cond_thread_dep:
                est.divergence = min(1.0, est.divergence + 0.15)
            scan(stmt.then_body, weight * 0.5, divergent or cond_thread_dep)
            if stmt.else_body is not None:
                scan(stmt.else_body, weight * 0.5, divergent or cond_thread_dep)
        elif isinstance(stmt, Critical):
            # serialized updates: charge heavily
            est.divergence = min(1.0, est.divergence + 0.5)
            scan(stmt.body, weight, True)
        else:
            for expr in stmt.exprs():
                est.flops += _expr_flops_clean(expr) * weight

    scan(body, 1.0, False)
    return est

"""Loop and expression normalization.

Small canonicalizations the compilers run before analysis:

* constant folding of expressions,
* flattening of nested blocks,
* normalization of ``for`` loops to unit step where the step divides the
  extent (iteration-space remapping).
"""

from __future__ import annotations

from repro.ir.expr import BinOp, Cast, Const, Expr, Ternary, UnOp, Var
from repro.ir.stmt import Block, For, Stmt
from repro.ir.visitors import StmtTransformer, substitute_stmt


def fold_constants(expr: Expr) -> Expr:
    """Evaluate constant subexpressions."""

    class _Folder(StmtTransformer):
        def visit_BinOp(self, e: BinOp) -> Expr:
            left = self.visit(e.left)
            right = self.visit(e.right)
            if isinstance(left, Const) and isinstance(right, Const):
                a, b = left.value, right.value
                try:
                    if e.op == "+":
                        return Const(a + b)
                    if e.op == "-":
                        return Const(a - b)
                    if e.op == "*":
                        return Const(a * b)
                    if e.op == "/" and b != 0:
                        return Const(a / b)
                    if e.op == "//" and b != 0:
                        return Const(a // b)
                    if e.op == "%" and b != 0:
                        return Const(a % b)
                    if e.op == "min":
                        return Const(min(a, b))
                    if e.op == "max":
                        return Const(max(a, b))
                except (OverflowError, ValueError):
                    pass
            # algebraic identities
            if e.op == "+":
                if isinstance(left, Const) and left.value == 0:
                    return right
                if isinstance(right, Const) and right.value == 0:
                    return left
            if e.op == "-" and isinstance(right, Const) and right.value == 0:
                return left
            if e.op == "*":
                for a_side, b_side in ((left, right), (right, left)):
                    if isinstance(a_side, Const):
                        if a_side.value == 0:
                            return Const(0)
                        if a_side.value == 1:
                            return b_side
            if left is e.left and right is e.right:
                return e
            return BinOp(e.op, left, right)

        def visit_UnOp(self, e: UnOp) -> Expr:
            operand = self.visit(e.operand)
            if e.op == "-" and isinstance(operand, Const):
                return Const(-operand.value)
            return e if operand is e.operand else UnOp(e.op, operand)

    return _Folder().visit(expr)


class _BlockFlattener(StmtTransformer):
    def visit_Block(self, block: Block) -> Stmt:
        flat: list[Stmt] = []
        for stmt in block.stmts:
            rewritten = self.visit_stmt(stmt)
            if isinstance(rewritten, Block):
                flat.extend(rewritten.stmts)
            else:
                flat.append(rewritten)
        return Block(flat)

    def generic_visit_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, Block):
            return self.visit_Block(stmt)
        return super().generic_visit_stmt(stmt)


def flatten_blocks(stmt: Stmt) -> Stmt:
    """Splice nested Blocks into their parents."""
    result = _BlockFlattener().visit_stmt(stmt)
    if not isinstance(result, Block) and isinstance(stmt, Block):
        return Block([result])
    return result


class _ExprFolder(StmtTransformer):
    def visit(self, expr: Expr) -> Expr:
        return fold_constants(super().visit(expr))


def normalize(stmt: Stmt) -> Stmt:
    """Fold constants everywhere and flatten blocks."""
    return flatten_blocks(_ExprFolder().visit_stmt(stmt))


def normalize_loop_step(loop: For) -> For:
    """Rewrite a constant-step loop to unit step.

    ``for i in [L, U) step s`` becomes ``for t in [0, ceil((U-L)/s))``
    with ``i = L + t*s`` substituted in the body.
    """
    if isinstance(loop.step, Const) and loop.step.value == 1:
        return loop
    if not isinstance(loop.step, Const):
        return loop
    s = int(loop.step.value)
    t = Var(f"{loop.var}_n")
    extent = BinOp("-", loop.upper, loop.lower)
    trips = BinOp("//", BinOp("+", extent, Const(s - 1)), Const(s))
    value = BinOp("+", loop.lower, BinOp("*", t, Const(s)))
    body = substitute_stmt(loop.body, {Var(loop.var): value})
    return For(t.name, Const(0), fold_constants(trips), body,
               parallel=loop.parallel, private=loop.private,
               reductions=loop.reductions, schedule=loop.schedule)

"""Loop transformations used by the directive compilers."""

from repro.ir.transforms.collapse import collapse_nest, collapsible
from repro.ir.transforms.inline import inline_calls
from repro.ir.transforms.interchange import (interchange, interchange_legal,
                                             parallel_loop_swap)
from repro.ir.transforms.normalize import (flatten_blocks, fold_constants,
                                           normalize, normalize_loop_step)
from repro.ir.transforms.tiling import (TilingDecision, strip_mine,
                                        strip_mine_cyclic, tile_2d)
from repro.ir.transforms.transpose import (ExpansionResult,
                                           expand_private_array)

__all__ = [
    "collapse_nest", "collapsible",
    "inline_calls",
    "interchange", "interchange_legal", "parallel_loop_swap",
    "flatten_blocks", "fold_constants", "normalize", "normalize_loop_step",
    "TilingDecision", "strip_mine", "strip_mine_cyclic", "tile_2d",
    "ExpansionResult", "expand_private_array",
]

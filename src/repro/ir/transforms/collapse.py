"""Loop collapsing.

Two related transformations from the paper:

* **OpenMP-style collapse** (HOTSPOT story): fuse a perfect 2-deep nest
  into a single parallel loop over the product space, recovering index
  values by division/modulo.  Increases the thread count so the GPU can
  hide memory latency.
* **Loop collapsing for irregular reductions** (CG/SPMUL story, [21]):
  OpenMPC flattens a parallel-outer/sequential-inner CSR traversal into a
  single flat loop over nonzeros, removing control-flow divergence and
  enabling coalesced access to the value/column arrays.  We model the
  effect with the same product-space rewrite plus an access-pattern
  improvement recorded by the compiler.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.expr import BinOp, Const, Var
from repro.ir.stmt import Block, For, LocalDecl, Stmt
from repro.ir.visitors import substitute_stmt


def collapse_nest(outer: For, fresh: str = "__flat") -> For:
    """Collapse a perfectly nested 2-deep loop pair into one loop.

    Both loops must have constant (or symbolic but loop-invariant) bounds
    with lower bound expressible; the result iterates
    ``fresh in [0, No * Ni)`` and reconstructs
    ``outer.var = lo_o + fresh // Ni``, ``inner.var = lo_i + fresh % Ni``.
    """
    inner_loops = [s for s in outer.body.stmts if isinstance(s, For)]
    others = [s for s in outer.body.stmts
              if not isinstance(s, (For, LocalDecl))]
    if len(inner_loops) != 1 or others:
        raise TransformError("collapse requires a perfect 2-deep nest")
    inner = inner_loops[0]
    if not (isinstance(outer.step, Const) and outer.step.value == 1
            and isinstance(inner.step, Const) and inner.step.value == 1):
        raise TransformError("collapse requires unit-step loops")

    extent_o = BinOp("-", outer.upper, outer.lower)
    extent_i = BinOp("-", inner.upper, inner.lower)
    total = BinOp("*", extent_o, extent_i)

    flat = Var(fresh)
    outer_val = BinOp("+", outer.lower, BinOp("//", flat, extent_i))
    inner_val = BinOp("+", inner.lower, BinOp("%", flat, extent_i))

    decls = [s for s in outer.body.stmts if isinstance(s, LocalDecl)]
    body = substitute_stmt(inner.body, {Var(outer.var): outer_val,
                                        Var(inner.var): inner_val})
    merged_private = tuple(dict.fromkeys(
        list(outer.private) + list(inner.private)))
    merged_reductions = tuple(list(outer.reductions) + list(inner.reductions))
    return For(fresh, Const(0), total, Block(decls + list(body.stmts)),
               parallel=outer.parallel or inner.parallel,
               private=merged_private, reductions=merged_reductions,
               schedule=outer.schedule)


def collapsible(outer: For) -> bool:
    """Can :func:`collapse_nest` apply?"""
    try:
        collapse_nest(outer)
        return True
    except TransformError:
        return False


def promote_inner_parallel(outer: For) -> For:
    """Honor a ``collapse(2)`` clause by promoting the inner loop to the
    grid.

    Structural collapsing (``flat // extent`` / ``flat % extent``
    subscripts) is how a CPU OpenMP runtime implements the clause; on a
    GPU the compiler instead maps the two iteration dimensions onto a
    2-D grid, which multiplies the thread count exactly the way the
    HOTSPOT porting story requires.  The rewrite marks the unique inner
    sequential loop parallel; the grid mapper then picks up both levels.
    """
    inner = [s for s in outer.body.stmts if isinstance(s, For)]
    others = [s for s in outer.body.stmts
              if not isinstance(s, (For, LocalDecl))]
    if len(inner) != 1 or others:
        raise TransformError("collapse requires a perfect 2-deep nest")
    loop = inner[0]
    if loop.parallel:
        return outer
    promoted = For(loop.var, loop.lower, loop.upper, loop.body,
                   step=loop.step, parallel=True, private=loop.private,
                   reductions=loop.reductions, schedule=loop.schedule)
    decls = [s for s in outer.body.stmts if isinstance(s, LocalDecl)]
    return For(outer.var, outer.lower, outer.upper,
               Block(decls + [promoted]), step=outer.step, parallel=True,
               private=tuple(p for p in outer.private if p != loop.var),
               reductions=outer.reductions, schedule=outer.schedule,
               collapse=1)

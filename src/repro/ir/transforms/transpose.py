"""Matrix-transpose array expansion (column-wise privatization).

The EP story (Section V-A): every model privatizes a per-thread array by
*array expansion* — giving each thread a row (or column) of a 2-D buffer.

* **Row-wise expansion** ``q_exp[tid][k]`` maximizes *intra*-thread
  locality (good on CPUs) but makes consecutive threads touch addresses
  a full row apart — uncoalesced on the GPU.
* **Column-wise expansion** ``q_exp[k][tid]`` (OpenMPC's *matrix
  transpose* technique [21]) puts consecutive threads on consecutive
  addresses — coalesced.

:func:`expand_private_array` rewrites a parallel loop body, replacing a
``LocalDecl`` private array with references into an expanded global
buffer in either orientation.  The caller adds the buffer to the kernel's
array set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.errors import TransformError
from repro.ir.expr import ArrayRef, Expr, Var
from repro.ir.stmt import Block, For, LocalDecl, Stmt
from repro.ir.visitors import StmtTransformer

Orientation = Literal["row", "column"]


@dataclass(frozen=True)
class ExpansionResult:
    """Outcome of one private-array expansion."""

    loop: For
    buffer_name: str
    #: (n_threads_symbol, private_extent) — logical buffer shape in row
    #: orientation; column orientation is the transpose.
    private_extent: int
    orientation: Orientation

    @property
    def coalesced(self) -> bool:
        """Column-wise expansion yields coalesced per-thread access."""
        return self.orientation == "column"


class _Expander(StmtTransformer):
    def __init__(self, array: str, buffer: str, tid: str,
                 orientation: Orientation) -> None:
        self.array = array
        self.buffer = buffer
        self.tid = Var(tid)
        self.orientation = orientation

    def visit_ArrayRef(self, expr: ArrayRef) -> Expr:
        indices = tuple(self.visit(i) for i in expr.indices)
        if expr.name != self.array:
            if all(a is b for a, b in zip(indices, expr.indices)):
                return expr
            return ArrayRef(expr.name, indices)
        if len(indices) != 1:
            raise TransformError(
                f"expansion of {self.array!r} supports 1-D private arrays")
        k = indices[0]
        if self.orientation == "row":
            return ArrayRef(self.buffer, (self.tid, k))
        return ArrayRef(self.buffer, (k, self.tid))


def expand_private_array(loop: For, array: str,
                         orientation: Orientation = "column",
                         buffer_name: str | None = None) -> ExpansionResult:
    """Expand private array ``array`` of a parallel loop into a 2-D buffer.

    The loop variable is used as the thread id subscript.  The private
    declaration is removed from the body; the returned loop references
    ``buffer_name`` (default ``f"{array}_exp"``).
    """
    if not loop.parallel:
        raise TransformError("array expansion applies to parallel loops")
    decl = None
    for stmt in loop.body.walk():
        if isinstance(stmt, LocalDecl) and stmt.name == array:
            decl = stmt
            break
    if decl is None or not decl.shape:
        raise TransformError(
            f"{array!r} is not a private array declared in the loop body")
    if len(decl.shape) != 1:
        raise TransformError("only 1-D private arrays are supported")

    buffer = buffer_name or f"{array}_exp"
    expander = _Expander(array, buffer, loop.var, orientation)
    new_body_stmts: list[Stmt] = []
    for stmt in loop.body.stmts:
        if isinstance(stmt, LocalDecl) and stmt.name == array:
            continue
        new_body_stmts.append(expander.visit_stmt(stmt))
    new_private = tuple(p for p in loop.private if p != array)
    new_loop = For(loop.var, loop.lower, loop.upper, Block(new_body_stmts),
                   step=loop.step, parallel=True, private=new_private,
                   reductions=loop.reductions, schedule=loop.schedule)
    return ExpansionResult(loop=new_loop, buffer_name=buffer,
                           private_extent=decl.shape[0],
                           orientation=orientation)

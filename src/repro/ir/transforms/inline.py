"""Function inlining.

The PGI/OpenACC/HMPP compilers require user functions called inside
offloaded loops to be inlined ("unless called functions are simple enough
to be automatically inlined by the compiler", Section III-A2).  OpenMPC
instead supports calls interprocedurally.  :func:`inline_calls` performs
the substitution for inlinable callees; non-inlinable callees raise.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import TransformError
from repro.ir.expr import ArrayRef, Expr, Var
from repro.ir.program import Function, Program
from repro.ir.stmt import Block, CallStmt, Return, Stmt
from repro.ir.visitors import (StmtTransformer, rename_array, rename_var,
                               substitute_stmt)


def _bind_body(func: Function, args: tuple[Expr, ...],
               suffix: str) -> list[Stmt]:
    """Substitute actuals for formals in a copy of the function body."""
    if len(args) != len(func.params):
        raise TransformError(
            f"call to {func.name!r}: {len(args)} args for "
            f"{len(func.params)} parameters")
    body: Stmt = func.body
    # Uniquify the callee's local scalar names to avoid capture.
    from repro.ir.analysis.liveness import scalar_writes
    formals = {p.name for p in func.params}
    for name in sorted(scalar_writes(body)):
        if name not in formals:
            body = rename_var(body, name, f"{name}{suffix}")
    mapping: dict[Expr, Expr] = {}
    for param, arg in zip(func.params, args):
        if param.is_array:
            if not isinstance(arg, Var):
                raise TransformError(
                    f"array argument to {func.name!r} must be an array name")
            body = rename_array(body, param.name, arg.name)
        else:
            mapping[Var(param.name)] = arg
    if mapping:
        body = substitute_stmt(body, mapping)
    stmts = list(body.stmts) if isinstance(body, Block) else [body]
    for s in stmts:
        for nested in s.walk():
            if isinstance(nested, Return) and nested.value is not None:
                raise TransformError(
                    f"cannot inline {func.name!r}: value-returning return")
    return [s for s in stmts
            if not (isinstance(s, Return) and s.value is None)]


class _Inliner(StmtTransformer):
    def __init__(self, functions: Mapping[str, Function],
                 require_inlinable: bool = True) -> None:
        self.functions = functions
        self.require_inlinable = require_inlinable
        self.counter = 0
        self.inlined: list[str] = []

    def visit_Block(self, block: Block) -> Stmt:
        new_stmts: list[Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, CallStmt):
                func = self.functions.get(stmt.func)
                if func is None:
                    raise TransformError(f"unknown function {stmt.func!r}")
                if self.require_inlinable and not func.inlinable:
                    raise TransformError(
                        f"function {stmt.func!r} is not automatically inlinable")
                self.counter += 1
                self.inlined.append(stmt.func)
                bound = _bind_body(func, stmt.args, f"__inl{self.counter}")
                # recursively inline nested calls
                for b in bound:
                    new_stmts.append(self.visit_stmt(b))
            else:
                new_stmts.append(self.visit_stmt(stmt))
        return Block(new_stmts)

    def generic_visit_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, Block):
            return self.visit_Block(stmt)
        return super().generic_visit_stmt(stmt)


def inline_calls(body: Stmt, program: Optional[Program] = None,
                 require_inlinable: bool = True,
                 functions: Optional[Mapping[str, Function]] = None
                 ) -> tuple[Stmt, list[str]]:
    """Inline all user calls under ``body``.

    Callees resolve from ``program.functions``, or from a bare
    ``functions`` mapping when no whole program is at hand (the reuse
    analyzer sees kernels, not programs).  Returns the rewritten body
    and the list of inlined callee names.  Raises
    :class:`TransformError` when a callee is unknown, returns a value,
    or (when ``require_inlinable``) is marked non-inlinable.
    """
    if functions is None:
        if program is None:
            raise TransformError("inline_calls needs program or functions")
        functions = program.functions
    inliner = _Inliner(functions, require_inlinable)
    root = body if isinstance(body, Block) else Block([body])
    rewritten = inliner.visit_Block(root)
    return rewritten, inliner.inlined

"""Parallel loop-swap (loop interchange).

The optimization Lee/Min/Eigenmann call *parallel loop-swap* [21]: when an
outer parallel loop iterates over the slow (row) dimension while the inner
sequential/parallel loop walks the fast (column) dimension, swapping the
two makes the GPU-parallelized index the fastest-varying subscript and
turns strided global accesses into coalesced ones.  OpenMPC applies it
automatically; for PGI Accelerator/OpenACC/HMPP the paper applied it by
hand in the input code (JACOBI, SRAD, BACKPROP stories).
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.analysis.deps import loop_carried_dependences
from repro.ir.stmt import Block, For, LocalDecl, Stmt


def _only_loop_child(loop: For) -> For:
    """The unique directly-nested loop, skipping local declarations."""
    inner_loops = [s for s in loop.body.stmts if isinstance(s, For)]
    others = [s for s in loop.body.stmts
              if not isinstance(s, (For, LocalDecl))]
    if len(inner_loops) != 1 or others:
        raise TransformError(
            "interchange requires a perfectly nested loop pair "
            f"(found {len(inner_loops)} inner loops, "
            f"{len(others)} other statements)")
    return inner_loops[0]


def interchange_legal(outer: For) -> bool:
    """Interchange is legal when no dependence has direction (<, >).

    Our conservative test: legal when neither loop carries a dependence
    with a *known nonzero distance* in a direction that the swap would
    reverse.  Fully independent (parallel) loop pairs always qualify.
    """
    inner = _only_loop_child(outer)
    for loop in (outer, inner):
        for dep in loop_carried_dependences(loop):
            if dep.carried_by == loop.var and dep.distance not in (None, 0):
                # (d_outer, d_inner) with mixed signs would be reversed;
                # without full direction vectors, refuse on any carried
                # distance.
                return False
            if dep.carried_by is None:
                return False
    return True


def interchange(outer: For, force: bool = False) -> For:
    """Swap a perfectly nested loop pair, preserving annotations.

    The inner loop takes the outer position (with the outer loop's
    ``parallel`` flag semantics preserved per loop, i.e. flags travel with
    their loop variable — swapping which index is outermost).
    """
    inner = _only_loop_child(outer)
    if not force and not interchange_legal(outer):
        raise TransformError(
            f"interchange of ({outer.var}, {inner.var}) is not provably legal")
    decls = [s for s in outer.body.stmts if isinstance(s, LocalDecl)]
    new_inner = For(outer.var, outer.lower, outer.upper,
                    Block(decls + list(inner.body.stmts)), step=outer.step,
                    parallel=outer.parallel, private=outer.private,
                    reductions=outer.reductions, schedule=outer.schedule)
    return For(inner.var, inner.lower, inner.upper, Block([new_inner]),
               step=inner.step, parallel=inner.parallel,
               private=inner.private, reductions=inner.reductions,
               schedule=inner.schedule)


def parallel_loop_swap(outer: For, force: bool = False) -> For:
    """Apply parallel loop-swap: exchange the loops *and* the annotation.

    Given ``parallel for i { for j { ...A[i][j]... } }`` — a nest whose
    GPU-parallelized index walks the slow dimension — produce
    ``parallel for j { for i { ... } }``: the new outer loop is parallel
    (it becomes the thread index, now the fastest-varying subscript), the
    old parallel loop runs sequentially inside each thread.  This is the
    OpenMPC transformation [21] that turns strided accesses coalesced;
    the caller decides profitability via the access analysis.
    """
    if not outer.parallel:
        raise TransformError("parallel loop-swap needs a parallel outer loop")
    inner = _only_loop_child(outer)
    swapped = interchange(outer, force=force)
    new_inner_loops = [s for s in swapped.body.stmts if isinstance(s, For)]
    assert len(new_inner_loops) == 1
    new_inner = new_inner_loops[0]
    decls = [s for s in swapped.body.stmts if isinstance(s, LocalDecl)]
    # move the parallel annotation: new outer parallel, new inner serial
    seq_inner = For(new_inner.var, new_inner.lower, new_inner.upper,
                    new_inner.body, step=new_inner.step, parallel=False)
    merged_private = tuple(dict.fromkeys(
        list(outer.private) + list(inner.private) + [new_inner.var]))
    return For(swapped.var, swapped.lower, swapped.upper,
               Block(decls + [seq_inner]), step=swapped.step, parallel=True,
               private=tuple(p for p in merged_private if p != swapped.var),
               reductions=outer.reductions + inner.reductions,
               schedule=outer.schedule)

"""Strip-mining and tiling.

* **Strip-mining** (EP story): split one parallel loop into an outer
  parallel loop over strips and an inner sequential loop within the
  strip.  The paper used it to bound the GPU-side footprint of expanded
  private arrays ("to prevent the memory overflow, programmers should
  manually strip-mine the parallel loop").
* **Tiling** (JACOBI/HOTSPOT/NW stories): 2-D tiling that the PGI
  compiler applies automatically to exploit shared memory.  Functionally
  a pure re-nesting; the performance effect (global-traffic reduction by
  the reuse factor) is recorded by the compilers through a
  :class:`TilingDecision` consumed by the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransformError
from repro.ir.expr import BinOp, Const, Var
from repro.ir.stmt import Block, For, LocalDecl
from repro.ir.visitors import substitute_stmt


@dataclass(frozen=True)
class TilingDecision:
    """Record of a tiling applied for shared-memory exploitation.

    ``reuse_factor`` is the average number of times each global element
    loaded into the tile is reused from shared memory (e.g. ~4 for a
    5-point stencil with 16x16 tiles, ~tile for matrix multiply).
    ``smem_bytes_per_block`` feeds the occupancy calculator.
    """

    tile_dims: tuple[int, ...]
    reuse_factor: float
    smem_bytes_per_block: int
    arrays: tuple[str, ...] = ()


def strip_mine(loop: For, strip: int, outer_name: str | None = None) -> For:
    """Split ``loop`` into strips of size ``strip``.

    Produces::

        parallel for s in [0, ceil((U-L)/strip)):
            for i in [L + s*strip, min(U, L + (s+1)*strip)):
                body

    The outer loop inherits the parallel annotation; the inner loop is
    sequential.
    """
    if strip <= 0:
        raise TransformError(f"strip size must be positive, got {strip}")
    s_name = outer_name or f"{loop.var}_strip"
    s_var = Var(s_name)
    extent = BinOp("-", loop.upper, loop.lower)
    n_strips = BinOp("//", BinOp("+", extent, Const(strip - 1)), Const(strip))
    inner_lo = BinOp("+", loop.lower, BinOp("*", s_var, Const(strip)))
    inner_hi = BinOp("min", loop.upper,
                     BinOp("+", inner_lo, Const(strip)))
    inner = For(loop.var, inner_lo, inner_hi, loop.body, step=loop.step,
                parallel=False)
    return For(s_name, Const(0), n_strips, Block([inner]),
               parallel=loop.parallel, private=loop.private + (loop.var,),
               reductions=loop.reductions, schedule=loop.schedule)


def strip_mine_cyclic(loop: For, strips: int,
                      outer_name: str | None = None) -> For:
    """Strip-mine with a cyclic (round-robin) distribution.

    Produces::

        parallel for s in [0, strips):
            for t in [0, ceil((U - L - s) / strips)):
                i = L + s + t*strips
                body

    Cyclic distribution keeps consecutive strips' iterations interleaved
    — the distribution GPU compilers emit for grid-stride loops, and the
    one that keeps per-strip trip counts balanced (they differ by at
    most one).
    """
    if strips <= 0:
        raise TransformError(f"strip count must be positive, got {strips}")
    s_name = outer_name or f"{loop.var}_strip"
    s_var = Var(s_name)
    t_name = f"{loop.var}_t"
    t_var = Var(t_name)
    extent = BinOp("-", loop.upper, loop.lower)
    trips = BinOp("//",
                  BinOp("+", BinOp("-", extent, s_var),
                        Const(strips - 1)),
                  Const(strips))
    value = BinOp("+", loop.lower,
                  BinOp("+", s_var, BinOp("*", t_var, Const(strips))))
    body = substitute_stmt(loop.body, {Var(loop.var): value})
    inner = For(t_name, Const(0), trips, body, parallel=False)
    return For(s_name, Const(0), Const(strips), Block([inner]),
               parallel=loop.parallel,
               private=loop.private + (t_name,),
               reductions=loop.reductions, schedule=loop.schedule)


def tile_2d(outer: For, tile_i: int, tile_j: int) -> For:
    """Classic rectangular 2-D tiling of a perfect nest.

    Produces a 4-deep nest ``(ii, jj, i, j)`` where the two tile loops are
    parallel (mapped to the block grid) and the two point loops are
    sequential within a block.  Legal whenever interchange of the pair is
    legal; we require the input loops to both be parallel, which the
    benchmarks' stencil nests satisfy.
    """
    inner_loops = [s for s in outer.body.stmts if isinstance(s, For)]
    decls = [s for s in outer.body.stmts if isinstance(s, LocalDecl)]
    if len(inner_loops) != 1:
        raise TransformError("tile_2d requires a perfect 2-deep nest")
    inner = inner_loops[0]
    if not (outer.parallel and inner.parallel):
        raise TransformError("tile_2d tiles parallel loop pairs only")

    stripped_outer = strip_mine(outer, tile_i, outer_name=f"{outer.var}_t")
    # stripped_outer: parallel ii -> sequential i -> Block([inner])
    seq_i = stripped_outer.body.stmts[0]
    assert isinstance(seq_i, For)
    inner_of_i = [s for s in seq_i.body.stmts if isinstance(s, For)][0]
    stripped_inner = strip_mine(inner_of_i, tile_j, outer_name=f"{inner.var}_t")
    # reorder to (ii, jj, i, j): put parallel jj directly under parallel ii
    seq_j = stripped_inner.body.stmts[0]
    assert isinstance(seq_j, For)
    new_seq_i = For(seq_i.var, seq_i.lower, seq_i.upper,
                    Block(decls + [seq_j]), parallel=False)
    new_jj = For(stripped_inner.var, stripped_inner.lower,
                 stripped_inner.upper, Block([new_seq_i]),
                 parallel=True, private=stripped_inner.private)
    return For(stripped_outer.var, stripped_outer.lower,
               stripped_outer.upper, Block([new_jj]), parallel=True,
               private=stripped_outer.private,
               reductions=stripped_outer.reductions)

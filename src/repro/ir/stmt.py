"""Statement nodes of the loop-nest IR.

Statements mirror the structured-C subset the paper's directive compilers
consume: assignments, counted ``for`` loops (optionally annotated as
OpenMP work-sharing loops), ``while`` loops, ``if``/``else``, critical
sections, barriers, calls to user functions, and returns.

Like expressions, statements are immutable; transformations produce new
trees.  Each statement can report the expressions it contains, which the
analyses use for flop counting and access classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from repro.errors import IRTypeError
from repro.ir.expr import ArrayRef, Expr, ExprLike, Var, as_expr

#: Reduction operators supported by the OpenMP-style ``reduction`` clause.
REDUCTION_OPS = frozenset({"+", "*", "min", "max"})


@dataclass(frozen=True)
class ReductionClause:
    """An OpenMP ``reduction(op: var)`` clause.

    ``var`` may name a scalar *or* an array — array reductions are the
    OpenMPC extension the paper highlights (Section III-D); the other
    models only accept scalar reduction variables.
    """

    op: str
    var: str
    is_array: bool = False

    def __post_init__(self) -> None:
        if self.op not in REDUCTION_OPS:
            raise IRTypeError(f"unsupported reduction operator {self.op!r}")
        if not self.var:
            raise IRTypeError("reduction clause needs a variable name")


class Stmt:
    """Abstract base class of all statement nodes."""

    __slots__ = ()

    def child_stmts(self) -> tuple["Stmt", ...]:
        """Directly nested statements."""
        return ()

    def exprs(self) -> tuple[Expr, ...]:
        """Expressions appearing directly in this statement (not nested)."""
        return ()

    def walk(self) -> Iterator["Stmt"]:
        """Pre-order traversal of the statement tree."""
        yield self
        for child in self.child_stmts():
            yield from child.walk()

    def walk_exprs(self) -> Iterator[Expr]:
        """All expressions in this statement and every nested statement."""
        for stmt in self.walk():
            for expr in stmt.exprs():
                yield from expr.walk()

    def line_count(self) -> int:
        """Number of 'source lines' this statement represents.

        Used by the code-size metric (Table II): each simple statement is
        one line; compound statements add their header line(s).
        """
        return 1 + sum(c.line_count() for c in self.child_stmts())


class Block(Stmt):
    """A sequence of statements (a C compound statement)."""

    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt]) -> None:
        for s in stmts:
            if not isinstance(s, Stmt):
                raise IRTypeError(f"Block entries must be Stmt, got {s!r}")
        self.stmts = tuple(stmts)

    def child_stmts(self) -> tuple[Stmt, ...]:
        return self.stmts

    def line_count(self) -> int:
        return sum(s.line_count() for s in self.stmts)

    def __repr__(self) -> str:
        return f"Block({len(self.stmts)} stmts)"


def as_block(body: Union[Stmt, Sequence[Stmt]]) -> Block:
    """Coerce a statement or sequence of statements into a Block."""
    if isinstance(body, Block):
        return body
    if isinstance(body, Stmt):
        return Block([body])
    return Block(list(body))


class Assign(Stmt):
    """``target = expr`` or an augmented ``target op= expr``.

    ``target`` is a :class:`Var` (scalar) or :class:`ArrayRef` (element
    store).  Augmented assignments with ``op`` in the reduction set are
    what the reduction detectors pattern-match.
    """

    __slots__ = ("target", "value", "op")

    def __init__(self, target: Union[Var, ArrayRef], value: ExprLike,
                 op: Optional[str] = None) -> None:
        if not isinstance(target, (Var, ArrayRef)):
            raise IRTypeError(f"Assign target must be Var or ArrayRef, got {target!r}")
        if op is not None and op not in REDUCTION_OPS:
            raise IRTypeError(f"augmented-assign op must be one of {sorted(REDUCTION_OPS)}")
        self.target = target
        self.value = as_expr(value)
        self.op = op

    def exprs(self) -> tuple[Expr, ...]:
        return (self.target, self.value)

    def __repr__(self) -> str:
        op = f"{self.op}=" if self.op else "="
        return f"{self.target!r} {op} {self.value!r}"


class LocalDecl(Stmt):
    """Declaration of a thread-local scalar or array.

    ``shape`` of ``()`` declares a scalar; otherwise a small local array
    (e.g. EP's per-thread histogram).  Local arrays are what the models'
    ``private`` handling (and the matrix-transpose expansion) act on.
    """

    __slots__ = ("name", "shape", "dtype", "init")

    def __init__(self, name: str, shape: Sequence[int] = (),
                 dtype: str = "double", init: Optional[ExprLike] = None) -> None:
        if not name:
            raise IRTypeError("LocalDecl needs a name")
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self.init = as_expr(init) if init is not None else None

    def exprs(self) -> tuple[Expr, ...]:
        return (self.init,) if self.init is not None else ()

    def __repr__(self) -> str:
        dims = "".join(f"[{s}]" for s in self.shape)
        return f"{self.dtype} {self.name}{dims}"


class For(Stmt):
    """A counted loop ``for (var = lower; var < upper; var += step)``.

    ``parallel=True`` marks an OpenMP work-sharing loop (``omp for``).
    ``private`` lists per-iteration private scalars/arrays, ``reductions``
    carries OpenMP reduction clauses.  The directive compilers map
    parallel loops onto the GPU grid.
    """

    __slots__ = ("var", "lower", "upper", "step", "body", "parallel",
                 "private", "reductions", "collapse", "schedule")

    def __init__(self, var: str, lower: ExprLike, upper: ExprLike,
                 body: Union[Stmt, Sequence[Stmt]], step: ExprLike = 1,
                 parallel: bool = False, private: Sequence[str] = (),
                 reductions: Sequence[ReductionClause] = (),
                 collapse: int = 1, schedule: str = "static") -> None:
        if not var:
            raise IRTypeError("For loop needs an index variable name")
        self.var = var
        self.lower = as_expr(lower)
        self.upper = as_expr(upper)
        self.step = as_expr(step)
        self.body = as_block(body)
        self.parallel = bool(parallel)
        self.private = tuple(private)
        self.reductions = tuple(reductions)
        self.collapse = int(collapse)
        self.schedule = schedule
        if self.collapse < 1:
            raise IRTypeError("collapse must be >= 1")

    def child_stmts(self) -> tuple[Stmt, ...]:
        return (self.body,)

    def exprs(self) -> tuple[Expr, ...]:
        return (self.lower, self.upper, self.step)

    def line_count(self) -> int:
        return 1 + self.body.line_count()

    def __repr__(self) -> str:
        tag = "parallel for" if self.parallel else "for"
        return f"{tag} {self.var} in [{self.lower!r}, {self.upper!r})"


class While(Stmt):
    """A ``while (cond)`` loop.  Always sequential on the device/host."""

    __slots__ = ("cond", "body")

    def __init__(self, cond: ExprLike, body: Union[Stmt, Sequence[Stmt]]) -> None:
        self.cond = as_expr(cond)
        self.body = as_block(body)

    def child_stmts(self) -> tuple[Stmt, ...]:
        return (self.body,)

    def exprs(self) -> tuple[Expr, ...]:
        return (self.cond,)

    def line_count(self) -> int:
        return 1 + self.body.line_count()

    def __repr__(self) -> str:
        return f"while {self.cond!r}"


class If(Stmt):
    """``if (cond) then_body [else else_body]``."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: ExprLike, then_body: Union[Stmt, Sequence[Stmt]],
                 else_body: Union[Stmt, Sequence[Stmt], None] = None) -> None:
        self.cond = as_expr(cond)
        self.then_body = as_block(then_body)
        self.else_body = as_block(else_body) if else_body is not None else None

    def child_stmts(self) -> tuple[Stmt, ...]:
        if self.else_body is not None:
            return (self.then_body, self.else_body)
        return (self.then_body,)

    def exprs(self) -> tuple[Expr, ...]:
        return (self.cond,)

    def line_count(self) -> int:
        n = 1 + self.then_body.line_count()
        if self.else_body is not None:
            n += 1 + self.else_body.line_count()
        return n

    def __repr__(self) -> str:
        return f"if {self.cond!r}"


class Critical(Stmt):
    """An OpenMP ``critical`` section.

    The paper: only OpenMPC accepts critical sections, and only when their
    body matches a (scalar or array) reduction pattern; the other models
    reject them outright (Section VI-A item 3).
    """

    __slots__ = ("body",)

    def __init__(self, body: Union[Stmt, Sequence[Stmt]]) -> None:
        self.body = as_block(body)

    def child_stmts(self) -> tuple[Stmt, ...]:
        return (self.body,)

    def line_count(self) -> int:
        return 1 + self.body.line_count()

    def __repr__(self) -> str:
        return "critical"


class Barrier(Stmt):
    """An OpenMP barrier / implicit synchronization point.

    OpenMPC splits parallel regions at every barrier (Section III-D);
    inside generated kernels it corresponds to ``__syncthreads`` only when
    the split would be block-local, which our models never exploit —
    matching the paper's observation that synchronization support is
    limited (Section VI-A item 4).
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "barrier"


class CallStmt(Stmt):
    """A call to a *user-defined* function: ``name(arg0, arg1, ...)``.

    Arguments are expressions (typically whole-array :class:`Var` names or
    scalars).  Whether calls are allowed inside offloaded regions is a key
    model differentiator (only OpenMPC supports them; others require the
    callee to be inlinable).
    """

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[ExprLike] = ()) -> None:
        if not func:
            raise IRTypeError("CallStmt needs a function name")
        self.func = func
        self.args = tuple(as_expr(a) for a in args)

    def exprs(self) -> tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(map(repr, self.args))})"


class Return(Stmt):
    """Return from a function (optionally with a scalar value)."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[ExprLike] = None) -> None:
        self.value = as_expr(value) if value is not None else None

    def exprs(self) -> tuple[Expr, ...]:
        return (self.value,) if self.value is not None else ()

    def __repr__(self) -> str:
        return f"return {self.value!r}" if self.value is not None else "return"


class PointerArith(Stmt):
    """A marker for pointer-arithmetic constructs.

    The benchmarks occasionally contain pointer manipulation (e.g. buffer
    swaps via pointers).  The PGI/OpenACC compilers reject pointer
    arithmetic inside offloaded loops (Section III-A2); we keep it as an
    opaque statement carrying the variables involved so the feature
    scanner can detect it.  Functionally it swaps two named arrays.
    """

    __slots__ = ("kind", "operands")

    def __init__(self, kind: str, operands: Sequence[str]) -> None:
        self.kind = kind
        self.operands = tuple(operands)

    def __repr__(self) -> str:
        return f"ptr-{self.kind}({', '.join(self.operands)})"

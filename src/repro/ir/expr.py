"""Expression nodes of the loop-nest IR.

The IR plays the role of the C input programs in the paper: the thirteen
benchmarks are written as loop nests over typed arrays, annotated with
OpenMP-style parallel regions.  Expressions are deliberately close to the
C expression subset the evaluated compilers accept: scalar constants and
variables, binary/unary arithmetic, comparisons, intrinsic math calls,
ternary selection, and array references with arbitrary integer index
expressions (affine or indirect).

All nodes are immutable value objects: equality and hashing are structural,
which the analyses and transformations rely on (e.g. common-subexpression
matching in the reduction detector).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence, Union

from repro.errors import IRTypeError

#: Operators accepted by :class:`BinOp`, mapped to rough C spellings.
BINARY_OPS = frozenset(
    {"+", "-", "*", "/", "//", "%", "min", "max",
     "<", "<=", ">", ">=", "==", "!=", "&&", "||", "&", "|", "^", "<<", ">>"}
)

#: Operators accepted by :class:`UnOp`.
UNARY_OPS = frozenset({"-", "!", "~"})

#: Math intrinsics the simulated GPU supports (CUDA device functions).
INTRINSICS = frozenset(
    {"sqrt", "exp", "log", "pow", "fabs", "floor", "ceil", "sin", "cos",
     "tan", "rsqrt", "fmin", "fmax", "round", "sign"}
)

#: Relative flop cost of each intrinsic, used by the metrics analysis.
INTRINSIC_FLOP_COST: Mapping[str, int] = {
    "sqrt": 4, "rsqrt": 2, "exp": 8, "log": 8, "pow": 16, "fabs": 1,
    "floor": 1, "ceil": 1, "sin": 8, "cos": 8, "tan": 12, "fmin": 1,
    "fmax": 1, "round": 1, "sign": 1,
}


class Expr:
    """Abstract base class of all expression nodes."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions, in source order."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def free_vars(self) -> frozenset[str]:
        """Names of all scalar variables referenced in this expression."""
        names: set[str] = set()
        for node in self.walk():
            if isinstance(node, Var):
                names.add(node.name)
        return frozenset(names)

    def array_names(self) -> frozenset[str]:
        """Names of all arrays referenced (including inside indices)."""
        names: set[str] = set()
        for node in self.walk():
            if isinstance(node, ArrayRef):
                names.add(node.name)
        return frozenset(names)

    # Operator sugar so benchmark code reads naturally -------------------
    def _binop(self, op: str, other: "ExprLike", swap: bool = False) -> "BinOp":
        left, right = as_expr(other if swap else self), as_expr(self if swap else other)
        return BinOp(op, left, right)

    def __add__(self, o: "ExprLike") -> "BinOp":
        return self._binop("+", o)

    def __radd__(self, o: "ExprLike") -> "BinOp":
        return self._binop("+", o, swap=True)

    def __sub__(self, o: "ExprLike") -> "BinOp":
        return self._binop("-", o)

    def __rsub__(self, o: "ExprLike") -> "BinOp":
        return self._binop("-", o, swap=True)

    def __mul__(self, o: "ExprLike") -> "BinOp":
        return self._binop("*", o)

    def __rmul__(self, o: "ExprLike") -> "BinOp":
        return self._binop("*", o, swap=True)

    def __truediv__(self, o: "ExprLike") -> "BinOp":
        return self._binop("/", o)

    def __rtruediv__(self, o: "ExprLike") -> "BinOp":
        return self._binop("/", o, swap=True)

    def __floordiv__(self, o: "ExprLike") -> "BinOp":
        return self._binop("//", o)

    def __mod__(self, o: "ExprLike") -> "BinOp":
        return self._binop("%", o)

    def __neg__(self) -> "UnOp":
        return UnOp("-", self)

    # Comparisons build IR nodes rather than booleans; the dataclasses
    # below therefore disable eq generation and define structural __eq__
    # via the `key()` method instead.
    def lt(self, o: "ExprLike") -> "BinOp":
        return self._binop("<", o)

    def le(self, o: "ExprLike") -> "BinOp":
        return self._binop("<=", o)

    def gt(self, o: "ExprLike") -> "BinOp":
        return self._binop(">", o)

    def ge(self, o: "ExprLike") -> "BinOp":
        return self._binop(">=", o)

    def eq(self, o: "ExprLike") -> "BinOp":
        return self._binop("==", o)

    def ne(self, o: "ExprLike") -> "BinOp":
        return self._binop("!=", o)

    def logical_and(self, o: "ExprLike") -> "BinOp":
        return self._binop("&&", o)

    def logical_or(self, o: "ExprLike") -> "BinOp":
        return self._binop("||", o)

    def key(self) -> tuple:
        """Structural identity key; subclasses extend it."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and self.key() == other.key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self.key())


ExprLike = Union[Expr, int, float, bool, str]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python scalar / name into an IR expression.

    Strings become :class:`Var` references, numbers become :class:`Const`.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, (int, float)):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise IRTypeError(f"cannot convert {value!r} to an IR expression")


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """A numeric literal."""

    value: Union[int, float]

    def __post_init__(self) -> None:
        if not isinstance(self.value, (int, float)):
            raise IRTypeError(f"Const value must be numeric, got {self.value!r}")

    def key(self) -> tuple:
        return ("const", self.value, type(self.value).__name__)

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A scalar variable reference (loop index, parameter, or local)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise IRTypeError(f"Var name must be a non-empty string, got {self.name!r}")

    def key(self) -> tuple:
        return ("var", self.name)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    """A binary operation ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise IRTypeError(f"unknown binary operator {self.op!r}")
        if not isinstance(self.left, Expr) or not isinstance(self.right, Expr):
            raise IRTypeError(f"BinOp operands must be Expr, got {self.left!r}, {self.right!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def key(self) -> tuple:
        return ("binop", self.op, self.left.key(), self.right.key())

    def __repr__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.left!r}, {self.right!r})"
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class UnOp(Expr):
    """A unary operation ``op operand``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise IRTypeError(f"unknown unary operator {self.op!r}")
        if not isinstance(self.operand, Expr):
            raise IRTypeError(f"UnOp operand must be Expr, got {self.operand!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def key(self) -> tuple:
        return ("unop", self.op, self.operand.key())

    def __repr__(self) -> str:
        return f"({self.op}{self.operand!r})"


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """A call to a math intrinsic, e.g. ``sqrt(x)``.

    Calls to *user* functions are statements (:class:`repro.ir.stmt.CallStmt`)
    because the evaluated models restrict where user calls may appear.
    """

    func: str
    args: tuple[Expr, ...]

    def __init__(self, func: str, args: Sequence[ExprLike]) -> None:
        if func not in INTRINSICS:
            raise IRTypeError(
                f"{func!r} is not a device intrinsic; known: {sorted(INTRINSICS)}"
            )
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(as_expr(a) for a in args))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def key(self) -> tuple:
        return ("call", self.func, tuple(a.key() for a in self.args))

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True, eq=False)
class Ternary(Expr):
    """C's conditional expression ``cond ? if_true : if_false``."""

    cond: Expr
    if_true: Expr
    if_false: Expr

    def __post_init__(self) -> None:
        for part in (self.cond, self.if_true, self.if_false):
            if not isinstance(part, Expr):
                raise IRTypeError(f"Ternary parts must be Expr, got {part!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.if_true, self.if_false)

    def key(self) -> tuple:
        return ("ternary", self.cond.key(), self.if_true.key(), self.if_false.key())

    def __repr__(self) -> str:
        return f"({self.cond!r} ? {self.if_true!r} : {self.if_false!r})"


@dataclass(frozen=True, eq=False)
class Cast(Expr):
    """An explicit type conversion, e.g. ``(double) n``."""

    dtype: str
    operand: Expr

    _ALLOWED = frozenset({"int", "float", "double"})

    def __post_init__(self) -> None:
        if self.dtype not in self._ALLOWED:
            raise IRTypeError(f"Cast dtype must be one of {sorted(self._ALLOWED)}")
        if not isinstance(self.operand, Expr):
            raise IRTypeError(f"Cast operand must be Expr, got {self.operand!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def key(self) -> tuple:
        return ("cast", self.dtype, self.operand.key())

    def __repr__(self) -> str:
        return f"({self.dtype}){self.operand!r}"


class ArrayRef(Expr):
    """A subscripted array reference ``name[i0][i1]...``.

    Index expressions may be anything — affine expressions of loop indices
    (``A[i][j+1]``), or *indirect* references through other arrays
    (``x[col[k]]``), which is precisely the distinction that decides
    R-Stream mappability and memory-coalescing behaviour.
    """

    __slots__ = ("name", "indices")

    def __init__(self, name: str, indices: Sequence[ExprLike]) -> None:
        if not name or not isinstance(name, str):
            raise IRTypeError(f"ArrayRef name must be a non-empty string, got {name!r}")
        if len(indices) == 0:
            raise IRTypeError(f"ArrayRef {name!r} must have at least one index")
        self.name = name
        self.indices = tuple(as_expr(i) for i in indices)

    @property
    def ndim(self) -> int:
        return len(self.indices)

    def children(self) -> tuple[Expr, ...]:
        return self.indices

    def key(self) -> tuple:
        return ("aref", self.name, tuple(i.key() for i in self.indices))

    def is_indirect(self) -> bool:
        """True if any index goes through another array (subscripted subscript)."""
        return any(
            isinstance(node, ArrayRef)
            for index in self.indices
            for node in index.walk()
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        subs = "".join(f"[{i!r}]" for i in self.indices)
        return f"{self.name}{subs}"


# Convenience constructors used pervasively by the benchmark sources ------

def minimum(a: ExprLike, b: ExprLike) -> BinOp:
    """``min(a, b)`` as an IR expression."""
    return BinOp("min", as_expr(a), as_expr(b))


def maximum(a: ExprLike, b: ExprLike) -> BinOp:
    """``max(a, b)`` as an IR expression."""
    return BinOp("max", as_expr(a), as_expr(b))


def intrinsic(func: str, *args: ExprLike) -> Call:
    """Build an intrinsic call, coercing scalar arguments."""
    return Call(func, [as_expr(a) for a in args])

"""Loop-nest IR: the 'OpenMP input program' representation.

Sub-modules:

* :mod:`repro.ir.expr` / :mod:`repro.ir.stmt` — AST node definitions.
* :mod:`repro.ir.program` — arrays, functions, parallel regions, programs.
* :mod:`repro.ir.builder` — fluent construction helpers.
* :mod:`repro.ir.visitors` — traversal and rewriting machinery.
* :mod:`repro.ir.analysis` — static analyses (affine, access, reductions,
  dependences, metrics, liveness).
* :mod:`repro.ir.transforms` — loop transformations (interchange,
  collapse, tiling, transpose expansion, inlining).
"""

from repro.ir.expr import (ArrayRef, BinOp, Call, Cast, Const, Expr,
                           Ternary, UnOp, Var, as_expr)
from repro.ir.program import (ArrayDecl, Function, Param, ParallelRegion,
                              Program, ScalarDecl)
from repro.ir.stmt import (Assign, Barrier, Block, CallStmt, Critical, For,
                           If, LocalDecl, PointerArith, ReductionClause,
                           Return, Stmt, While)

__all__ = [
    "Expr", "Const", "Var", "BinOp", "UnOp", "Call", "Ternary", "Cast",
    "ArrayRef", "as_expr",
    "Stmt", "Block", "Assign", "LocalDecl", "For", "While", "If",
    "Critical", "Barrier", "CallStmt", "Return", "PointerArith",
    "ReductionClause",
    "ArrayDecl", "ScalarDecl", "Param", "Function", "ParallelRegion",
    "Program",
]

"""Generic traversal and rewriting machinery over the IR.

Two families:

* *read-only walks*: :func:`iter_stmts`, :func:`iter_exprs`,
  :func:`collect_array_refs`, :func:`loop_nest_depth`, ...
* *rewriters*: :class:`ExprTransformer` / :class:`StmtTransformer`
  rebuild trees bottom-up (the IR is immutable), plus the widely used
  :func:`substitute` (expression substitution) and
  :func:`rename_var` helpers that the loop transformations build on.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Optional, Sequence

from repro.errors import IRError
from repro.ir.expr import (ArrayRef, BinOp, Call, Cast, Const, Expr,
                           Ternary, UnOp, Var)
from repro.ir.stmt import (Assign, Barrier, Block, CallStmt, Critical, For,
                           If, LocalDecl, PointerArith, Return, Stmt, While)


def iter_stmts(root: Stmt) -> Iterator[Stmt]:
    """Pre-order traversal of all statements under ``root`` (inclusive)."""
    yield from root.walk()


def iter_exprs(root: Stmt) -> Iterator[Expr]:
    """All expression nodes anywhere under ``root``."""
    yield from root.walk_exprs()


def collect_array_refs(root: Stmt) -> list[ArrayRef]:
    """Every array reference in the subtree, reads and writes alike."""
    return [e for e in iter_exprs(root) if isinstance(e, ArrayRef)]


def written_arrays(root: Stmt) -> set[str]:
    """Names of arrays stored to anywhere under ``root``."""
    names: set[str] = set()
    for stmt in iter_stmts(root):
        if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
            names.add(stmt.target.name)
        if isinstance(stmt, PointerArith):
            names.update(stmt.operands)
    return names


def read_arrays(root: Stmt) -> set[str]:
    """Names of arrays loaded from anywhere under ``root``.

    A plain store target is *not* a read (its index expressions are);
    an augmented assignment (``op=``) does read its target.
    """
    names: set[str] = set()
    for stmt in iter_stmts(root):
        if isinstance(stmt, Assign):
            names |= stmt.value.array_names()
            if isinstance(stmt.target, ArrayRef):
                if stmt.op is not None:
                    names.add(stmt.target.name)
                for index in stmt.target.indices:
                    names |= index.array_names()
        else:
            for expr in stmt.exprs():
                names |= expr.array_names()
    return names


def written_scalars(root: Stmt) -> set[str]:
    """Names of scalar variables assigned under ``root``."""
    names: set[str] = set()
    for stmt in iter_stmts(root):
        if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
            names.add(stmt.target.name)
        if isinstance(stmt, LocalDecl) and not stmt.shape:
            names.add(stmt.name)
        if isinstance(stmt, For):
            names.add(stmt.var)
    return names


def loop_nest_depth(root: Stmt) -> int:
    """Maximum depth of nested For/While loops under ``root``."""
    if isinstance(root, (For, While)):
        inner = max((loop_nest_depth(c) for c in root.child_stmts()), default=0)
        return 1 + inner
    return max((loop_nest_depth(c) for c in root.child_stmts()), default=0)


def contains_call(root: Stmt) -> bool:
    """Does the subtree call a user-defined function?"""
    return any(isinstance(s, CallStmt) for s in iter_stmts(root))


def contains_critical(root: Stmt) -> bool:
    """Does the subtree contain an OpenMP critical section?"""
    return any(isinstance(s, Critical) for s in iter_stmts(root))


def contains_barrier(root: Stmt) -> bool:
    """Does the subtree contain a barrier?"""
    return any(isinstance(s, Barrier) for s in iter_stmts(root))


def contains_pointer_arith(root: Stmt) -> bool:
    """Does the subtree perform pointer arithmetic?"""
    return any(isinstance(s, PointerArith) for s in iter_stmts(root))


class ExprTransformer:
    """Bottom-up expression rewriter.

    Subclasses override ``visit_<NodeType>`` methods; the default
    reconstructs nodes with transformed children (returning the original
    object when nothing changed, to preserve sharing).
    """

    def visit(self, expr: Expr) -> Expr:
        method = getattr(self, f"visit_{type(expr).__name__}", None)
        if method is not None:
            return method(expr)
        return self.generic_visit(expr)

    def generic_visit(self, expr: Expr) -> Expr:
        if isinstance(expr, (Const, Var)):
            return expr
        if isinstance(expr, BinOp):
            left, right = self.visit(expr.left), self.visit(expr.right)
            if left is expr.left and right is expr.right:
                return expr
            return BinOp(expr.op, left, right)
        if isinstance(expr, UnOp):
            operand = self.visit(expr.operand)
            return expr if operand is expr.operand else UnOp(expr.op, operand)
        if isinstance(expr, Call):
            args = tuple(self.visit(a) for a in expr.args)
            if all(a is b for a, b in zip(args, expr.args)):
                return expr
            return Call(expr.func, args)
        if isinstance(expr, Ternary):
            cond = self.visit(expr.cond)
            t, f = self.visit(expr.if_true), self.visit(expr.if_false)
            if cond is expr.cond and t is expr.if_true and f is expr.if_false:
                return expr
            return Ternary(cond, t, f)
        if isinstance(expr, Cast):
            operand = self.visit(expr.operand)
            return expr if operand is expr.operand else Cast(expr.dtype, operand)
        if isinstance(expr, ArrayRef):
            indices = tuple(self.visit(i) for i in expr.indices)
            if all(a is b for a, b in zip(indices, expr.indices)):
                return expr
            return ArrayRef(expr.name, indices)
        raise IRError(f"unknown expression node {expr!r}")


class StmtTransformer(ExprTransformer):
    """Bottom-up statement rewriter (also rewrites contained expressions)."""

    def visit_stmt(self, stmt: Stmt) -> Stmt:
        method = getattr(self, f"visit_{type(stmt).__name__}", None)
        if method is not None:
            return method(stmt)
        return self.generic_visit_stmt(stmt)

    def generic_visit_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, Block):
            stmts = tuple(self.visit_stmt(s) for s in stmt.stmts)
            if all(a is b for a, b in zip(stmts, stmt.stmts)):
                return stmt
            return Block(stmts)
        if isinstance(stmt, Assign):
            target = self.visit(stmt.target)
            value = self.visit(stmt.value)
            if target is stmt.target and value is stmt.value:
                return stmt
            if not isinstance(target, (Var, ArrayRef)):
                raise IRError(f"assignment target rewritten to non-lvalue: {target!r}")
            return Assign(target, value, op=stmt.op)
        if isinstance(stmt, For):
            lower = self.visit(stmt.lower)
            upper = self.visit(stmt.upper)
            step = self.visit(stmt.step)
            body = self.visit_stmt(stmt.body)
            if (lower is stmt.lower and upper is stmt.upper
                    and step is stmt.step and body is stmt.body):
                return stmt
            return For(stmt.var, lower, upper, body, step=step,
                       parallel=stmt.parallel, private=stmt.private,
                       reductions=stmt.reductions, collapse=stmt.collapse,
                       schedule=stmt.schedule)
        if isinstance(stmt, While):
            cond = self.visit(stmt.cond)
            body = self.visit_stmt(stmt.body)
            if cond is stmt.cond and body is stmt.body:
                return stmt
            return While(cond, body)
        if isinstance(stmt, If):
            cond = self.visit(stmt.cond)
            then_body = self.visit_stmt(stmt.then_body)
            else_body = (self.visit_stmt(stmt.else_body)
                         if stmt.else_body is not None else None)
            if (cond is stmt.cond and then_body is stmt.then_body
                    and else_body is stmt.else_body):
                return stmt
            return If(cond, then_body, else_body)
        if isinstance(stmt, Critical):
            body = self.visit_stmt(stmt.body)
            return stmt if body is stmt.body else Critical(body)
        if isinstance(stmt, LocalDecl):
            if stmt.init is None:
                return stmt
            init = self.visit(stmt.init)
            if init is stmt.init:
                return stmt
            return LocalDecl(stmt.name, shape=stmt.shape, dtype=stmt.dtype, init=init)
        if isinstance(stmt, CallStmt):
            args = tuple(self.visit(a) for a in stmt.args)
            if all(a is b for a, b in zip(args, stmt.args)):
                return stmt
            return CallStmt(stmt.func, args)
        if isinstance(stmt, Return):
            if stmt.value is None:
                return stmt
            value = self.visit(stmt.value)
            return stmt if value is stmt.value else Return(value)
        if isinstance(stmt, (Barrier, PointerArith)):
            return stmt
        raise IRError(f"unknown statement node {stmt!r}")


class _Substituter(ExprTransformer):
    def __init__(self, mapping: Mapping[Expr, Expr]) -> None:
        self.mapping = dict(mapping)

    def visit(self, expr: Expr) -> Expr:
        if expr in self.mapping:
            return self.mapping[expr]
        return super().visit(expr)


class _StmtSubstituter(StmtTransformer, _Substituter):
    pass


def substitute(expr: Expr, mapping: Mapping[Expr, Expr]) -> Expr:
    """Replace every occurrence of the mapping's keys in ``expr``.

    Matching is structural (whole-subtree); replacements are not
    re-scanned, so the substitution terminates even for self-referential
    mappings like ``{i: i + 1}``.
    """
    return _Substituter(mapping).visit(expr)


def substitute_stmt(stmt: Stmt, mapping: Mapping[Expr, Expr]) -> Stmt:
    """Statement-level version of :func:`substitute`."""
    return _StmtSubstituter(mapping).visit_stmt(stmt)


def rename_var(stmt: Stmt, old: str, new: str) -> Stmt:
    """Rename a scalar variable throughout a subtree (indices included).

    Loop headers whose induction variable is ``old`` are renamed too.
    """

    class _Renamer(StmtTransformer):
        def visit_Var(self, expr: Var) -> Expr:
            return Var(new) if expr.name == old else expr

        def visit_LocalDecl(self, stmt_: LocalDecl) -> Stmt:
            init = self.visit(stmt_.init) if stmt_.init is not None else None
            name = new if stmt_.name == old else stmt_.name
            if name == stmt_.name and init is stmt_.init:
                return stmt_
            return LocalDecl(name, shape=stmt_.shape, dtype=stmt_.dtype,
                             init=init)

        def visit_For(self, stmt_: For) -> Stmt:
            rebuilt = self.generic_visit_stmt(stmt_)
            assert isinstance(rebuilt, For)
            if rebuilt.var == old:
                return For(new, rebuilt.lower, rebuilt.upper, rebuilt.body,
                           step=rebuilt.step, parallel=rebuilt.parallel,
                           private=tuple(new if p == old else p
                                         for p in rebuilt.private),
                           reductions=rebuilt.reductions,
                           collapse=rebuilt.collapse,
                           schedule=rebuilt.schedule)
            return rebuilt

    return _Renamer().visit_stmt(stmt)


def rename_array(stmt: Stmt, old: str, new: str) -> Stmt:
    """Rename an array throughout a subtree."""

    class _Renamer(StmtTransformer):
        def visit_ArrayRef(self, expr: ArrayRef) -> Expr:
            indices = tuple(self.visit(i) for i in expr.indices)
            name = new if expr.name == old else expr.name
            if name == expr.name and all(a is b for a, b in
                                         zip(indices, expr.indices)):
                return expr
            return ArrayRef(name, indices)

    return _Renamer().visit_stmt(stmt)

"""Serial host-CPU cost model — the speedup denominator.

The paper's baseline is the sequential CPU version "without OpenMP,
compiled with GCC 4.1.2 -O3" on a 2.8 GHz Xeon X5660 (Westmere).  We
model it with the same static analysis the GPU side uses (flop counts and
access summaries of the *same* IR, with every loop sequential), priced
against host throughput constants:

* ``flops_per_s`` — sustained scalar/moderately vectorized double
  throughput of one Westmere core under a 2006-era compiler;
* ``mem_bandwidth`` — sustained single-core stream bandwidth;
* access-pattern penalties — on a cache-hierarchy CPU, sequential *and*
  small-strided accesses stream well; truly indirect accesses take cache
  misses.

Since speedups are ratios, the absolute constants only set the scale of
Figure 1; the calibration test pins JACOBI to the paper's ~O(20x) band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.ir.analysis.access import (AccessPattern, AccessSummary,
                                      summarize_accesses)
from repro.ir.analysis.metrics import body_work
from repro.ir.program import ParallelRegion, numpy_dtype
from repro.ir.stmt import Stmt


@dataclass(frozen=True)
class HostSpec:
    """One core of the Keeneland host node."""

    name: str = "Xeon X5660 (1 core, gcc -O3)"
    clock_ghz: float = 2.8
    flops_per_s: float = 2.2e9
    mem_bandwidth: float = 7.5e9
    #: penalty multiplier on bytes for data-dependent gathers
    indirect_penalty: float = 3.0
    #: penalty for large-strided walks (TLB/cache-line waste)
    strided_penalty: float = 1.6
    #: fraction of uniform (hot, cached) accesses that cost DRAM traffic
    uniform_miss: float = 0.02


KEENELAND_HOST = HostSpec()


def _bytes_for(summary: AccessSummary, elem_bytes: int,
               spec: HostSpec) -> float:
    total = 0.0
    for ref, count in summary.refs:
        if ref.pattern is AccessPattern.INDIRECT:
            factor = spec.indirect_penalty
        elif ref.pattern is AccessPattern.STRIDED and ref.stride > 8:
            factor = spec.strided_penalty
        elif ref.pattern is AccessPattern.UNIFORM:
            factor = spec.uniform_miss
        else:
            factor = 1.0
        total += count * elem_bytes * factor
    return total


def price_body_serial(body: Stmt, iterations: float,
                      array_extents: Mapping[str, Sequence[Optional[int]]],
                      bindings: Mapping[str, float],
                      dtype: str = "double",
                      spec: HostSpec = KEENELAND_HOST) -> float:
    """Serial time of executing ``body`` ``iterations`` times.

    ``body`` is analysed with *no* thread indices: parallel loops count as
    sequential trips, so the estimate is the single-core execution of the
    original OpenMP-less program.
    """
    work = body_work(body, (), bindings)
    summary = summarize_accesses(body, (), array_extents, bindings,
                                 classify_against="innermost")
    elem = numpy_dtype(dtype).itemsize
    t_flops = work.flops / spec.flops_per_s
    t_bytes = _bytes_for(summary, elem, spec) / spec.mem_bandwidth
    # a scalar core overlaps compute and memory imperfectly
    per_pass = max(t_flops, t_bytes) + 0.25 * min(t_flops, t_bytes)
    return per_pass * iterations


def price_region_serial(region: ParallelRegion,
                        array_extents: Mapping[str, Sequence[Optional[int]]],
                        bindings: Mapping[str, float],
                        dtype: str = "double",
                        spec: HostSpec = KEENELAND_HOST) -> float:
    """Serial time of one region across all its invocations.

    Classification uses no thread variables, so access patterns reflect a
    single sequential walker (most references come out 'uniform'/'
    coalesced' relative to nothing); we therefore re-classify with the
    region's own loop structure treated as the iteration space — the
    weighting already multiplies trip counts, which is what matters for
    byte volume.
    """
    return price_body_serial(region.body, float(region.invocations),
                             array_extents, bindings, dtype, spec)

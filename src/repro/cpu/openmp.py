"""Host-side functional execution of the OpenMP input programs.

Validation of every model port needs a ground truth; rather than trusting
each benchmark's hand-written NumPy reference alone, the suite can also
*run the input IR itself* on the host.  :func:`run_region_host` executes a
parallel region with OpenMP semantics (work-sharing loops over the whole
iteration space, shared arrays in place) by reusing the vectorizing
interpreter with the region's work-sharing nest as the "grid".

This doubles as the single-source check the paper's methodology implies:
the *same* program text produces the CPU baseline results and, through a
model compiler, the GPU results.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Optional, Union

import numpy as np

from repro.errors import IRError
from repro.gpusim.kernel import Kernel
from repro.gpusim.executor import execute_kernel
from repro.ir.program import Function, ParallelRegion, Program
from repro.ir.stmt import Block, For, LocalDecl, Stmt

Value = Union[int, float]


def _grid_vars(region: ParallelRegion) -> list[str]:
    """The outermost work-sharing nest of the region (as the grid)."""
    loops = region.worksharing_loops()
    if len(loops) != 1:
        # multiple sibling work-sharing loops: execute them one at a time
        return []
    nest = [loops[0].var]
    node = loops[0]
    while True:
        inner = [s for s in node.body.stmts if isinstance(s, For) and s.parallel]
        others = [s for s in node.body.stmts
                  if not isinstance(s, (For, LocalDecl))]
        if len(inner) == 1 and not others:
            nest.append(inner[0].var)
            node = inner[0]
        else:
            break
    return nest


def run_region_host(region: ParallelRegion,
                    arrays: MutableMapping[str, np.ndarray],
                    scalars: Mapping[str, Value],
                    functions: Optional[Mapping[str, Function]] = None,
                    ) -> None:
    """Execute one parallel region in place with OpenMP semantics."""
    body = region.body
    # Split sibling work-sharing loops into successive "kernels".
    if not isinstance(body, Block):
        body = Block([body])
    pending: list[Stmt] = []

    def flush_serial(stmts: list[Stmt]) -> None:
        if not stmts:
            return
        # serial (master) statements between work-sharing loops: run them
        # as a 1-thread grid
        wrapper = For("__serial", 0, 1, Block(stmts), parallel=True)
        kern = Kernel(f"{region.name}__serial", wrapper, ["__serial"],
                      arrays=sorted(arrays), scalars=sorted(scalars))
        execute_kernel(kern, arrays, dict(scalars), functions)

    for stmt in body.stmts:
        if isinstance(stmt, For) and stmt.parallel:
            flush_serial(pending)
            pending = []
            sub_region = ParallelRegion(f"{region.name}__ws", stmt,
                                        private=region.private)
            nest = _grid_vars(sub_region)
            if not nest:
                raise IRError(
                    f"region {region.name!r}: cannot identify grid nest")
            kern = Kernel(f"{region.name}__{stmt.var}", stmt, nest,
                          arrays=sorted(arrays), scalars=sorted(scalars))
            execute_kernel(kern, arrays, dict(scalars), functions)
        else:
            pending.append(stmt)
    flush_serial(pending)


def run_program_host(program: Program,
                     arrays: MutableMapping[str, np.ndarray],
                     scalars: Mapping[str, Value],
                     region_order: Optional[list[str]] = None) -> None:
    """Execute a program's regions (each once) in the given order."""
    order = region_order or [r.name for r in program.regions]
    for name in order:
        run_region_host(program.region(name), arrays, scalars,
                        program.functions)

"""Host CPU: serial cost model and OpenMP-semantics functional execution."""

from repro.cpu.host import (KEENELAND_HOST, HostSpec, price_body_serial,
                            price_region_serial)
from repro.cpu.openmp import run_program_host, run_region_host

__all__ = [
    "HostSpec", "KEENELAND_HOST", "price_body_serial", "price_region_serial",
    "run_region_host", "run_program_host",
]
